"""Out-of-sample extension: project queries onto a fitted membership block.

A fitted RHCHME factorisation only labels the objects it was trained on.
This module extends a fitted model to *new* objects of one type in the
spirit of anchor/landmark spectral methods: each query's p-NN affinities to
the training objects (the same Eq. 3 neighbourhood and edge-weighting the
ensemble Laplacian was built from) are used to smooth the training
membership block ``G_k`` onto the query,

    g(x) = Σ_{j ∈ pNN(x)} w_j · G_k[j]  /  Σ_j w_j ,

so a query inherits the (soft) cluster memberships of its nearest training
objects, weighted by affinity.  Hard labels are the argmax over the type's
own cluster columns — exactly how training objects are labelled from G.

The computation runs in micro-batches with bounded memory: the neighbour
search structure (:class:`repro.graph.neighbors.QueryIndex`) is built once
per call — or reused across calls when the caller passes a cached index —
and one batch then costs O(batch · n_train) for the neighbour search
(blocked further inside the brute-force path) and O(batch · p) for weights
and smoothing, so millions of queries stream through a fixed-size working
set.
With ``backend="sparse"`` the per-batch query affinity is assembled as a CSR
matrix (p non-zeros per row) and applied as an operator, mirroring the
training-side sparse backend.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .._validation import as_float_array, check_positive_int
from ..core.parallel import TypeWorkPool
from ..exceptions import ShapeError
from ..obs import current_span
from ..graph.neighbors import QueryIndex
from ..graph.weights import WeightingScheme, compute_edge_weights_query
from ..linalg.backend import numpy_carrier
from ..linalg.normalize import row_normalize_l1

__all__ = ["Prediction", "out_of_sample_predict"]

_EPS = 1e-12


@dataclass(frozen=True)
class Prediction:
    """Outcome of one out-of-sample batch prediction.

    Attributes
    ----------
    labels:
        ``(n_queries,)`` hard cluster labels (argmax of the smoothed
        membership, in the type's own cluster numbering).
    membership:
        ``(n_queries, c_k)`` soft membership scores, rows ℓ1-normalised.
    n_batches:
        Number of micro-batches the queries were processed in.
    affinity_mass:
        ``(n_queries,)`` total p-NN affinity weight each query collected
        from its training neighbours (before the dead-query fallback), or
        ``None`` when not computed (e.g. responses rebuilt from the wire).
        A query far from the training manifold collects little mass —
        the signal :class:`repro.diagnostics.DriftDetector` scores.
    """

    labels: np.ndarray
    membership: np.ndarray
    n_batches: int
    affinity_mass: np.ndarray | None = None

    @property
    def n_queries(self) -> int:
        """Number of predicted queries."""
        return int(self.labels.shape[0])


def out_of_sample_predict(reference: np.ndarray, membership_block: np.ndarray,
                          queries: np.ndarray, *, p: int = 5,
                          weighting: WeightingScheme | str = WeightingScheme.COSINE,
                          sigma: float = 1.0, backend: str = "auto",
                          batch_size: int = 256,
                          algorithm: str = "auto",
                          index: QueryIndex | None = None,
                          n_jobs: int = 1) -> Prediction:
    """Assign new objects of one type using a fitted membership block.

    Parameters
    ----------
    reference:
        ``(n_train, d)`` training feature matrix of the type.
    membership_block:
        ``(n_train, c_k)`` fitted membership block ``G_k`` of the type.
    queries:
        ``(n_queries, d)`` feature matrix of the new objects.
    p:
        Neighbour count of the query→training p-NN affinity (clamped to
        ``n_train``; no self-exclusion applies in query mode).
    weighting, sigma:
        Edge weighting scheme (and heat-kernel bandwidth) — use the fitted
        model's configuration so queries see the same affinity the training
        graph was built from.
    backend:
        ``"dense"``, ``"sparse"`` or ``"auto"`` (resolved against the
        training-set size); controls how the per-batch query affinity is
        represented and applied.
    batch_size:
        Micro-batch size bounding peak memory.
    algorithm:
        Neighbour-search backend of the :class:`QueryIndex` built over the
        reference set (ignored when ``index`` is supplied).
    index:
        Optional prebuilt :class:`QueryIndex` over ``reference`` — callers
        serving many requests against the same model (e.g.
        :class:`repro.serve.BatchPredictor`) pass a cached index so the
        KD-tree is not rebuilt per call.
    n_jobs:
        Worker threads for the micro-batches.  Batches are independent
        (each writes its own slice of the score matrix) and the underlying
        neighbour search and matrix kernels release the GIL, so large query
        sets fan out across cores; ``1`` (default) keeps the serial loop,
        ``-1`` uses every CPU.  Results are identical for every setting.

    Notes
    -----
    A query whose affinity to every neighbour is zero (e.g. an all-zero
    feature vector under cosine weighting) falls back to *binary* weights
    over its p nearest training objects, so every query always receives a
    well-defined membership distribution.
    """
    reference = as_float_array(reference, name="reference", ndim=2)
    membership_block = as_float_array(membership_block, name="membership_block",
                                      ndim=2)
    queries = as_float_array(queries, name="queries", ndim=2)
    n_train = reference.shape[0]
    if membership_block.shape[0] != n_train:
        raise ShapeError(
            f"membership_block has {membership_block.shape[0]} rows, expected "
            f"one per training object ({n_train})")
    if queries.shape[1] != reference.shape[1]:
        raise ShapeError(
            f"queries have {queries.shape[1]} features, training objects have "
            f"{reference.shape[1]}")
    batch_size = check_positive_int(batch_size, name="batch_size")
    p = min(check_positive_int(p, name="p"), n_train)
    # Out-of-sample extension stays numpy-facing for every backend
    # name (torch-fitted artifacts serve on torch-free machines).
    backend = numpy_carrier(backend, n_objects=n_train)
    weighting = WeightingScheme.coerce(weighting)
    if index is None:
        index = QueryIndex(reference, algorithm=algorithm)
    elif index.n_reference != n_train:
        raise ShapeError(
            f"index covers {index.n_reference} reference objects, expected "
            f"{n_train}")
    # Reference row norms are invariant across batches; computing them once
    # here keeps the per-batch cosine weighting at O(batch · p · d).
    reference_norms = (np.linalg.norm(reference, axis=1)
                       if weighting is WeightingScheme.COSINE else None)

    n_queries = queries.shape[0]
    scores = np.empty((n_queries, membership_block.shape[1]), dtype=np.float64)
    affinity_mass = np.empty(n_queries, dtype=np.float64)

    def one_batch(span: tuple[int, int]) -> None:
        start, stop = span
        batch = queries[start:stop]
        neighbours = index.query(batch, p)
        n_batch = batch.shape[0]
        rows = np.repeat(np.arange(n_batch, dtype=np.int64), p)
        cols = neighbours.ravel()
        weights = compute_edge_weights_query(batch, reference, rows, cols,
                                             weighting, sigma=sigma,
                                             reference_norms=reference_norms)
        weights = weights.reshape(n_batch, p)
        # Genuine affinity mass, before the dead-query fallback rewrites
        # the weights: this is the drift-detection signal.
        affinity_mass[start:stop] = weights.sum(axis=1)
        dead = weights.sum(axis=1) <= _EPS
        if np.any(dead):
            weights[dead] = 1.0
        if backend == "sparse":
            affinity = sp.csr_array((weights.ravel(), (rows, cols)),
                                    shape=(n_batch, n_train))
            scores[start:stop] = affinity @ membership_block
        else:
            scores[start:stop] = np.einsum("qp,qpc->qc", weights,
                                           membership_block[neighbours])

    spans = [(start, min(start + batch_size, n_queries))
             for start in range(0, n_queries, batch_size)]
    extension_start = time.perf_counter()
    with TypeWorkPool(n_jobs) as pool:
        pool.map(one_batch, spans)
    n_batches = len(spans)
    parent = current_span()
    if parent is not None:
        parent.record("compute.extension", extension_start,
                      time.perf_counter(), rows=int(n_queries),
                      n_batches=n_batches, n_jobs=int(n_jobs), p=int(p))

    membership = row_normalize_l1(scores, copy=False)
    labels = np.argmax(membership, axis=1).astype(np.int64)
    return Prediction(labels=labels, membership=membership,
                      n_batches=n_batches, affinity_mass=affinity_mass)
