"""The persistable fitted-model artifact (``RHCHMEModel``).

An :class:`RHCHMEModel` freezes everything a serving process needs from one
``RHCHME.fit``: the validated configuration, each type's training features,
the factorisation state (per-type membership blocks ``G_k``, the association
matrix ``S`` and the error matrix ``E_R``), the fitted hard labels, and a
schema/version stamp.  It round-trips exactly through ``save``/``load`` —
arrays in one compressed ``.npz``, metadata in a human-readable JSON sidecar
— so a model fitted in one process can serve out-of-sample predictions in
another, deterministically.

Artifacts are stamped with :data:`SCHEMA_VERSION`; ``load`` refuses any
artifact whose schema version does not match, raising
:class:`~repro.exceptions.ArtifactError` instead of silently misreading a
foreign layout.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from .. import __version__ as _library_version
from .._validation import as_float_array
from ..core.config import RHCHMEConfig
from ..core.state import FactorizationState
from ..exceptions import ArtifactError, ValidationError
from ..graph.neighbors import QueryIndex
from ..linalg.blocks import BlockSpec, block_diagonal
from ..linalg.backend import resolve_backend
from .extension import Prediction, out_of_sample_predict

__all__ = ["SCHEMA_VERSION", "TypeInfo", "RHCHMEModel", "load_model"]

#: Version stamp of the on-disk artifact layout.  Bump whenever the npz key
#: set or the sidecar structure changes incompatibly; ``load`` refuses
#: mismatched artifacts outright.
SCHEMA_VERSION = 1

_FORMAT = "rhchme-model"


@dataclass(frozen=True)
class TypeInfo:
    """Shape metadata of one object type captured in an artifact."""

    name: str
    n_objects: int
    n_clusters: int
    n_features: int | None


# eq=False: the generated __eq__ would compare ndarray/dict fields and raise
# on the ambiguous array truth value; identity comparison (and explicit
# array-level assertions in tests) is the meaningful contract here.
@dataclass(frozen=True, eq=False)
class RHCHMEModel:
    """Immutable fitted-model artifact supporting out-of-sample prediction.

    Attributes
    ----------
    config:
        The :class:`RHCHMEConfig` the model was fitted with; prediction
        reuses its ``p``, ``weighting`` and ``backend`` knobs so queries see
        the same affinity definition the training graph used.
    types:
        Per-type shape metadata in block order.
    features:
        Mapping from type name to its training feature matrix (types without
        features are absent — they cannot receive out-of-sample queries).
    membership:
        Mapping from type name to its fitted membership block ``G_k``.
    labels:
        Mapping from type name to the fitted hard labels of its training
        objects.
    association:
        The fitted association matrix ``S``.
    error_matrix:
        The fitted sample-wise error matrix ``E_R`` (``None`` when the fit
        disabled it).
    backend:
        The concrete backend the fit resolved to (``"dense"``/``"sparse"``).
    """

    config: RHCHMEConfig
    types: tuple[TypeInfo, ...]
    features: dict[str, np.ndarray]
    membership: dict[str, np.ndarray]
    labels: dict[str, np.ndarray]
    association: np.ndarray
    error_matrix: np.ndarray | None
    backend: str = "dense"
    schema_version: int = SCHEMA_VERSION
    library_version: str = _library_version

    def __post_init__(self) -> None:
        # Per-type neighbour-search indexes, built lazily on first predict
        # and reused for every later call (a KD-tree build per request would
        # dominate single-object latencies).  A plain cache, not state: the
        # artifact's arrays stay immutable.
        object.__setattr__(self, "_query_indexes", {})

    # ----------------------------------------------------------- construction
    @classmethod
    def from_fit(cls, result, data, config: RHCHMEConfig) -> "RHCHMEModel":
        """Build an artifact from a fit result, its dataset and its config.

        ``data`` must be the dataset the result was fitted on: a mismatched
        dataset would pair feature rows with membership blocks computed on
        different objects, producing an artifact that predicts garbage
        without ever erroring.  The block structure is checked up front so
        the mismatch fails at export time, not at serving time.
        """
        state = result.state
        if (state.object_spec.n_types != data.n_types
                or state.object_spec.sizes
                != tuple(t.n_objects for t in data.types)
                or set(result.labels) != set(data.type_names)):
            raise ValidationError(
                f"fit result (types of sizes {state.object_spec.sizes}, labels "
                f"for {sorted(result.labels)}) does not describe this dataset "
                f"({data.describe()}); export the model with the dataset it "
                "was fitted on")
        types = []
        features: dict[str, np.ndarray] = {}
        membership: dict[str, np.ndarray] = {}
        labels: dict[str, np.ndarray] = {}
        for index, object_type in enumerate(data.types):
            n_features = (object_type.features.shape[1]
                          if object_type.features is not None else None)
            types.append(TypeInfo(name=object_type.name,
                                  n_objects=object_type.n_objects,
                                  n_clusters=object_type.n_clusters,
                                  n_features=n_features))
            if object_type.features is not None:
                features[object_type.name] = np.array(object_type.features)
            membership[object_type.name] = np.array(
                state.membership_block(index))
            labels[object_type.name] = np.asarray(
                result.labels[object_type.name], dtype=np.int64).copy()
        error_matrix = np.array(state.E_R) if config.use_error_matrix else None
        return cls(config=config, types=tuple(types), features=features,
                   membership=membership, labels=labels,
                   association=np.array(state.S),
                   error_matrix=error_matrix,
                   backend=result.extras.get("backend", "dense"))

    # -------------------------------------------------------------- accessors
    @property
    def type_names(self) -> list[str]:
        """Names of the captured object types in block order."""
        return [t.name for t in self.types]

    def type_info(self, name: str) -> TypeInfo:
        """Return the :class:`TypeInfo` of the named type."""
        for info in self.types:
            if info.name == name:
                return info
        raise ValidationError(
            f"unknown object type {name!r}; known types: {self.type_names}")

    def state(self) -> FactorizationState:
        """Reconstruct the full factorisation state from the stored blocks."""
        object_spec = BlockSpec(tuple(t.n_objects for t in self.types))
        cluster_spec = BlockSpec(tuple(t.n_clusters for t in self.types))
        G = block_diagonal([self.membership[t.name] for t in self.types])
        E_R = (self.error_matrix.copy() if self.error_matrix is not None
               else np.zeros((object_spec.total, object_spec.total)))
        return FactorizationState(G=G, S=self.association.copy(), E_R=E_R,
                                  object_spec=object_spec,
                                  cluster_spec=cluster_spec)

    def info(self) -> dict:
        """Plain-dictionary summary (used by the ``info`` CLI subcommand)."""
        return {
            "format": _FORMAT,
            "schema_version": self.schema_version,
            "library_version": self.library_version,
            "backend": self.backend,
            "config": self._config_dict(),
            "types": [asdict(t) for t in self.types],
            "has_error_matrix": self.error_matrix is not None,
        }

    # ------------------------------------------------------------- prediction
    def predict(self, type_name: str, X_new, *, batch_size: int = 256,
                backend: str | None = None) -> Prediction:
        """Assign new objects of ``type_name`` out of sample.

        Computes the queries' p-NN affinities to the type's training objects
        (same ``p``/``weighting`` as the fit) and smooths them onto the
        fitted membership block; see
        :func:`repro.serve.extension.out_of_sample_predict`.  ``backend``
        overrides the fitted config's knob (useful for benchmarking); by
        default the config's backend is resolved against the training size.
        """
        info = self.type_info(type_name)
        if info.n_features is None:
            raise ValidationError(
                f"type {type_name!r} was fitted without features; "
                "out-of-sample prediction needs a feature space to embed queries in")
        X_new = as_float_array(X_new, name="X_new", ndim=2)
        if X_new.shape[1] != info.n_features:
            raise ValidationError(
                f"queries for type {type_name!r} must have {info.n_features} "
                f"features, got {X_new.shape[1]}")
        resolved = resolve_backend(self.config.backend if backend is None
                                   else backend, n_objects=info.n_objects)
        index = self._query_indexes.get(type_name)
        if index is None:
            index = QueryIndex(self.features[type_name])
            self._query_indexes[type_name] = index
        return out_of_sample_predict(
            self.features[type_name], self.membership[type_name], X_new,
            p=self.config.p, weighting=self.config.weighting,
            backend=resolved, batch_size=batch_size, index=index)

    # ------------------------------------------------------------ persistence
    def _config_dict(self) -> dict:
        config = asdict(self.config)
        config["weighting"] = self.config.weighting.value
        return config

    @staticmethod
    def _paths(path) -> tuple[Path, Path]:
        """Resolve the npz path and its JSON sidecar for a user-given path."""
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_name(path.name + ".npz")
        return path, path.with_suffix(".json")

    @classmethod
    def resolve_path(cls, path) -> Path:
        """Canonical absolute npz path a user-given artifact path refers to.

        ``"model"``, ``"model.npz"`` and ``"./model.npz"`` all resolve to the
        same path; cache layers key on this so one artifact is never loaded
        twice under different spellings.
        """
        return cls._paths(path)[0].resolve()

    @classmethod
    def read_metadata(cls, path) -> dict:
        """Read and validate an artifact's JSON sidecar without the arrays.

        Performs the same existence/format/schema-version checks as
        :meth:`load` but never opens the npz, so inspecting a
        multi-gigabyte artifact costs O(KB).  Returns the sidecar dictionary.
        """
        npz_path, sidecar_path = cls._paths(path)
        if not npz_path.exists():
            raise ArtifactError(f"model arrays not found: {npz_path}")
        if not sidecar_path.exists():
            raise ArtifactError(f"model sidecar not found: {sidecar_path}")
        try:
            sidecar = json.loads(sidecar_path.read_text())
        except json.JSONDecodeError as exc:
            raise ArtifactError(f"corrupt model sidecar {sidecar_path}: {exc}") from exc
        if sidecar.get("format") != _FORMAT:
            raise ArtifactError(
                f"{sidecar_path} is not an RHCHME model sidecar "
                f"(format={sidecar.get('format')!r})")
        version = sidecar.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ArtifactError(
                f"unsupported artifact schema version {version!r} "
                f"(this library reads version {SCHEMA_VERSION}); refusing to "
                "guess at a foreign layout — re-export the model with a "
                "matching library version")
        return sidecar

    def save(self, path) -> Path:
        """Write the artifact to ``path`` (compressed npz + JSON sidecar).

        ``path`` may omit the ``.npz`` suffix; the sidecar lands next to the
        npz with a ``.json`` suffix.  Returns the npz path actually written.
        """
        npz_path, sidecar_path = self._paths(path)
        arrays: dict[str, np.ndarray] = {"association": self.association}
        if self.error_matrix is not None:
            arrays["error_matrix"] = self.error_matrix
        for info in self.types:
            arrays[f"membership::{info.name}"] = self.membership[info.name]
            arrays[f"labels::{info.name}"] = self.labels[info.name]
            if info.name in self.features:
                arrays[f"features::{info.name}"] = self.features[info.name]
        npz_path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(npz_path, **arrays)
        sidecar_path.write_text(json.dumps(self.info(), indent=2) + "\n")
        return npz_path

    @classmethod
    def load(cls, path) -> "RHCHMEModel":
        """Read an artifact written by :meth:`save`.

        Raises :class:`~repro.exceptions.ArtifactError` when either file is
        missing, the sidecar does not describe an RHCHME model, the
        artifact's schema version differs from :data:`SCHEMA_VERSION`, or
        the npz does not hold the arrays the sidecar promises (a sidecar
        paired with the wrong or truncated npz).
        """
        npz_path, _ = cls._paths(path)
        sidecar = cls.read_metadata(path)
        try:
            config = RHCHMEConfig(**sidecar["config"])
        except (TypeError, ValueError) as exc:
            raise ArtifactError(
                f"artifact config cannot be reconstructed: {exc}") from exc
        types = tuple(TypeInfo(**entry) for entry in sidecar["types"])
        try:
            with np.load(npz_path) as arrays:
                association = np.array(arrays["association"])
                error_matrix = (np.array(arrays["error_matrix"])
                                if sidecar.get("has_error_matrix") else None)
                features = {}
                membership = {}
                labels = {}
                for info in types:
                    membership[info.name] = np.array(
                        arrays[f"membership::{info.name}"])
                    labels[info.name] = np.asarray(arrays[f"labels::{info.name}"],
                                                   dtype=np.int64)
                    if info.n_features is not None:
                        features[info.name] = np.array(
                            arrays[f"features::{info.name}"])
        except KeyError as exc:
            raise ArtifactError(
                f"model arrays at {npz_path} do not match the sidecar "
                f"(missing {exc}); the npz and json files do not describe "
                "the same model") from exc
        return cls(config=config, types=types, features=features,
                   membership=membership, labels=labels,
                   association=association, error_matrix=error_matrix,
                   backend=sidecar.get("backend", "dense"),
                   schema_version=int(sidecar["schema_version"]),
                   library_version=str(sidecar.get("library_version", "unknown")))


def load_model(path) -> RHCHMEModel:
    """Module-level convenience alias for :meth:`RHCHMEModel.load`."""
    return RHCHMEModel.load(path)
