"""The persistable fitted-model artifact (``RHCHMEModel``).

An :class:`RHCHMEModel` freezes everything a serving process needs from one
``RHCHME.fit``: the validated configuration, each type's training features,
the factorisation state (per-type membership blocks ``G_k``, the association
matrix ``S`` and the error matrix ``E_R``), the fitted hard labels, and a
schema/version stamp.  It round-trips exactly through ``save``/``load`` —
arrays in one compressed ``.npz``, metadata in a human-readable JSON sidecar
— so a model fitted in one process can serve out-of-sample predictions in
another, deterministically.

Artifacts are stamped with :data:`SCHEMA_VERSION`; ``load`` refuses any
artifact whose schema version does not match, raising
:class:`~repro.exceptions.ArtifactError` instead of silently misreading a
foreign layout.

Three on-disk layouts share one schema version and one artifact *handle*
(the ``model.npz`` path a caller passes around):

* **monolithic** (default) — every array in one compressed ``model.npz``;
* **per-type shards** (``save(path, shards="per-type")``) — one
  ``model.<type>.npz`` per object type (its membership block, labels and
  features) plus ``model.global.npz`` (the association and error matrices),
  described by a ``shards`` manifest inside the JSON sidecar.  ``load``
  reassembles the exact same model from either layout; a serving process
  that only ever answers queries for one type can instead go through
  :class:`repro.serve.shards.ShardedModelReader` and read just that type's
  shard.
* **per-type mmap shards** (``save(path, shards="per-type-mmap")``) — one
  *raw* ``.npy`` file per array (compressed npz members cannot be
  memory-mapped), grouped per type in the manifest.  A reader can open any
  individual array with ``mmap_mode="r"`` and page in only the bytes it
  touches; a streaming refresh promotes just the dirty types' arrays to
  in-memory copies and never reads the clean types' features at all.  Every
  array file is written via temp-file + atomic rename, so an open memory
  map in another process keeps reading the old inode while a refresh
  replaces the file.
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from .. import __version__ as _library_version
from .._validation import as_float_array
from ..core.config import RHCHMEConfig
from ..core.state import FactorizationState
from ..exceptions import ArtifactError, ValidationError
from ..graph.neighbors import QueryIndex
from ..linalg.blocks import BlockSpec
from ..linalg.backend import numpy_carrier
from ..linalg.rowsparse import RowSparseMatrix
from .extension import Prediction, out_of_sample_predict

__all__ = ["SCHEMA_VERSION", "SUPPORTED_SCHEMA_VERSIONS", "SHARD_LAYOUTS",
           "MMAP_LAYOUT", "TypeInfo", "RHCHMEModel", "load_model",
           "error_matrix_npz_keys"]

#: Version stamp of the on-disk artifact layout.  Bump whenever the npz key
#: set or the sidecar structure changes incompatibly; ``load`` refuses
#: artifacts outside :data:`SUPPORTED_SCHEMA_VERSIONS` outright.
#:
#: Version history:
#:
#: * 1 — original layout; the error matrix, when present, is one dense
#:   ``error_matrix`` array.
#: * 2 — adds the ``row-sparse`` error-matrix layout
#:   (``error_matrix_rows``/``error_matrix_values`` keys plus the
#:   ``error_matrix_layout`` sidecar field) and the ``error_row_tol``
#:   config knob.  Version-1 artifacts still load; version-2 artifacts are
#:   refused by version-1 readers with a clean schema error rather than a
#:   misleading corruption message.
SCHEMA_VERSION = 2

#: Schema versions this library can read.
SUPPORTED_SCHEMA_VERSIONS = (1, 2)

_FORMAT = "rhchme-model"

#: Supported on-disk array layouts (``save(..., shards=...)``).
SHARD_LAYOUTS = ("monolithic", "per-type", "per-type-mmap")

#: The raw-``.npy``-per-array layout readable through ``mmap_mode="r"``.
MMAP_LAYOUT = "per-type-mmap"

#: Manifest key of the cross-type shard (association + error matrix).
GLOBAL_SHARD = "global"

#: Sidecar values of ``error_matrix_layout`` (absent on pre-row-sparse
#: artifacts, which are all dense).
ERROR_MATRIX_LAYOUTS = ("dense", "row-sparse")


def error_matrix_npz_keys(sidecar: dict) -> list[str]:
    """npz keys holding the error matrix described by a validated sidecar.

    A dense layout stores one ``error_matrix`` array; the row-sparse layout
    stores the surviving row indices and their dense value block
    (``error_matrix_rows``/``error_matrix_values``) — for the typical
    all-zero or few-corrupted-rows E_R that is O(k·n) on disk and at load
    time instead of the O(n²) a densified zero block costs.  Returns an
    empty list when the artifact has no error matrix.
    """
    if not sidecar.get("has_error_matrix"):
        return []
    layout = sidecar.get("error_matrix_layout", "dense")
    if layout == "row-sparse":
        return ["error_matrix_rows", "error_matrix_values"]
    if layout != "dense":
        raise ArtifactError(
            f"unknown error-matrix layout {layout!r} "
            f"(this library reads {list(ERROR_MATRIX_LAYOUTS)})")
    return ["error_matrix"]


def _safe_label(label: str) -> str:
    """Filesystem-safe file name component for a type label."""
    return re.sub(r"[^A-Za-z0-9_-]+", "-", label).strip("-") or "type"


def _shard_stem(stem: str, label: str) -> str:
    """Filesystem-safe shard file name component for a type label."""
    return f"{stem}.{_safe_label(label)}.npz"


def _write_npz_atomic(path: Path, arrays: dict[str, np.ndarray]) -> None:
    """Write a compressed npz via a temp file + atomic rename.

    A concurrent reader (lazy shard reader in another process, a process
    worker cold-loading during a refresh) sees either the complete old file
    or the complete new file, never a truncated one.  The temp file is
    opened explicitly so numpy does not append a second ``.npz`` suffix.
    """
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        tmp.replace(path)
    finally:
        tmp.unlink(missing_ok=True)


def _write_npy_atomic(path: Path, array: np.ndarray) -> None:
    """Write one raw ``.npy`` via a temp file + atomic rename.

    Same torn-write guarantee as :func:`_write_npz_atomic`, with one extra
    property the mmap layout depends on: ``replace`` swaps the directory
    entry but leaves the old inode alive, so a reader holding an open memory
    map keeps reading consistent old bytes while a refresh rewrites the
    array underneath it.
    """
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            np.save(handle, np.asarray(array))
        tmp.replace(path)
    finally:
        tmp.unlink(missing_ok=True)


@dataclass(frozen=True)
class TypeInfo:
    """Shape metadata of one object type captured in an artifact."""

    name: str
    n_objects: int
    n_clusters: int
    n_features: int | None


def check_query_features(info: TypeInfo, X_new) -> np.ndarray:
    """Validate a query matrix against one type's shape metadata.

    Shared by the eager :class:`RHCHMEModel` and the lazy
    :class:`repro.serve.shards.ShardedModelReader` so both front-ends reject
    malformed requests with identical messages.
    """
    if info.n_features is None:
        raise ValidationError(
            f"type {info.name!r} was fitted without features; "
            "out-of-sample prediction needs a feature space to embed queries in")
    X_new = as_float_array(X_new, name="X_new", ndim=2)
    if X_new.shape[1] != info.n_features:
        raise ValidationError(
            f"queries for type {info.name!r} must have {info.n_features} "
            f"features, got {X_new.shape[1]}")
    return X_new


# eq=False: the generated __eq__ would compare ndarray/dict fields and raise
# on the ambiguous array truth value; identity comparison (and explicit
# array-level assertions in tests) is the meaningful contract here.
@dataclass(frozen=True, eq=False)
class RHCHMEModel:
    """Immutable fitted-model artifact supporting out-of-sample prediction.

    Attributes
    ----------
    config:
        The :class:`RHCHMEConfig` the model was fitted with; prediction
        reuses its ``p``, ``weighting`` and ``backend`` knobs so queries see
        the same affinity definition the training graph used.
    types:
        Per-type shape metadata in block order.
    features:
        Mapping from type name to its training feature matrix (types without
        features are absent — they cannot receive out-of-sample queries).
    membership:
        Mapping from type name to its fitted membership block ``G_k``.
    labels:
        Mapping from type name to the fitted hard labels of its training
        objects.
    association:
        The fitted association matrix ``S``.
    error_matrix:
        The fitted sample-wise error matrix ``E_R`` (``None`` when the fit
        disabled it).  A dense array for dense-backend fits, a
        :class:`~repro.linalg.rowsparse.RowSparseMatrix` for sparse-backend
        fits — the artifact keeps whichever representation the fit produced
        and round-trips it through ``save``/``load`` without densifying.
    backend:
        The concrete backend the fit resolved to (``"dense"``/``"sparse"``).
    diagnostics:
        The sidecar's JSON ``diagnostics`` section (``None`` on artifacts
        that predate it): per-type training-feature *fingerprints* for
        serving-time drift detection (always written by
        :meth:`from_fit`), plus — when the fit ran with
        ``config.diagnostics=True`` — the fit-time spectral/churn record
        under ``"fit"``.  The section is additive and carries its own
        ``version`` stamp, so the artifact schema version is unchanged
        and pre-diagnostics readers simply ignore it.
    """

    config: RHCHMEConfig
    types: tuple[TypeInfo, ...]
    features: dict[str, np.ndarray]
    membership: dict[str, np.ndarray]
    labels: dict[str, np.ndarray]
    association: np.ndarray
    error_matrix: np.ndarray | RowSparseMatrix | None
    backend: str = "dense"
    schema_version: int = SCHEMA_VERSION
    library_version: str = _library_version
    diagnostics: dict | None = None

    def __post_init__(self) -> None:
        # Per-type neighbour-search indexes, built lazily on first predict
        # and reused for every later call (a KD-tree build per request would
        # dominate single-object latencies).  A plain cache, not state: the
        # artifact's arrays stay immutable.  The lock makes the build
        # single-flight when worker threads race on a cold type.
        object.__setattr__(self, "_query_indexes", {})
        object.__setattr__(self, "_index_lock", threading.Lock())

    def __getstate__(self) -> dict:
        # The index cache rebuilds lazily and the lock is process-local;
        # dropping both keeps the artifact picklable for process workers.
        state = self.__dict__.copy()
        state.pop("_query_indexes", None)
        state.pop("_index_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)
        object.__setattr__(self, "_query_indexes", {})
        object.__setattr__(self, "_index_lock", threading.Lock())

    def query_index(self, type_name: str) -> QueryIndex:
        """The cached neighbour-search index of one type (built on first use).

        Thread-safe: concurrent callers for a cold type build the index once
        under a lock; after that the immutable index is read lock-free.
        """
        index = self._query_indexes.get(type_name)
        if index is None:
            with self._index_lock:
                index = self._query_indexes.get(type_name)
                if index is None:
                    index = QueryIndex(self.features[type_name])
                    self._query_indexes[type_name] = index
        return index

    # ----------------------------------------------------------- construction
    @classmethod
    def from_fit(cls, result, data, config: RHCHMEConfig) -> "RHCHMEModel":
        """Build an artifact from a fit result, its dataset and its config.

        ``data`` must be the dataset the result was fitted on: a mismatched
        dataset would pair feature rows with membership blocks computed on
        different objects, producing an artifact that predicts garbage
        without ever erroring.  The block structure is checked up front so
        the mismatch fails at export time, not at serving time.
        """
        state = result.state
        if (state.object_spec.n_types != data.n_types
                or state.object_spec.sizes
                != tuple(t.n_objects for t in data.types)
                or set(result.labels) != set(data.type_names)):
            raise ValidationError(
                f"fit result (types of sizes {state.object_spec.sizes}, labels "
                f"for {sorted(result.labels)}) does not describe this dataset "
                f"({data.describe()}); export the model with the dataset it "
                "was fitted on")
        types = []
        features: dict[str, np.ndarray] = {}
        membership: dict[str, np.ndarray] = {}
        labels: dict[str, np.ndarray] = {}
        for index, object_type in enumerate(data.types):
            n_features = (object_type.features.shape[1]
                          if object_type.features is not None else None)
            types.append(TypeInfo(name=object_type.name,
                                  n_objects=object_type.n_objects,
                                  n_clusters=object_type.n_clusters,
                                  n_features=n_features))
            if object_type.features is not None:
                features[object_type.name] = np.array(object_type.features)
            membership[object_type.name] = np.array(
                state.membership_block(index))
            labels[object_type.name] = np.asarray(
                result.labels[object_type.name], dtype=np.int64).copy()
        if not config.use_error_matrix:
            error_matrix = None
        elif isinstance(state.E_R, RowSparseMatrix):
            error_matrix = state.E_R.copy()
        else:
            error_matrix = np.array(state.E_R)
        # Every export fingerprints the training features (bounded-sample
        # sketches — see repro.diagnostics.drift), so any artifact can be
        # drift-scored at serving time; the fit-time spectral/churn record
        # rides along only when the fit opted in via config.diagnostics.
        from ..diagnostics.drift import fingerprint_features
        from ..diagnostics.spectral import DIAGNOSTICS_SCHEMA_VERSION
        diagnostics: dict = {"version": DIAGNOSTICS_SCHEMA_VERSION}
        fingerprints = {
            name: fingerprint_features(
                matrix, p=config.p, weighting=config.weighting,
                random_state=config.random_state,
                type_name=name).to_json_dict()
            for name, matrix in features.items()}
        if fingerprints:
            diagnostics["fingerprints"] = fingerprints
        fit_section = result.extras.get("diagnostics")
        if fit_section:
            diagnostics["fit"] = fit_section
        return cls(config=config, types=tuple(types), features=features,
                   membership=membership, labels=labels,
                   association=np.array(state.S),
                   error_matrix=error_matrix,
                   backend=result.extras.get("backend", "dense"),
                   diagnostics=diagnostics)

    # -------------------------------------------------------------- accessors
    @property
    def type_names(self) -> list[str]:
        """Names of the captured object types in block order."""
        return [t.name for t in self.types]

    def type_info(self, name: str) -> TypeInfo:
        """Return the :class:`TypeInfo` of the named type."""
        for info in self.types:
            if info.name == name:
                return info
        raise ValidationError(
            f"unknown object type {name!r}; known types: {self.type_names}")

    def state(self) -> FactorizationState:
        """Reconstruct the blocked factorisation state from the stored blocks.

        The artifact already stores G per type, which is exactly the
        solver's native representation — the blocks are copied straight in
        (the state is mutable; the artifact stays immutable) and no global
        stacked matrix is assembled.
        """
        object_spec = BlockSpec(tuple(t.n_objects for t in self.types))
        cluster_spec = BlockSpec(tuple(t.n_clusters for t in self.types))
        blocks = [np.array(self.membership[t.name]) for t in self.types]
        if self.error_matrix is None:
            E_R = RowSparseMatrix.zeros((object_spec.total, object_spec.total))
        else:
            E_R = self.error_matrix.copy()  # keeps its representation
        return FactorizationState(G_blocks=blocks, S=self.association.copy(),
                                  E_R=E_R, object_spec=object_spec,
                                  cluster_spec=cluster_spec)

    def _error_matrix_layout(self) -> str | None:
        """On-disk layout of the error matrix (``None`` when absent).

        Row-sparse fits and all-zero dense blocks persist compactly
        (indices + surviving rows); only a genuinely dense non-zero E_R
        pays for an ``(n, n)`` array — so a load never rematerialises an
        O(n²) zero block the fit itself never held.
        """
        if self.error_matrix is None:
            return None
        if isinstance(self.error_matrix, RowSparseMatrix):
            return "row-sparse"
        return "dense" if np.any(self.error_matrix) else "row-sparse"

    def info(self) -> dict:
        """Plain-dictionary summary (used by the ``info`` CLI subcommand)."""
        info = {
            "format": _FORMAT,
            # Always the *writer's* schema: a model loaded from an older
            # artifact re-saves in the current layout, so stamping the old
            # version would misdescribe the bytes on disk.
            "schema_version": SCHEMA_VERSION,
            "library_version": self.library_version,
            "backend": self.backend,
            "config": self._config_dict(),
            "types": [asdict(t) for t in self.types],
            "has_error_matrix": self.error_matrix is not None,
        }
        layout = self._error_matrix_layout()
        if layout is not None:
            info["error_matrix_layout"] = layout
        if self.diagnostics is not None:
            info["diagnostics"] = self.diagnostics
        return info

    # ------------------------------------------------------------- prediction
    def predict(self, type_name: str, X_new, *, batch_size: int = 256,
                backend: str | None = None,
                n_jobs: int | None = None) -> Prediction:
        """Assign new objects of ``type_name`` out of sample.

        Computes the queries' p-NN affinities to the type's training objects
        (same ``p``/``weighting`` as the fit) and smooths them onto the
        fitted membership block; see
        :func:`repro.serve.extension.out_of_sample_predict`.  ``backend``
        overrides the fitted config's knob (useful for benchmarking); by
        default the config's backend is resolved against the training size.
        ``n_jobs`` threads the micro-batches (``-1`` = all CPUs); it
        defaults to the in-memory config's knob, which is always ``1`` for
        loaded artifacts — n_jobs is a runtime knob and is deliberately not
        persisted, so serving processes opt into parallelism here.
        """
        info = self.type_info(type_name)
        X_new = check_query_features(info, X_new)
        # Serving is numpy-facing by contract: a model fitted with
        # backend="torch" predicts on a torch-free machine, so the knob
        # maps to its numpy carrier rather than resolving to an engine.
        resolved = numpy_carrier(self.config.backend if backend is None
                                 else backend, n_objects=info.n_objects)
        index = self.query_index(type_name)
        return out_of_sample_predict(
            self.features[type_name], self.membership[type_name], X_new,
            p=self.config.p, weighting=self.config.weighting,
            backend=resolved, batch_size=batch_size, index=index,
            n_jobs=self.config.n_jobs if n_jobs is None else n_jobs)

    # ------------------------------------------------------------ persistence
    def _config_dict(self) -> dict:
        config = asdict(self.config)
        config["weighting"] = self.config.weighting.value
        # n_jobs is a runtime execution knob (how many threads compute the
        # blocks), not a model parameter: it never changes the fitted
        # factors or predictions.  Keeping it out of the sidecar means the
        # artifact layout is unchanged and pre-n_jobs readers still load
        # current artifacts; loaded models default to serial execution.
        config.pop("n_jobs", None)
        # diagnostics is the same kind of run-time knob: whether a fit
        # recorded health metrics never changes the factors, and the
        # recorded metrics live in the sidecar's own diagnostics section.
        config.pop("diagnostics", None)
        # executor and torch_device are run-time knobs as well: which pool
        # kind computed the blocks and which device ran the kernels never
        # change the fitted factors, and persisting them would tie an
        # artifact to one machine's hardware.
        config.pop("executor", None)
        config.pop("torch_device", None)
        return config

    @staticmethod
    def _paths(path) -> tuple[Path, Path]:
        """Resolve the npz path and its JSON sidecar for a user-given path."""
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_name(path.name + ".npz")
        return path, path.with_suffix(".json")

    @classmethod
    def resolve_path(cls, path) -> Path:
        """Canonical absolute npz path a user-given artifact path refers to.

        ``"model"``, ``"model.npz"`` and ``"./model.npz"`` all resolve to the
        same path; cache layers key on this so one artifact is never loaded
        twice under different spellings.
        """
        return cls._paths(path)[0].resolve()

    @classmethod
    def read_metadata(cls, path) -> dict:
        """Read and validate an artifact's JSON sidecar without the arrays.

        Performs the same existence/format/schema-version checks as
        :meth:`load` but never opens any npz, so inspecting a
        multi-gigabyte artifact costs O(KB).  Returns the sidecar dictionary
        (for a sharded artifact it includes the ``shards`` manifest).
        """
        npz_path, sidecar_path = cls._paths(path)
        if not sidecar_path.exists():
            # Preserve the historical monolithic error when both files are
            # absent: the npz is the artifact's user-facing handle.
            if not npz_path.exists():
                raise ArtifactError(f"model arrays not found: {npz_path}")
            raise ArtifactError(f"model sidecar not found: {sidecar_path}")
        try:
            sidecar = json.loads(sidecar_path.read_text())
        except json.JSONDecodeError as exc:
            raise ArtifactError(f"corrupt model sidecar {sidecar_path}: {exc}") from exc
        if sidecar.get("format") != _FORMAT:
            raise ArtifactError(
                f"{sidecar_path} is not an RHCHME model sidecar "
                f"(format={sidecar.get('format')!r})")
        version = sidecar.get("schema_version")
        if version not in SUPPORTED_SCHEMA_VERSIONS:
            raise ArtifactError(
                f"unsupported artifact schema version {version!r} "
                f"(this library reads versions "
                f"{list(SUPPORTED_SCHEMA_VERSIONS)}); refusing to "
                "guess at a foreign layout — re-export the model with a "
                "matching library version")
        for shard_path in cls.shard_paths(path, sidecar).values():
            if not shard_path.exists():
                raise ArtifactError(f"model arrays not found: {shard_path}")
        return sidecar

    @classmethod
    def shard_paths(cls, path, sidecar: dict) -> dict[str, Path]:
        """Map each array file of an artifact to its absolute path.

        Keys are type names plus :data:`GLOBAL_SHARD` for a per-type sharded
        artifact, npz array keys (``membership::<type>``, ``association``, …)
        for the mmap layout (one file per array), or the single key
        ``"monolithic"`` for the default layout.  Shard file names in the
        manifest are relative to the sidecar.
        """
        npz_path, sidecar_path = cls._paths(path)
        manifest = sidecar.get("shards")
        if not manifest:
            return {"monolithic": npz_path}
        layout = manifest.get("layout")
        if layout == MMAP_LAYOUT:
            flat: dict[str, Path] = {}
            for entries in cls.mmap_array_paths(path, sidecar).values():
                flat.update(entries)
            return flat
        if layout != "per-type":
            raise ArtifactError(
                f"unknown shard layout {layout!r} "
                f"(this library reads {list(SHARD_LAYOUTS[1:])})")
        directory = sidecar_path.parent
        paths = {GLOBAL_SHARD: directory / manifest[GLOBAL_SHARD]}
        for name, filename in manifest["types"].items():
            paths[name] = directory / filename
        return paths

    @classmethod
    def mmap_array_paths(cls, path, sidecar: dict) -> dict[str, dict[str, Path]]:
        """Per-shard array-file map of a ``per-type-mmap`` artifact.

        Returns ``{shard_key: {npz_key: path}}`` where shard keys are type
        names plus :data:`GLOBAL_SHARD` and npz keys are the same array
        names the other layouts use (``membership::<type>``,
        ``association``, …).  Raises :class:`ArtifactError` for any other
        layout — callers that just need existence checks should use
        :meth:`shard_paths`, which handles every layout.
        """
        _, sidecar_path = cls._paths(path)
        manifest = sidecar.get("shards") or {}
        if manifest.get("layout") != MMAP_LAYOUT:
            raise ArtifactError(
                f"artifact at {path} does not use the {MMAP_LAYOUT!r} layout "
                f"(found {manifest.get('layout')!r})")
        directory = sidecar_path.parent
        paths = {GLOBAL_SHARD: {key: directory / filename for key, filename
                                in manifest[GLOBAL_SHARD].items()}}
        for name, entries in manifest["types"].items():
            paths[name] = {key: directory / filename
                           for key, filename in entries.items()}
        return paths

    def _type_arrays(self, info: TypeInfo) -> dict[str, np.ndarray]:
        arrays = {f"membership::{info.name}": self.membership[info.name],
                  f"labels::{info.name}": self.labels[info.name]}
        if info.name in self.features:
            arrays[f"features::{info.name}"] = self.features[info.name]
        return arrays

    def _global_arrays(self) -> dict[str, np.ndarray]:
        arrays: dict[str, np.ndarray] = {"association": self.association}
        layout = self._error_matrix_layout()
        if layout == "row-sparse":
            if isinstance(self.error_matrix, RowSparseMatrix):
                compact = self.error_matrix
            else:  # all-zero dense block: nothing survives
                compact = RowSparseMatrix.zeros(self.error_matrix.shape)
            arrays["error_matrix_rows"] = compact.rows
            arrays["error_matrix_values"] = compact.values
        elif layout == "dense":
            arrays["error_matrix"] = self.error_matrix
        return arrays

    @classmethod
    def _remove_stale_layout(cls, path, keep: set[Path]) -> None:
        """Delete array files of a previous save at ``path`` (any layout).

        Re-exporting over an existing artifact must not leave a stale
        monolithic npz next to fresh shards (or vice versa): a later load
        would see whichever layout the new sidecar names, but humans and
        sync tools would see both.  Files in ``keep`` — the ones the new
        save is about to (atomically) rewrite — are left in place, so a
        same-layout re-export never has a window with missing files.
        """
        npz_path, sidecar_path = cls._paths(path)
        if not sidecar_path.exists():
            return
        try:
            old_sidecar = json.loads(sidecar_path.read_text())
        except json.JSONDecodeError:
            return
        if not isinstance(old_sidecar, dict):
            return
        try:
            old_files = cls.shard_paths(path, old_sidecar).values()
        except (ArtifactError, KeyError, TypeError):
            return
        for stale in old_files:
            if stale != npz_path and stale not in keep:
                stale.unlink(missing_ok=True)

    def save(self, path, *, shards: str | None = None) -> Path:
        """Write the artifact to ``path`` (compressed npz + JSON sidecar).

        ``path`` may omit the ``.npz`` suffix; the sidecar lands next to the
        npz with a ``.json`` suffix.  Returns the artifact handle (the npz
        path) — every later ``load``/``predict`` call takes this same path
        regardless of layout.

        Parameters
        ----------
        shards:
            ``None``/``"monolithic"`` writes every array into one npz.
            ``"per-type"`` writes one ``<stem>.<type>.npz`` per object type
            (membership, labels, features) plus ``<stem>.global.npz``
            (association + error matrix) and records the file map in the
            sidecar's ``shards`` manifest, so a reader serving queries for
            one type can load just that type's blocks (see
            :class:`repro.serve.shards.ShardedModelReader`).
            ``"per-type-mmap"`` writes one *raw* ``.npy`` per array
            (``<stem>.<type>.<kind>.npy``) so readers can memory-map
            individual arrays and page in only the bytes they touch.
        """
        layout = shards or "monolithic"
        if layout not in SHARD_LAYOUTS:
            raise ValidationError(
                f"unknown shard layout {shards!r}; expected one of {SHARD_LAYOUTS}")
        npz_path, sidecar_path = self._paths(path)
        npz_path.parent.mkdir(parents=True, exist_ok=True)
        sidecar = self.info()
        if layout == "monolithic":
            self._remove_stale_layout(path, keep={npz_path})
            arrays = self._global_arrays()
            for info in self.types:
                arrays.update(self._type_arrays(info))
            _write_npz_atomic(npz_path, arrays)
        elif layout == "per-type":
            if GLOBAL_SHARD in self.type_names:
                # The flat shard-key namespace (type names + the global
                # shard) cannot represent this artifact unambiguously.
                raise ValidationError(
                    f"cannot shard per type: a type is named "
                    f"{GLOBAL_SHARD!r}, which is the reserved key of the "
                    "cross-type shard; rename the type or save "
                    "monolithically")
            stem = npz_path.stem
            manifest: dict = {"layout": "per-type",
                              GLOBAL_SHARD: _shard_stem(stem, GLOBAL_SHARD),
                              "types": {}}
            files = {manifest[GLOBAL_SHARD]: self._global_arrays()}
            for info in self.types:
                filename = _shard_stem(stem, info.name)
                if filename in files:  # names collide after sanitisation
                    filename = _shard_stem(stem, f"type{len(files)}")
                manifest["types"][info.name] = filename
                files[filename] = self._type_arrays(info)
            self._remove_stale_layout(
                path, keep={npz_path.with_name(name) for name in files})
            npz_path.unlink(missing_ok=True)  # stale monolithic arrays
            for filename, arrays in files.items():
                _write_npz_atomic(npz_path.with_name(filename), arrays)
            sidecar["shards"] = manifest
        else:  # MMAP_LAYOUT: one raw .npy per array
            if GLOBAL_SHARD in self.type_names:
                raise ValidationError(
                    f"cannot shard per type: a type is named "
                    f"{GLOBAL_SHARD!r}, which is the reserved key of the "
                    "cross-type shard; rename the type or save "
                    "monolithically")
            stem = npz_path.stem
            array_files: dict[str, np.ndarray] = {}

            def plan(label: str, arrays: dict[str, np.ndarray]) -> dict[str, str]:
                entries = {}
                for key, array in arrays.items():
                    kind = key.split("::", 1)[0]
                    filename = f"{stem}.{label}.{kind}.npy"
                    entries[key] = filename
                    array_files[filename] = array
                return entries

            manifest = {"layout": MMAP_LAYOUT,
                        GLOBAL_SHARD: plan(GLOBAL_SHARD, self._global_arrays()),
                        "types": {}}
            used_labels = {GLOBAL_SHARD}
            for index, info in enumerate(self.types):
                label = _safe_label(info.name)
                if label in used_labels:  # names collide after sanitisation
                    label = f"type{index}"
                used_labels.add(label)
                manifest["types"][info.name] = plan(label,
                                                    self._type_arrays(info))
            self._remove_stale_layout(
                path, keep={npz_path.with_name(name) for name in array_files})
            npz_path.unlink(missing_ok=True)  # stale monolithic arrays
            for filename, array in array_files.items():
                _write_npy_atomic(npz_path.with_name(filename), array)
            sidecar["shards"] = manifest
        # Sidecar last and atomically: readers never see a torn JSON, and a
        # crash mid-save leaves the previous sidecar in place (whose
        # shape/key checks refuse any half-updated array set loudly).
        tmp_sidecar = sidecar_path.with_name(sidecar_path.name + ".tmp")
        tmp_sidecar.write_text(json.dumps(sidecar, indent=2) + "\n")
        tmp_sidecar.replace(sidecar_path)
        return npz_path

    @classmethod
    def parse_sidecar(cls, sidecar: dict) -> tuple[RHCHMEConfig, tuple[TypeInfo, ...]]:
        """Reconstruct the config and type metadata from a validated sidecar."""
        try:
            config = RHCHMEConfig(**sidecar["config"])
        except (TypeError, ValueError) as exc:
            raise ArtifactError(
                f"artifact config cannot be reconstructed: {exc}") from exc
        return config, tuple(TypeInfo(**entry) for entry in sidecar["types"])

    @staticmethod
    def read_shard(shard_path: Path, keys: list[str]) -> dict[str, np.ndarray]:
        """Read the named arrays out of one npz file, with artifact errors.

        Raises :class:`~repro.exceptions.ArtifactError` when the file does
        not hold a promised array (sidecar paired with the wrong npz) or is
        not a readable npz at all (truncated or corrupt write).
        """
        try:
            with np.load(shard_path) as arrays:
                return {key: np.array(arrays[key]) for key in keys}
        except KeyError as exc:
            raise ArtifactError(
                f"model arrays at {shard_path} do not match the sidecar "
                f"(missing {exc}); the npz and json files do not describe "
                "the same model") from exc
        except (OSError, ValueError) as exc:
            raise ArtifactError(
                f"corrupt model arrays at {shard_path}: {exc}") from exc

    @staticmethod
    def read_npy(array_path: Path, *, mmap_mode: str | None = None) -> np.ndarray:
        """Read one raw ``.npy`` array file, with artifact errors.

        ``mmap_mode="r"`` opens the file as a read-only memory map (only
        touched pages are read from disk); ``None`` reads an ordinary
        in-memory array.  Raises :class:`~repro.exceptions.ArtifactError`
        on a missing, truncated or non-npy file.
        """
        try:
            return np.load(array_path, mmap_mode=mmap_mode, allow_pickle=False)
        except (OSError, ValueError) as exc:
            raise ArtifactError(
                f"corrupt model arrays at {array_path}: {exc}") from exc

    @classmethod
    def load(cls, path) -> "RHCHMEModel":
        """Read an artifact written by :meth:`save` (either layout).

        Raises :class:`~repro.exceptions.ArtifactError` when an array file
        or the sidecar is missing, the sidecar does not describe an RHCHME
        model, the artifact's schema version differs from
        :data:`SCHEMA_VERSION`, or an npz does not hold the arrays the
        sidecar promises (a sidecar paired with the wrong or truncated npz).
        A per-type sharded artifact is reassembled into the exact same model
        a monolithic save round-trips to.
        """
        sidecar = cls.read_metadata(path)
        config, types = cls.parse_sidecar(sidecar)
        manifest = sidecar.get("shards") or {}
        mmapped = manifest.get("layout") == MMAP_LAYOUT
        shard_paths = ({} if mmapped else cls.shard_paths(path, sidecar))
        sharded = not mmapped and "monolithic" not in shard_paths

        def type_keys(info: TypeInfo) -> list[str]:
            keys = [f"membership::{info.name}", f"labels::{info.name}"]
            if info.n_features is not None:
                keys.append(f"features::{info.name}")
            return keys

        global_keys = ["association"] + error_matrix_npz_keys(sidecar)
        if mmapped:
            array_paths = cls.mmap_array_paths(path, sidecar)
            arrays = {}
            for shard_key, keys in (
                    [(GLOBAL_SHARD, global_keys)]
                    + [(info.name, type_keys(info)) for info in types]):
                entries = array_paths.get(shard_key, {})
                for key in keys:
                    if key not in entries:
                        raise ArtifactError(
                            f"model arrays at {path} do not match the "
                            f"sidecar (missing {key!r} in shard "
                            f"{shard_key!r}); the array files and json do "
                            "not describe the same model")
                    arrays[key] = np.asarray(cls.read_npy(entries[key]))
        elif sharded:
            arrays = cls.read_shard(shard_paths[GLOBAL_SHARD], global_keys)
            for info in types:
                arrays.update(cls.read_shard(shard_paths[info.name],
                                             type_keys(info)))
        else:
            keys = list(global_keys)
            for info in types:
                keys.extend(type_keys(info))
            arrays = cls.read_shard(shard_paths["monolithic"], keys)

        features = {}
        membership = {}
        labels = {}
        for info in types:
            membership[info.name] = arrays[f"membership::{info.name}"]
            labels[info.name] = np.asarray(arrays[f"labels::{info.name}"],
                                           dtype=np.int64)
            if info.n_features is not None:
                features[info.name] = arrays[f"features::{info.name}"]

        if "error_matrix_rows" in arrays:
            n_total = sum(info.n_objects for info in types)
            error_matrix = RowSparseMatrix(arrays["error_matrix_rows"],
                                           arrays["error_matrix_values"],
                                           (n_total, n_total))
        else:
            error_matrix = arrays.get("error_matrix")
        return cls(config=config, types=types, features=features,
                   membership=membership, labels=labels,
                   association=arrays["association"],
                   error_matrix=error_matrix,
                   backend=sidecar.get("backend", "dense"),
                   schema_version=int(sidecar["schema_version"]),
                   library_version=str(sidecar.get("library_version", "unknown")),
                   diagnostics=sidecar.get("diagnostics"))


def load_model(path) -> RHCHMEModel:
    """Module-level convenience alias for :meth:`RHCHMEModel.load`."""
    return RHCHMEModel.load(path)
