"""Deprecation plumbing for the legacy positional serving entry points.

``BatchPredictor.predict`` and ``RuntimeServer.predict``/``submit``
historically threaded ``(path, type_name, queries)`` positionally.  The
canonical serving API is now the schema-typed
:class:`repro.net.schema.PredictRequest` /
:class:`~repro.net.schema.PredictResponse` pair (``serve`` /
``submit_request``); the positional forms keep working for one release
but warn.

Migration path (one release):

* ``predict(path, "points", queries)`` →
  ``predict(path=path, type_name="points", queries=queries)`` (silent), or
* ``serve(PredictRequest(model=str(path), type_name="points",
  queries=queries))`` (canonical).
"""

from __future__ import annotations

import warnings

__all__ = ["legacy_positional_args"]


def legacy_positional_args(name: str, params: tuple[str, ...], args: tuple,
                           kwargs: dict) -> tuple:
    """Resolve a legacy ``(*args, **kwargs)`` call into ``params`` values.

    Emits a :class:`DeprecationWarning` when any argument arrived
    positionally; keyword calls stay silent.  Returns the parameter values
    in ``params`` order.  Unknown or duplicate keywords raise
    :class:`TypeError` exactly like a plain signature would.
    """
    if len(args) > len(params):
        raise TypeError(
            f"{name}() takes at most {len(params)} positional arguments "
            f"({len(args)} given)")
    if args:
        warnings.warn(
            f"passing ({', '.join(params[:len(args)])}) positionally to "
            f"{name}() is deprecated and will be removed in the next "
            f"release; pass them as keywords, or use the schema-typed "
            "serve()/submit_request() with a PredictRequest",
            DeprecationWarning, stacklevel=3)
    values = dict(zip(params, args))
    for key, value in kwargs.items():
        if key not in params:
            raise TypeError(f"{name}() got an unexpected keyword argument "
                            f"{key!r}")
        if key in values:
            raise TypeError(f"{name}() got multiple values for argument "
                            f"{key!r}")
        values[key] = value
    missing = [param for param in params if param not in values]
    if missing:
        raise TypeError(f"{name}() missing required arguments: "
                        f"{', '.join(missing)}")
    return tuple(values[param] for param in params)
