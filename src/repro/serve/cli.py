"""Command line interface of the serving subsystem.

Three subcommands cover the fit→persist→serve lifecycle::

    python -m repro.serve fit-save --dataset multi5-small --output model.npz
    python -m repro.serve predict  --model model.npz --type documents \\
                                   --queries queries.npy --output predictions.npz
    python -m repro.serve info     --model model.npz

``fit-save`` fits RHCHME on a registered synthetic dataset preset and writes
the artifact (``--shards per-type`` for the sharded layout); ``predict``
loads an artifact and batch-predicts a ``.npy`` / ``.npz`` query matrix,
writing hard labels and soft membership scores (``--json`` for a
machine-readable result document on stdout); ``info`` prints the artifact's
sidecar metadata — including its shard layout — without loading the arrays.

``predict`` is an adapter over the canonical serving schema
(:class:`repro.net.schema.PredictRequest` /
:class:`~repro.net.schema.PredictResponse`): the ``--json`` document is
the wire-schema response (membership elided for stdout brevity — pass
``--output`` for the arrays) extended with histogram/throughput fields.

Every failure path surfaces as a one-line
``[serve] error[<code>]: ...`` on stderr — ``<code>`` being the stable
machine-readable code from :mod:`repro.exceptions` — and the process
exits with that code's ``exit_code``, so scripts can branch on the same
taxonomy the wire schema uses (artifact errors, validation errors and
load shedding all get distinct exit codes; tracebacks never escape).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from ..core.config import RHCHMEConfig
from ..core.rhchme import RHCHME
from ..data.datasets import list_datasets, make_dataset
from ..exceptions import ReproError
from ..net.schema import PredictRequest
from .artifact import RHCHMEModel, SHARD_LAYOUTS
from .predictor import BatchPredictor

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Persist fitted RHCHME models and serve out-of-sample predictions")
    commands = parser.add_subparsers(dest="command", required=True)

    fit = commands.add_parser(
        "fit-save", help="fit RHCHME on a dataset preset and save the artifact")
    fit.add_argument("--dataset", default="multi5-small",
                     help=f"dataset preset (one of: {', '.join(list_datasets())})")
    fit.add_argument("--output", required=True, type=Path,
                     help="artifact path (.npz; a .json sidecar lands next to it)")
    fit.add_argument("--random-state", type=int, default=0)
    fit.add_argument("--max-iter", type=int, default=30)
    fit.add_argument("--backend", default="auto",
                     choices=["auto", "dense", "sparse", "torch"])
    fit.add_argument("--subspace-topk", type=int, default=None,
                     help="top-k sparsification of the subspace member affinity")
    fit.add_argument("--no-subspace", action="store_true",
                     help="disable the subspace ensemble member (faster fits)")
    fit.add_argument("--shards", default="monolithic",
                     choices=list(SHARD_LAYOUTS),
                     help="artifact layout: one npz, or one npz per object "
                          "type (enables lazy partial loads when serving)")
    fit.add_argument("--diagnostics", action="store_true",
                     help="record fit-time health diagnostics (per-type "
                          "spectral metrics + membership churn) into the "
                          "artifact sidecar")

    predict = commands.add_parser(
        "predict", help="batch-predict new objects against a saved artifact")
    predict.add_argument("--model", required=True, type=Path)
    predict.add_argument("--type", required=True, dest="type_name",
                         help="object type the queries belong to")
    predict.add_argument("--queries", required=True, type=Path,
                         help=".npy (or single-array .npz) query feature matrix")
    predict.add_argument("--output", type=Path, default=None,
                         help="write labels + membership to this .npz")
    predict.add_argument("--batch-size", type=int, default=256)
    predict.add_argument("--json", action="store_true",
                         help="print a machine-readable JSON result document "
                              "(labels + timings) instead of the human log")

    info = commands.add_parser("info", help="print artifact metadata")
    info.add_argument("--model", required=True, type=Path)
    return parser


def _load_queries(path: Path) -> np.ndarray:
    if not path.exists():
        raise ReproError(f"query file not found: {path}")
    loaded = np.load(path)
    if isinstance(loaded, np.lib.npyio.NpzFile):
        names = loaded.files
        if len(names) != 1:
            raise ReproError(
                f"{path} holds {len(names)} arrays ({names}); store the query "
                "matrix alone or pass a .npy file")
        return np.asarray(loaded[names[0]])
    return np.asarray(loaded)


def _cmd_fit_save(args: argparse.Namespace) -> int:
    config = RHCHMEConfig(max_iter=args.max_iter, random_state=args.random_state,
                          backend=args.backend, subspace_topk=args.subspace_topk,
                          use_subspace_member=not args.no_subspace,
                          diagnostics=args.diagnostics)
    data = make_dataset(args.dataset, random_state=args.random_state)
    print(f"[serve] fitting {args.dataset}: {data.describe()}")
    model = RHCHME(config)
    start = time.perf_counter()
    result = model.fit(data)
    print(f"[serve] fit done in {time.perf_counter() - start:.2f}s "
          f"({result.n_iterations} iterations, converged={result.converged}, "
          f"backend={result.extras['backend']})")
    artifact = result.to_model(data, model.config)
    if args.diagnostics:
        spectral = (artifact.diagnostics or {}).get("fit", {}).get("spectral", {})
        for type_name, entry in spectral.items():
            print(f"[serve] diagnostics {type_name}: "
                  f"spectral_gap={entry['spectral_gap']:.4g} "
                  f"laplacian_energy={entry['laplacian_energy']:.4g} "
                  f"connected={entry['connected']}")
    written = artifact.save(args.output, shards=args.shards)
    if args.shards == "per-type":
        shard_files = RHCHMEModel.shard_paths(
            written, RHCHMEModel.read_metadata(written))
        print(f"[serve] wrote {len(shard_files)} per-type shards "
              f"({', '.join(sorted(p.name for p in shard_files.values()))}) "
              f"+ {written.with_suffix('.json').name}")
    else:
        print(f"[serve] wrote {written} (+ {written.with_suffix('.json').name})")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    request = PredictRequest(model=str(args.model), type_name=args.type_name,
                             queries=_load_queries(args.queries),
                             batch_size=args.batch_size)
    predictor = BatchPredictor(default_batch_size=args.batch_size,
                               lazy_shards=True)
    response = predictor.serve(request)
    stats = predictor.stats
    counts = np.bincount(response.labels,
                         minlength=response.membership.shape[1])
    if args.output is not None:
        np.savez_compressed(args.output, labels=response.labels,
                            membership=response.membership)
    if args.json:
        # Machine-readable result document: the wire-schema response
        # (membership elided — use --output for the arrays) extended with
        # histogram/throughput fields.  One JSON object on stdout.
        document = response.to_json_dict()
        document.pop("membership")
        document.update({
            "n_queries": response.n_queries,
            "batch_size": args.batch_size,
            "seconds": round(response.seconds, 6),
            "objects_per_second": round(stats.objects_per_second, 3),
            "label_histogram": counts.tolist(),
            "output": str(args.output) if args.output is not None else None,
        })
        print(json.dumps(document, indent=2))
        return 0
    print(f"[serve] predicted {response.n_queries} {args.type_name!r} objects "
          f"in {stats.last_latency_seconds:.4f}s "
          f"({stats.objects_per_second:.0f} objects/s, "
          f"{response.n_batches} batches)")
    print(f"[serve] label histogram: {counts.tolist()}")
    if args.output is not None:
        print(f"[serve] wrote {args.output}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    # Metadata lives in the JSON sidecar; validating and printing it never
    # decompresses the (potentially huge) arrays.
    metadata = RHCHMEModel.read_metadata(args.model)
    shards = metadata.get("shards")
    # Computed convenience keys so scripts need not infer the layout from
    # the manifest or walk the diagnostics section for availability.
    metadata["layout"] = shards["layout"] if shards else "monolithic"
    diagnostics = metadata.get("diagnostics") or {}
    metadata["diagnostics_available"] = sorted(
        key for key in ("fingerprints", "fit") if diagnostics.get(key))
    print(json.dumps(metadata, indent=2))
    return 0


def main(argv=None) -> int:
    """Entry point of ``python -m repro.serve``."""
    args = _build_parser().parse_args(argv)
    handlers = {"fit-save": _cmd_fit_save, "predict": _cmd_predict,
                "info": _cmd_info}
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        # Stable taxonomy on both channels: the machine-readable code in
        # the message and the code's dedicated process exit code.
        print(f"[serve] error[{exc.code}]: {exc}", file=sys.stderr)
        return exc.exit_code
