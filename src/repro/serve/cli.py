"""Command line interface of the serving subsystem.

Three subcommands cover the fit→persist→serve lifecycle::

    python -m repro.serve fit-save --dataset multi5-small --output model.npz
    python -m repro.serve predict  --model model.npz --type documents \\
                                   --queries queries.npy --output predictions.npz
    python -m repro.serve info     --model model.npz

``fit-save`` fits RHCHME on a registered synthetic dataset preset and writes
the artifact; ``predict`` loads an artifact and batch-predicts a ``.npy`` /
``.npz`` query matrix, writing hard labels and soft membership scores;
``info`` prints the artifact's sidecar metadata without loading the arrays.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from ..core.config import RHCHMEConfig
from ..core.rhchme import RHCHME
from ..data.datasets import list_datasets, make_dataset
from ..exceptions import ReproError
from .artifact import RHCHMEModel
from .predictor import BatchPredictor

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Persist fitted RHCHME models and serve out-of-sample predictions")
    commands = parser.add_subparsers(dest="command", required=True)

    fit = commands.add_parser(
        "fit-save", help="fit RHCHME on a dataset preset and save the artifact")
    fit.add_argument("--dataset", default="multi5-small",
                     help=f"dataset preset (one of: {', '.join(list_datasets())})")
    fit.add_argument("--output", required=True, type=Path,
                     help="artifact path (.npz; a .json sidecar lands next to it)")
    fit.add_argument("--random-state", type=int, default=0)
    fit.add_argument("--max-iter", type=int, default=30)
    fit.add_argument("--backend", default="auto",
                     choices=["auto", "dense", "sparse"])
    fit.add_argument("--subspace-topk", type=int, default=None,
                     help="top-k sparsification of the subspace member affinity")
    fit.add_argument("--no-subspace", action="store_true",
                     help="disable the subspace ensemble member (faster fits)")

    predict = commands.add_parser(
        "predict", help="batch-predict new objects against a saved artifact")
    predict.add_argument("--model", required=True, type=Path)
    predict.add_argument("--type", required=True, dest="type_name",
                         help="object type the queries belong to")
    predict.add_argument("--queries", required=True, type=Path,
                         help=".npy (or single-array .npz) query feature matrix")
    predict.add_argument("--output", type=Path, default=None,
                         help="write labels + membership to this .npz")
    predict.add_argument("--batch-size", type=int, default=256)

    info = commands.add_parser("info", help="print artifact metadata")
    info.add_argument("--model", required=True, type=Path)
    return parser


def _load_queries(path: Path) -> np.ndarray:
    if not path.exists():
        raise ReproError(f"query file not found: {path}")
    loaded = np.load(path)
    if isinstance(loaded, np.lib.npyio.NpzFile):
        names = loaded.files
        if len(names) != 1:
            raise ReproError(
                f"{path} holds {len(names)} arrays ({names}); store the query "
                "matrix alone or pass a .npy file")
        return np.asarray(loaded[names[0]])
    return np.asarray(loaded)


def _cmd_fit_save(args: argparse.Namespace) -> int:
    config = RHCHMEConfig(max_iter=args.max_iter, random_state=args.random_state,
                          backend=args.backend, subspace_topk=args.subspace_topk,
                          use_subspace_member=not args.no_subspace)
    data = make_dataset(args.dataset, random_state=args.random_state)
    print(f"[serve] fitting {args.dataset}: {data.describe()}")
    model = RHCHME(config)
    start = time.perf_counter()
    result = model.fit(data)
    print(f"[serve] fit done in {time.perf_counter() - start:.2f}s "
          f"({result.n_iterations} iterations, converged={result.converged}, "
          f"backend={result.extras['backend']})")
    artifact = result.to_model(data, model.config)
    written = artifact.save(args.output)
    print(f"[serve] wrote {written} (+ {written.with_suffix('.json').name})")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    queries = _load_queries(args.queries)
    predictor = BatchPredictor(default_batch_size=args.batch_size)
    prediction = predictor.predict(args.model, args.type_name, queries)
    stats = predictor.stats
    print(f"[serve] predicted {prediction.n_queries} {args.type_name!r} objects "
          f"in {stats.last_latency_seconds:.4f}s "
          f"({stats.objects_per_second:.0f} objects/s, "
          f"{prediction.n_batches} batches)")
    counts = np.bincount(prediction.labels,
                         minlength=prediction.membership.shape[1])
    print(f"[serve] label histogram: {counts.tolist()}")
    if args.output is not None:
        np.savez_compressed(args.output, labels=prediction.labels,
                            membership=prediction.membership)
        print(f"[serve] wrote {args.output}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    # Metadata lives in the JSON sidecar; validating and printing it never
    # decompresses the (potentially huge) arrays.
    print(json.dumps(RHCHMEModel.read_metadata(args.model), indent=2))
    return 0


def main(argv=None) -> int:
    """Entry point of ``python -m repro.serve``."""
    args = _build_parser().parse_args(argv)
    handlers = {"fit-save": _cmd_fit_save, "predict": _cmd_predict,
                "info": _cmd_info}
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"[serve] error: {exc}", file=sys.stderr)
        return 1
