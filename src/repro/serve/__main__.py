"""``python -m repro.serve`` dispatches to the serving CLI."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
