"""Model persistence and out-of-sample batch prediction (the serving layer).

A full ``RHCHME.fit`` labels only the objects it was trained on; this
package turns one fit into a *servable model*:

* :class:`RHCHMEModel` — an immutable fitted-model artifact (config,
  per-type training features, factorisation state, labels, schema stamp)
  with exact ``save``/``load`` round-trips via compressed ``.npz`` + JSON
  sidecar;
* :func:`out_of_sample_predict` / :meth:`RHCHMEModel.predict` — the
  anchor-style out-of-sample extension: a query's p-NN affinities to the
  training objects smooth the fitted membership block onto the query, in
  micro-batches with bounded memory;
* :class:`BatchPredictor` — the thread-safe serving front-end with an LRU
  model cache, per-type input validation and latency/throughput counters;
* per-type **sharded artifacts** — ``save(path, shards="per-type")`` writes
  one npz per object type plus a manifest sidecar, and
  :class:`ShardedModelReader` / :func:`open_model` serve from them lazily,
  reading only the shards of the types actually queried;
* :func:`holdout_split` — train/query splits of relational datasets for
  evaluating served predictions against full refits;
* ``python -m repro.serve`` — ``fit-save`` / ``predict`` / ``info`` CLI.

The async multi-worker front-end with dynamic micro-batching lives one
layer up, in :mod:`repro.runtime`.
"""

from .artifact import (MMAP_LAYOUT, RHCHMEModel, SCHEMA_VERSION,
                       SHARD_LAYOUTS, TypeInfo, load_model)
from .extension import Prediction, out_of_sample_predict
from .holdout import HoldoutSplit, holdout_split
from .predictor import BatchPredictor, ServingStats
from .shards import ShardedModelReader, open_model

__all__ = [
    "BatchPredictor",
    "HoldoutSplit",
    "MMAP_LAYOUT",
    "Prediction",
    "RHCHMEModel",
    "SCHEMA_VERSION",
    "SHARD_LAYOUTS",
    "ServingStats",
    "ShardedModelReader",
    "TypeInfo",
    "holdout_split",
    "load_model",
    "open_model",
    "out_of_sample_predict",
]
