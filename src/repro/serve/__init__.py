"""Model persistence and out-of-sample batch prediction (the serving layer).

A full ``RHCHME.fit`` labels only the objects it was trained on; this
package turns one fit into a *servable model*:

* :class:`RHCHMEModel` — an immutable fitted-model artifact (config,
  per-type training features, factorisation state, labels, schema stamp)
  with exact ``save``/``load`` round-trips via compressed ``.npz`` + JSON
  sidecar;
* :func:`out_of_sample_predict` / :meth:`RHCHMEModel.predict` — the
  anchor-style out-of-sample extension: a query's p-NN affinities to the
  training objects smooth the fitted membership block onto the query, in
  micro-batches with bounded memory;
* :class:`BatchPredictor` — the serving front-end with an LRU model cache,
  per-type input validation and latency/throughput counters;
* :func:`holdout_split` — train/query splits of relational datasets for
  evaluating served predictions against full refits;
* ``python -m repro.serve`` — ``fit-save`` / ``predict`` / ``info`` CLI.
"""

from .artifact import RHCHMEModel, SCHEMA_VERSION, TypeInfo, load_model
from .extension import Prediction, out_of_sample_predict
from .holdout import HoldoutSplit, holdout_split
from .predictor import BatchPredictor, ServingStats

__all__ = [
    "BatchPredictor",
    "HoldoutSplit",
    "Prediction",
    "RHCHMEModel",
    "SCHEMA_VERSION",
    "ServingStats",
    "TypeInfo",
    "holdout_split",
    "load_model",
    "out_of_sample_predict",
]
