"""Hold out objects of one type from a multi-type relational dataset.

Evaluating the out-of-sample extension needs a clean train/query split of a
*relational* dataset: removing objects of one type also removes their rows
(or columns) from every relation touching that type.  The split keeps every
other type intact, so the training dataset stays a valid
:class:`MultiTypeRelationalData` a fresh ``RHCHME.fit`` accepts, and the
held-out objects become plain query feature rows for
:meth:`RHCHMEModel.predict`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_positive_float, check_random_state
from ..exceptions import ValidationError
from ..relational.dataset import MultiTypeRelationalData
from ..relational.types import ObjectType, Relation

__all__ = ["HoldoutSplit", "holdout_split"]


@dataclass(frozen=True)
class HoldoutSplit:
    """Outcome of holding out objects of one type.

    Attributes
    ----------
    train:
        The reduced dataset (held-out objects of the split type removed from
        the type and from every relation touching it).
    type_name:
        The type the split was performed on.
    query_features:
        ``(n_queries, d)`` features of the held-out objects.
    query_labels:
        Ground-truth labels of the held-out objects (``None`` when the type
        has no labels).
    query_indices, train_indices:
        Positions of the held-out / kept objects in the original type's
        ordering, for joining predictions back against the full dataset.
    """

    train: MultiTypeRelationalData
    type_name: str
    query_features: np.ndarray
    query_labels: np.ndarray | None
    query_indices: np.ndarray
    train_indices: np.ndarray


def holdout_split(data: MultiTypeRelationalData, type_name: str, *,
                  fraction: float = 0.2, random_state=None) -> HoldoutSplit:
    """Split one type of ``data`` into training objects and held-out queries.

    Parameters
    ----------
    data:
        The full multi-type dataset.
    type_name:
        The type to hold objects out of; it must carry a feature matrix
        (queries are served from feature space).
    fraction:
        Fraction of the type's objects to hold out (at least one object is
        held out; at least ``n_clusters`` and two objects must remain).
    random_state:
        Seed for the permutation choosing the held-out objects.
    """
    fraction = check_positive_float(fraction, name="fraction")
    if fraction >= 1.0:
        raise ValidationError(f"fraction must be < 1, got {fraction}")
    target = data.get_type(type_name)
    if target.features is None:
        raise ValidationError(
            f"type {type_name!r} has no features; held-out objects could not "
            "be served as queries")
    rng = check_random_state(random_state)
    n_objects = target.n_objects
    n_hold = max(1, int(round(fraction * n_objects)))
    n_train = n_objects - n_hold
    if n_train < max(target.n_clusters, 2):
        raise ValidationError(
            f"holding out {n_hold} of {n_objects} {type_name!r} objects leaves "
            f"{n_train} training objects, fewer than required "
            f"(max(n_clusters={target.n_clusters}, 2))")
    permutation = rng.permutation(n_objects)
    query_indices = np.sort(permutation[:n_hold])
    train_indices = np.sort(permutation[n_hold:])

    reduced_target = ObjectType(
        name=target.name, n_objects=n_train, n_clusters=target.n_clusters,
        features=target.features[train_indices],
        labels=target.labels[train_indices] if target.labels is not None else None)
    types = [reduced_target if t.name == type_name else t for t in data.types]

    relations = []
    for relation in data.relations:
        matrix = relation.matrix
        if relation.source == type_name:
            matrix = matrix[train_indices, :]
        if relation.target == type_name:
            matrix = matrix[:, train_indices]
        relations.append(Relation(source=relation.source, target=relation.target,
                                  matrix=matrix, weight=relation.weight))

    train = MultiTypeRelationalData(types, relations)
    return HoldoutSplit(
        train=train, type_name=type_name,
        query_features=np.array(target.features[query_indices]),
        query_labels=(np.array(target.labels[query_indices])
                      if target.labels is not None else None),
        query_indices=query_indices, train_indices=train_indices)
