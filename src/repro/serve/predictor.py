"""The batch-serving front-end: cached models, validation, counters.

:class:`BatchPredictor` is the process-level entry point a serving loop
talks to.  It keeps an LRU cache of loaded model artifacts keyed by their
resolved path (reloading a several-hundred-megabyte npz per request would
dominate latency), validates every request's type name and feature
dimensionality before any numerics run, and maintains simple
latency/throughput counters (requests, objects, wall-clock seconds, cache
hits/evictions/misses) that a scraper can export.

The predictor is thread-safe: the model cache and the counters are guarded
by one lock, so it can sit behind the :mod:`repro.runtime` worker pool —
the numerical predict itself runs outside the lock and the underlying
artifacts are immutable, so concurrent predicts against the same model do
not serialise.  With ``lazy_shards=True`` a per-type sharded artifact is
opened through :class:`repro.serve.shards.ShardedModelReader`, so a process
serving one type never decompresses the other types' blocks.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from .._validation import check_positive_int
from ..diagnostics.drift import DriftDetector
from ..obs import activate_span, current_span
from ._legacy import legacy_positional_args
from .artifact import RHCHMEModel
from .extension import Prediction
from .shards import open_model

__all__ = ["ServingStats", "BatchPredictor"]

# Cache sentinel distinguishing "detector not built yet" from "model has no
# fingerprints" (stored as None so the probe is not repeated per request).
_UNSET = object()


@dataclass
class ServingStats:
    """Cumulative serving counters of one :class:`BatchPredictor`."""

    requests: int = 0
    objects: int = 0
    seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    last_latency_seconds: float = 0.0
    per_type_objects: dict[str, int] = field(default_factory=dict)

    @property
    def objects_per_second(self) -> float:
        """Cumulative predict throughput (0 before the first request)."""
        return self.objects / self.seconds if self.seconds > 0 else 0.0

    def as_dict(self) -> dict:
        """Plain-dictionary snapshot for logs and metric exporters."""
        return {
            "requests": self.requests,
            "objects": self.objects,
            "seconds": round(self.seconds, 6),
            "objects_per_second": round(self.objects_per_second, 3),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "last_latency_seconds": round(self.last_latency_seconds, 6),
            "per_type_objects": dict(self.per_type_objects),
        }


class BatchPredictor:
    """Serve out-of-sample predictions from persisted model artifacts.

    Parameters
    ----------
    cache_size:
        Maximum number of loaded models kept in memory; the least recently
        used artifact is evicted when a new one would exceed the bound.
    default_batch_size:
        Micro-batch size used when a request does not specify one.
    lazy_shards:
        Open per-type sharded artifacts lazily (only queried types' shards
        are read from disk); monolithic artifacts always load eagerly.
    diagnostics:
        Score every served batch against the model's training fingerprints
        with a :class:`repro.diagnostics.DriftDetector` (one per cached
        model, built lazily from the artifact sidecar).  ``False``
        (default) skips scoring entirely; ``True`` enables it with the
        detector defaults; a dict enables it and is forwarded as detector
        options (e.g. ``{"min_rows": 32}``).  Scoring is O(batch) counting
        on histograms already computed at fit time, so the per-request
        overhead is a few percent at most; models whose artifacts predate
        fingerprints are silently skipped.
    obs:
        Optional :class:`repro.obs.Observability` hub to record the
        ``compute.predict`` stage into (the runtime passes its own, so the
        numerics window lands in the same histograms as the queue and
        wire stages).  When the hub has tracing on and a span is active
        (the runtime activates the batch span around the predict), a
        ``compute.predict`` child is attached under it and the
        out-of-sample extension nests its own children below that.
    """

    def __init__(self, *, cache_size: int = 4,
                 default_batch_size: int = 256,
                 lazy_shards: bool = False,
                 diagnostics: bool | dict = False,
                 obs=None) -> None:
        self.cache_size = check_positive_int(cache_size, name="cache_size")
        self.default_batch_size = check_positive_int(default_batch_size,
                                                     name="default_batch_size")
        self.lazy_shards = bool(lazy_shards)
        self.obs = obs
        self.diagnostics = isinstance(diagnostics, dict) or bool(diagnostics)
        self._detector_options: dict = (dict(diagnostics)
                                        if isinstance(diagnostics, dict) else {})
        self._detectors: dict[str, DriftDetector | None] = {}
        self._models: OrderedDict[str, object] = OrderedDict()
        # RLock: public methods that take the lock may call each other.
        self._lock = threading.RLock()
        # Per-key locks serialising cold loads: a burst of first requests
        # for one model decompresses it once (single-flight) without the
        # load blocking cache hits for *other* models behind the global
        # lock — the global lock only ever guards dictionary operations.
        self._load_locks: dict[str, threading.Lock] = {}
        self.stats = ServingStats()

    # ------------------------------------------------------------ model cache
    def get_model(self, path):
        """Return the artifact at ``path``, loading it on first use (LRU).

        Cache keys are canonical resolved paths, so different spellings of
        the same artifact (``model``, ``model.npz``, ``./model.npz``) share
        one cache entry.  Cold loads are single-flight per key and do not
        hold the global cache lock, so a multi-second load of one model
        never stalls cache hits for the models already resident.
        """
        key = str(RHCHMEModel.resolve_path(path))
        with self._lock:
            model = self._models.get(key)
            if model is not None:
                self._models.move_to_end(key)
                self.stats.cache_hits += 1
                return model
            load_lock = self._load_locks.setdefault(key, threading.Lock())
        with load_lock:
            with self._lock:
                model = self._models.get(key)
                if model is not None:  # loaded while we waited on the lock
                    self._models.move_to_end(key)
                    self.stats.cache_hits += 1
                    return model
            model = open_model(path, lazy=self.lazy_shards)
            with self._lock:
                self.stats.cache_misses += 1
                self._store_locked(key, model)
                self._load_locks.pop(key, None)
        return model

    def peek_model(self, path):
        """Return the cached model for ``path`` without loading or counting.

        ``None`` when the artifact is not resident; never touches the disk
        and does not update the LRU order or the hit/miss counters.
        """
        with self._lock:
            return self._models.get(str(RHCHMEModel.resolve_path(path)))

    def put_model(self, path, model) -> None:
        """Insert (or hot-swap) a loaded model under ``path``'s cache key.

        Used by the runtime's ``refresh()`` to publish a refitted artifact
        atomically: requests already executing keep their reference to the
        old immutable model and finish normally; every request that resolves
        the path after this call sees the new one.
        """
        key = str(RHCHMEModel.resolve_path(path))
        with self._lock:
            self._models.pop(key, None)
            # The new model carries fresh fingerprints: drop the old
            # detector so post-swap batches are scored against them.
            self._detectors.pop(key, None)
            self._store_locked(key, model)

    def _store_locked(self, key: str, model) -> None:
        self._models[key] = model
        while len(self._models) > self.cache_size:
            self._models.popitem(last=False)
            self.stats.cache_evictions += 1

    def evict(self, path=None) -> None:
        """Drop one cached model (or the whole cache with ``path=None``)."""
        with self._lock:
            if path is None:
                self._models.clear()
                self._detectors.clear()
            else:
                key = str(RHCHMEModel.resolve_path(path))
                self._models.pop(key, None)
                self._detectors.pop(key, None)

    @property
    def cached_models(self) -> list[str]:
        """Paths of the currently cached models, least recently used first."""
        with self._lock:
            return list(self._models)

    # -------------------------------------------------------------- prediction
    def serve(self, request) -> "PredictResponse":
        """Serve one :class:`~repro.net.schema.PredictRequest` (canonical).

        ``request.model`` is the artifact path (resolved through the LRU
        cache).  Validates the type name and query feature dimensionality
        against the artifact (raising
        :class:`~repro.exceptions.ValidationError` on mismatch) before
        running the out-of-sample extension, folds the request into the
        cumulative serving counters and returns a
        :class:`~repro.net.schema.PredictResponse` echoing the request's
        ``request_id``.
        """
        from ..net.schema import PredictResponse

        model = self.get_model(request.model)
        batch_size = request.batch_size or self.default_batch_size
        parent = current_span() if (self.obs is not None
                                    and self.obs.tracing) else None
        span = (None if parent is None
                else parent.child("compute.predict", type=request.type_name,
                                  rows=int(request.queries.shape[0]),
                                  batch_size=int(batch_size)))
        start = time.perf_counter()
        try:
            with activate_span(span):
                prediction = model.predict(request.type_name, request.queries,
                                           batch_size=batch_size)
        except BaseException as exc:
            if span is not None:
                span.finish(error=exc)
            raise
        elapsed = time.perf_counter() - start
        if span is not None:
            span.finish()
        if self.obs is not None:
            self.obs.observe_stage(str(request.model), "compute.predict",
                                   elapsed)
        if self.diagnostics:
            self._observe_drift(request, model, prediction)
        with self._lock:
            self.stats.requests += 1
            self.stats.objects += prediction.n_queries
            self.stats.seconds += elapsed
            self.stats.last_latency_seconds = elapsed
            self.stats.per_type_objects[request.type_name] = (
                self.stats.per_type_objects.get(request.type_name, 0)
                + prediction.n_queries)
        return PredictResponse.from_prediction(request, prediction,
                                               seconds=elapsed)

    # -------------------------------------------------------- drift scoring
    def _detector_for(self, key: str, model) -> DriftDetector | None:
        with self._lock:
            detector = self._detectors.get(key, _UNSET)
            if detector is _UNSET:
                detector = DriftDetector.from_model(model,
                                                    **self._detector_options)
                self._detectors[key] = detector
        return detector

    def _observe_drift(self, request, model, prediction) -> None:
        key = str(RHCHMEModel.resolve_path(request.model))
        detector = self._detector_for(key, model)
        if detector is not None:
            detector.observe(request.type_name, request.queries,
                             affinity_mass=prediction.affinity_mass)

    def drift_score(self, path, type_name: str):
        """Current :class:`~repro.diagnostics.DriftScore` of one type.

        ``None`` when diagnostics are off, the model has not been scored
        yet, its artifact carries no fingerprints, or the type has not
        accumulated ``min_rows`` observations.
        """
        with self._lock:
            detector = self._detectors.get(str(RHCHMEModel.resolve_path(path)))
        if detector is None or detector is _UNSET:
            return None
        return detector.score(type_name)

    def drift_snapshot(self) -> dict:
        """Per-model drift-score snapshot, keyed by resolved artifact path.

        Values are the per-type :meth:`DriftDetector.snapshot` documents of
        every model that has been scored at least once; models without
        fingerprints are omitted.
        """
        with self._lock:
            detectors = {key: det for key, det in self._detectors.items()
                         if det is not None and det is not _UNSET}
        return {key: det.snapshot() for key, det in detectors.items()}

    def predict(self, *args, **kwargs) -> Prediction:
        """Predict labels for new objects against the model at ``path``.

        Legacy adapter over :meth:`serve` — builds a
        :class:`~repro.net.schema.PredictRequest` internally and unwraps
        the response to a plain :class:`~repro.serve.Prediction`.
        Positional ``(path, type_name, X_new)`` calls are deprecated (pass
        keywords, or a schema request to :meth:`serve`); see the README
        migration notes.
        """
        from ..net.schema import PredictRequest

        batch_size = kwargs.pop("batch_size", None)
        path, type_name, X_new = legacy_positional_args(
            "BatchPredictor.predict", ("path", "type_name", "X_new"),
            args, kwargs)
        request = PredictRequest(model=str(path), type_name=str(type_name),
                                 queries=X_new, batch_size=batch_size)
        return self.serve(request).to_prediction()
