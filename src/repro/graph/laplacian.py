"""Graph Laplacians of intra-type affinity matrices.

The HOCC objectives regularise the cluster membership matrix with
``tr(Gᵀ L G)`` where ``L`` is a graph Laplacian of the intra-type affinity
``W``.  The paper's formulation uses ``L = D − W`` (with ``D`` the degree
matrix); the symmetric-normalised variant ``I − D^{-1/2} W D^{-1/2}`` is also
provided because the paper refers to the regulariser as a *normalised* graph
Laplacian and both behave equivalently up to degree scaling.

Every builder accepts either a dense ``numpy`` affinity or a scipy sparse
one and returns a Laplacian in the same representation: a p-NN affinity with
``O(p)`` non-zeros per row yields a CSR Laplacian with the same sparsity
(plus the diagonal), which the solvers consume purely as an operator.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .._validation import as_float_array, check_square, check_symmetric
from ..exceptions import ValidationError
from ..linalg.normalize import symmetric_normalize

__all__ = [
    "degree_vector",
    "unnormalized_laplacian",
    "normalized_laplacian",
    "random_walk_laplacian",
    "laplacian",
]

_EPS = 1e-12


def _coerce_sparse(affinity, *, name: str = "affinity") -> sp.csr_array:
    """Return a square, finite, float64 CSR view of a sparse affinity."""
    csr = affinity.tocsr().astype(np.float64, copy=False)
    check_square(csr, name=name)
    if csr.nnz and not np.all(np.isfinite(csr.data)):
        raise ValidationError(f"{name} contains NaN or infinite entries")
    return csr


def _check_sparse_affinity(affinity, *, name: str = "affinity") -> sp.csr_array:
    """Validate a sparse affinity as symmetric float64 CSR.

    Symmetry repair is delegated to the shared ``check_symmetric`` so that
    dense and sparse pipelines apply one tolerance policy.
    """
    return check_symmetric(_coerce_sparse(affinity, name=name),
                           name=name, fix=True).tocsr()


def degree_vector(affinity) -> np.ndarray:
    """Row-sum degree vector ``d_i = Σ_j W_ij`` of an affinity matrix."""
    if sp.issparse(affinity):
        csr = _coerce_sparse(affinity)
        return np.asarray(csr.sum(axis=1)).ravel()
    affinity = as_float_array(affinity, name="affinity", ndim=2)
    check_square(affinity, name="affinity")
    return np.sum(affinity, axis=1)


def unnormalized_laplacian(affinity):
    """Combinatorial Laplacian ``L = D − W``."""
    if sp.issparse(affinity):
        csr = _check_sparse_affinity(affinity)
        degrees = np.asarray(csr.sum(axis=1)).ravel()
        return (sp.diags_array(degrees) - csr).tocsr()
    affinity = as_float_array(affinity, name="affinity", ndim=2)
    affinity = check_symmetric(affinity, name="affinity", fix=True)
    laplacian_matrix = -affinity.copy()
    degrees = np.sum(affinity, axis=1)
    laplacian_matrix[np.diag_indices_from(laplacian_matrix)] += degrees
    return laplacian_matrix


def normalized_laplacian(affinity):
    """Symmetric-normalised Laplacian ``L = I − D^{-1/2} W D^{-1/2}``.

    Isolated vertices contribute a zero row/column of the normalised affinity
    and therefore a diagonal entry of 1 in the Laplacian.
    """
    if sp.issparse(affinity):
        csr = _check_sparse_affinity(affinity)
        normalised = symmetric_normalize(csr)
        return (sp.eye_array(csr.shape[0], format="csr") - normalised).tocsr()
    affinity = as_float_array(affinity, name="affinity", ndim=2)
    affinity = check_symmetric(affinity, name="affinity", fix=True)
    normalised = symmetric_normalize(affinity)
    laplacian_matrix = -normalised
    laplacian_matrix[np.diag_indices_from(laplacian_matrix)] += 1.0
    return laplacian_matrix


def random_walk_laplacian(affinity):
    """Random-walk Laplacian ``L = I − D^{-1} W`` (rows of zero degree kept)."""
    if sp.issparse(affinity):
        csr = _check_sparse_affinity(affinity)
        degrees = np.asarray(csr.sum(axis=1)).ravel()
        inverse = np.where(degrees > _EPS, 1.0 / np.maximum(degrees, _EPS), 0.0)
        walk = sp.diags_array(inverse) @ csr
        return (sp.eye_array(csr.shape[0], format="csr") - walk).tocsr()
    affinity = as_float_array(affinity, name="affinity", ndim=2)
    affinity = check_symmetric(affinity, name="affinity", fix=True)
    degrees = np.sum(affinity, axis=1)
    inverse = np.where(degrees > _EPS, 1.0 / np.maximum(degrees, _EPS), 0.0)
    walk = affinity * inverse[:, None]
    laplacian_matrix = -walk
    laplacian_matrix[np.diag_indices_from(laplacian_matrix)] += 1.0
    return laplacian_matrix


def laplacian(affinity, kind: str = "unnormalized"):
    """Dispatch to one of the Laplacian variants by name.

    Parameters
    ----------
    affinity:
        Symmetric non-negative affinity matrix, dense or scipy sparse; the
        Laplacian is returned in the same representation.
    kind:
        ``"unnormalized"`` (paper's ``D − W``), ``"normalized"`` (symmetric)
        or ``"random_walk"``.
    """
    builders = {
        "unnormalized": unnormalized_laplacian,
        "normalized": normalized_laplacian,
        "random_walk": random_walk_laplacian,
    }
    if kind not in builders:
        raise ValueError(
            f"unknown laplacian kind {kind!r}; expected one of {sorted(builders)}")
    return builders[kind](affinity)
