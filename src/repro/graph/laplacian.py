"""Graph Laplacians of intra-type affinity matrices.

The HOCC objectives regularise the cluster membership matrix with
``tr(Gᵀ L G)`` where ``L`` is a graph Laplacian of the intra-type affinity
``W``.  The paper's formulation uses ``L = D − W`` (with ``D`` the degree
matrix); the symmetric-normalised variant ``I − D^{-1/2} W D^{-1/2}`` is also
provided because the paper refers to the regulariser as a *normalised* graph
Laplacian and both behave equivalently up to degree scaling.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array, check_square, check_symmetric
from ..linalg.normalize import symmetric_normalize

__all__ = [
    "degree_vector",
    "unnormalized_laplacian",
    "normalized_laplacian",
    "random_walk_laplacian",
    "laplacian",
]

_EPS = 1e-12


def degree_vector(affinity: np.ndarray) -> np.ndarray:
    """Row-sum degree vector ``d_i = Σ_j W_ij`` of an affinity matrix."""
    affinity = as_float_array(affinity, name="affinity", ndim=2)
    check_square(affinity, name="affinity")
    return np.sum(affinity, axis=1)


def unnormalized_laplacian(affinity: np.ndarray) -> np.ndarray:
    """Combinatorial Laplacian ``L = D − W``."""
    affinity = as_float_array(affinity, name="affinity", ndim=2)
    affinity = check_symmetric(affinity, name="affinity", fix=True)
    laplacian_matrix = -affinity.copy()
    degrees = np.sum(affinity, axis=1)
    laplacian_matrix[np.diag_indices_from(laplacian_matrix)] += degrees
    return laplacian_matrix


def normalized_laplacian(affinity: np.ndarray) -> np.ndarray:
    """Symmetric-normalised Laplacian ``L = I − D^{-1/2} W D^{-1/2}``.

    Isolated vertices contribute a zero row/column of the normalised affinity
    and therefore a diagonal entry of 1 in the Laplacian.
    """
    affinity = as_float_array(affinity, name="affinity", ndim=2)
    affinity = check_symmetric(affinity, name="affinity", fix=True)
    normalised = symmetric_normalize(affinity)
    laplacian_matrix = -normalised
    laplacian_matrix[np.diag_indices_from(laplacian_matrix)] += 1.0
    return laplacian_matrix


def random_walk_laplacian(affinity: np.ndarray) -> np.ndarray:
    """Random-walk Laplacian ``L = I − D^{-1} W`` (rows of zero degree kept)."""
    affinity = as_float_array(affinity, name="affinity", ndim=2)
    affinity = check_symmetric(affinity, name="affinity", fix=True)
    degrees = np.sum(affinity, axis=1)
    inverse = np.where(degrees > _EPS, 1.0 / np.maximum(degrees, _EPS), 0.0)
    walk = affinity * inverse[:, None]
    laplacian_matrix = -walk
    laplacian_matrix[np.diag_indices_from(laplacian_matrix)] += 1.0
    return laplacian_matrix


def laplacian(affinity: np.ndarray, kind: str = "unnormalized") -> np.ndarray:
    """Dispatch to one of the Laplacian variants by name.

    Parameters
    ----------
    affinity:
        Symmetric non-negative affinity matrix.
    kind:
        ``"unnormalized"`` (paper's ``D − W``), ``"normalized"`` (symmetric)
        or ``"random_walk"``.
    """
    builders = {
        "unnormalized": unnormalized_laplacian,
        "normalized": normalized_laplacian,
        "random_walk": random_walk_laplacian,
    }
    if kind not in builders:
        raise ValueError(
            f"unknown laplacian kind {kind!r}; expected one of {sorted(builders)}")
    return builders[kind](affinity)
