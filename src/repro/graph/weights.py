"""Edge weighting schemes for p-nearest-neighbour graphs.

The paper (Eq. 3 and Section II.A) lists three ways of weighting an edge
between neighbouring objects:

* **binary** — weight 1 whenever a neighbour relation exists;
* **heat kernel** — ``exp(−‖xᵢ − xⱼ‖² / σ)`` with a user bandwidth σ;
* **cosine** — the cosine similarity of the two feature vectors (this is the
  scheme RHCHME uses for its ``W^E`` member, Section III.B).
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from .._validation import as_float_array, check_positive_float
from .neighbors import pairwise_cosine_similarity, pairwise_euclidean_distances

__all__ = ["WeightingScheme", "compute_edge_weights", "compute_edge_weights_pairs"]

_EPS = 1e-12


class WeightingScheme(str, Enum):
    """Supported p-NN edge weighting schemes."""

    BINARY = "binary"
    HEAT_KERNEL = "heat_kernel"
    COSINE = "cosine"

    @classmethod
    def coerce(cls, value: "WeightingScheme | str") -> "WeightingScheme":
        """Accept either an enum member or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value))
        except ValueError as exc:
            valid = ", ".join(member.value for member in cls)
            raise ValueError(
                f"unknown weighting scheme {value!r}; expected one of: {valid}") from exc


def compute_edge_weights(X: np.ndarray,
                         scheme: WeightingScheme | str = WeightingScheme.COSINE,
                         *, sigma: float = 1.0) -> np.ndarray:
    """Return the full ``n × n`` matrix of candidate edge weights.

    The p-NN graph builder masks this matrix down to actual neighbour pairs;
    computing the dense weight matrix first keeps the weighting schemes
    trivially interchangeable.

    Parameters
    ----------
    X:
        ``(n, d)`` data matrix, one object per row.
    scheme:
        Weighting scheme; see :class:`WeightingScheme`.
    sigma:
        Heat-kernel bandwidth (only used by the heat-kernel scheme).
    """
    scheme = WeightingScheme.coerce(scheme)
    X = as_float_array(X, name="X", ndim=2)
    if scheme is WeightingScheme.BINARY:
        weights = np.ones((X.shape[0], X.shape[0]), dtype=np.float64)
    elif scheme is WeightingScheme.HEAT_KERNEL:
        sigma = check_positive_float(sigma, name="sigma")
        distances = pairwise_euclidean_distances(X)
        weights = np.exp(-(distances ** 2) / sigma)
    else:  # cosine
        # Negative cosine similarities are clipped: the affinity matrix W^E
        # must stay non-negative for the graph Laplacian to be well defined.
        weights = np.maximum(pairwise_cosine_similarity(X), 0.0)
    np.fill_diagonal(weights, 0.0)
    return weights


def compute_edge_weights_pairs(X: np.ndarray, rows: np.ndarray, cols: np.ndarray,
                               scheme: WeightingScheme | str = WeightingScheme.COSINE,
                               *, sigma: float = 1.0) -> np.ndarray:
    """Return edge weights for an explicit list of ``(rows[k], cols[k])`` pairs.

    This is the sparse counterpart of :func:`compute_edge_weights`: instead of
    the full ``n × n`` candidate matrix it evaluates the same weighting scheme
    only on the requested pairs (the p-NN edge list), costing O(|pairs| · d)
    time and memory.  Self-pairs (``rows[k] == cols[k]``) get weight zero,
    matching the zeroed diagonal of the dense weight matrix.
    """
    scheme = WeightingScheme.coerce(scheme)
    X = as_float_array(X, name="X", ndim=2)
    rows = np.asarray(rows, dtype=np.int64).ravel()
    cols = np.asarray(cols, dtype=np.int64).ravel()
    if rows.shape != cols.shape:
        raise ValueError(
            f"rows and cols must have equal length, got {rows.size} and {cols.size}")
    if scheme is WeightingScheme.BINARY:
        weights = np.ones(rows.shape[0], dtype=np.float64)
    elif scheme is WeightingScheme.HEAT_KERNEL:
        sigma = check_positive_float(sigma, name="sigma")
        differences = X[rows] - X[cols]
        squared = np.sum(differences * differences, axis=1)
        weights = np.exp(-squared / sigma)
    else:  # cosine
        norms = np.linalg.norm(X, axis=1)
        safe_norms = np.where(norms > _EPS, norms, 1.0)
        dots = np.einsum("ij,ij->i", X[rows], X[cols])
        similarity = dots / (safe_norms[rows] * safe_norms[cols])
        similarity[(norms[rows] <= _EPS) | (norms[cols] <= _EPS)] = 0.0
        weights = np.maximum(np.clip(similarity, -1.0, 1.0), 0.0)
    weights[rows == cols] = 0.0
    return weights
