"""Edge weighting schemes for p-nearest-neighbour graphs.

The paper (Eq. 3 and Section II.A) lists three ways of weighting an edge
between neighbouring objects:

* **binary** — weight 1 whenever a neighbour relation exists;
* **heat kernel** — ``exp(−‖xᵢ − xⱼ‖² / σ)`` with a user bandwidth σ;
* **cosine** — the cosine similarity of the two feature vectors (this is the
  scheme RHCHME uses for its ``W^E`` member, Section III.B).
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from .._validation import as_float_array, check_positive_float
from .neighbors import pairwise_cosine_similarity, pairwise_euclidean_distances

__all__ = [
    "WeightingScheme",
    "compute_edge_weights",
    "compute_edge_weights_pairs",
    "compute_edge_weights_query",
]

_EPS = 1e-12


class WeightingScheme(str, Enum):
    """Supported p-NN edge weighting schemes."""

    BINARY = "binary"
    HEAT_KERNEL = "heat_kernel"
    COSINE = "cosine"

    @classmethod
    def coerce(cls, value: "WeightingScheme | str") -> "WeightingScheme":
        """Accept either an enum member or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value))
        except ValueError as exc:
            valid = ", ".join(member.value for member in cls)
            raise ValueError(
                f"unknown weighting scheme {value!r}; expected one of: {valid}") from exc


def compute_edge_weights(X: np.ndarray,
                         scheme: WeightingScheme | str = WeightingScheme.COSINE,
                         *, sigma: float = 1.0) -> np.ndarray:
    """Return the full ``n × n`` matrix of candidate edge weights.

    The p-NN graph builder masks this matrix down to actual neighbour pairs;
    computing the dense weight matrix first keeps the weighting schemes
    trivially interchangeable.

    Parameters
    ----------
    X:
        ``(n, d)`` data matrix, one object per row.
    scheme:
        Weighting scheme; see :class:`WeightingScheme`.
    sigma:
        Heat-kernel bandwidth (only used by the heat-kernel scheme).
    """
    scheme = WeightingScheme.coerce(scheme)
    X = as_float_array(X, name="X", ndim=2)
    if scheme is WeightingScheme.BINARY:
        weights = np.ones((X.shape[0], X.shape[0]), dtype=np.float64)
    elif scheme is WeightingScheme.HEAT_KERNEL:
        sigma = check_positive_float(sigma, name="sigma")
        distances = pairwise_euclidean_distances(X)
        weights = np.exp(-(distances ** 2) / sigma)
    else:  # cosine
        # Negative cosine similarities are clipped: the affinity matrix W^E
        # must stay non-negative for the graph Laplacian to be well defined.
        weights = np.maximum(pairwise_cosine_similarity(X), 0.0)
    np.fill_diagonal(weights, 0.0)
    return weights


def _edge_weights_for_pairs(XA: np.ndarray, XB: np.ndarray, rows: np.ndarray,
                            cols: np.ndarray, scheme: WeightingScheme,
                            sigma: float,
                            norms_b: np.ndarray | None = None) -> np.ndarray:
    """Weights of explicit ``(XA[rows[k]], XB[cols[k]])`` pairs, one scheme.

    ``norms_b`` optionally supplies precomputed row norms of ``XB`` (cosine
    only) so repeated calls against the same reference set do not recompute
    them.
    """
    if scheme is WeightingScheme.BINARY:
        return np.ones(rows.shape[0], dtype=np.float64)
    if scheme is WeightingScheme.HEAT_KERNEL:
        sigma = check_positive_float(sigma, name="sigma")
        differences = XA[rows] - XB[cols]
        squared = np.sum(differences * differences, axis=1)
        return np.exp(-squared / sigma)
    # cosine
    norms_a = np.linalg.norm(XA, axis=1)
    if norms_b is None:
        norms_b = np.linalg.norm(XB, axis=1)
    safe_a = np.where(norms_a > _EPS, norms_a, 1.0)
    safe_b = np.where(norms_b > _EPS, norms_b, 1.0)
    dots = np.einsum("ij,ij->i", XA[rows], XB[cols])
    similarity = dots / (safe_a[rows] * safe_b[cols])
    similarity[(norms_a[rows] <= _EPS) | (norms_b[cols] <= _EPS)] = 0.0
    return np.maximum(np.clip(similarity, -1.0, 1.0), 0.0)


def compute_edge_weights_pairs(X: np.ndarray, rows: np.ndarray, cols: np.ndarray,
                               scheme: WeightingScheme | str = WeightingScheme.COSINE,
                               *, sigma: float = 1.0) -> np.ndarray:
    """Return edge weights for an explicit list of ``(rows[k], cols[k])`` pairs.

    This is the sparse counterpart of :func:`compute_edge_weights`: instead of
    the full ``n × n`` candidate matrix it evaluates the same weighting scheme
    only on the requested pairs (the p-NN edge list), costing O(|pairs| · d)
    time and memory.  Self-pairs (``rows[k] == cols[k]``) get weight zero,
    matching the zeroed diagonal of the dense weight matrix.
    """
    scheme = WeightingScheme.coerce(scheme)
    X = as_float_array(X, name="X", ndim=2)
    rows = np.asarray(rows, dtype=np.int64).ravel()
    cols = np.asarray(cols, dtype=np.int64).ravel()
    if rows.shape != cols.shape:
        raise ValueError(
            f"rows and cols must have equal length, got {rows.size} and {cols.size}")
    weights = _edge_weights_for_pairs(X, X, rows, cols, scheme, sigma)
    weights[rows == cols] = 0.0
    return weights


def compute_edge_weights_query(X_query: np.ndarray, X_reference: np.ndarray,
                               rows: np.ndarray, cols: np.ndarray,
                               scheme: WeightingScheme | str = WeightingScheme.COSINE,
                               *, sigma: float = 1.0,
                               reference_norms: np.ndarray | None = None) -> np.ndarray:
    """Return edge weights for query→reference pairs.

    ``rows`` indexes ``X_query`` and ``cols`` indexes ``X_reference`` (the
    edge list produced by :func:`repro.graph.neighbors.pnn_indices` in query
    mode).  Unlike :func:`compute_edge_weights_pairs` no self-pair zeroing is
    applied: queries and references are distinct object sets, and a query that
    coincides exactly with a training object should keep its full weight to
    that object.  ``reference_norms`` optionally supplies precomputed row
    norms of ``X_reference`` (cosine scheme only) so a micro-batched caller
    pays for them once, not per batch.
    """
    scheme = WeightingScheme.coerce(scheme)
    X_query = as_float_array(X_query, name="X_query", ndim=2)
    X_reference = as_float_array(X_reference, name="X_reference", ndim=2)
    if X_query.shape[1] != X_reference.shape[1]:
        raise ValueError(
            f"X_query and X_reference must share a feature dimension, "
            f"got {X_query.shape[1]} and {X_reference.shape[1]}")
    rows = np.asarray(rows, dtype=np.int64).ravel()
    cols = np.asarray(cols, dtype=np.int64).ravel()
    if rows.shape != cols.shape:
        raise ValueError(
            f"rows and cols must have equal length, got {rows.size} and {cols.size}")
    return _edge_weights_for_pairs(X_query, X_reference, rows, cols, scheme, sigma,
                                   norms_b=reference_norms)
