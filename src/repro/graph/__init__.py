"""Nearest-neighbour graphs and graph Laplacians.

This package builds the Euclidean-distance-based intra-type relationship
matrix ``W^E`` of the paper (Eq. 3) and the graph Laplacians that turn an
affinity matrix into the regulariser used in the HOCC objectives:

* :mod:`repro.graph.neighbors` — brute-force and KD-tree p-nearest-neighbour
  search.
* :mod:`repro.graph.weights` — binary, heat-kernel and cosine edge weights.
* :mod:`repro.graph.pnn` — symmetric p-NN affinity graph construction.
* :mod:`repro.graph.laplacian` — unnormalised, symmetric-normalised and
  random-walk Laplacians.
* :mod:`repro.graph.candidates` — the grid of candidate Laplacians used by
  the RMC baseline's homogeneous ensemble.
"""

from .neighbors import (
    QueryIndex,
    pairwise_cosine_similarity,
    pairwise_euclidean_distances,
    pnn_indices,
)
from .weights import (
    WeightingScheme,
    compute_edge_weights,
    compute_edge_weights_pairs,
    compute_edge_weights_query,
)
from .pnn import pnn_affinity
from .laplacian import (
    degree_vector,
    laplacian,
    normalized_laplacian,
    random_walk_laplacian,
    unnormalized_laplacian,
)
from .candidates import CandidateSpec, candidate_laplacians, default_candidate_grid

__all__ = [
    "CandidateSpec",
    "QueryIndex",
    "WeightingScheme",
    "candidate_laplacians",
    "compute_edge_weights",
    "compute_edge_weights_pairs",
    "compute_edge_weights_query",
    "default_candidate_grid",
    "degree_vector",
    "laplacian",
    "normalized_laplacian",
    "pairwise_cosine_similarity",
    "pairwise_euclidean_distances",
    "pnn_affinity",
    "pnn_indices",
    "random_walk_laplacian",
    "unnormalized_laplacian",
]
