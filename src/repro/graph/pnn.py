"""Symmetric p-nearest-neighbour affinity graphs (Eq. 3 of the paper).

``(W_k)_{ij}`` is the edge weight whenever object j is among the p nearest
neighbours of object i *or* vice versa, and zero otherwise.  This is the
Euclidean-distance-based intra-type relationship ``W^E`` that SNMTF, RMC and
the ``L_E`` member of RHCHME's heterogeneous ensemble are built from.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array, check_positive_int
from .neighbors import pnn_indices
from .weights import WeightingScheme, compute_edge_weights

__all__ = ["pnn_affinity"]


def pnn_affinity(X: np.ndarray, p: int = 5,
                 scheme: WeightingScheme | str = WeightingScheme.COSINE,
                 *, sigma: float = 1.0,
                 algorithm: str = "auto") -> np.ndarray:
    """Build the symmetric p-NN affinity matrix ``W^E`` for one object type.

    Parameters
    ----------
    X:
        ``(n, d)`` data matrix, one object per row.
    p:
        Neighbour count; the paper uses ``p = 5`` for SNMTF and RHCHME.
    scheme:
        Edge weighting scheme (binary / heat kernel / cosine).
    sigma:
        Heat-kernel bandwidth, ignored by the other schemes.
    algorithm:
        Neighbour-search backend forwarded to :func:`pnn_indices`.

    Returns
    -------
    numpy.ndarray
        Symmetric non-negative ``(n, n)`` affinity with zero diagonal.
    """
    X = as_float_array(X, name="X", ndim=2)
    p = check_positive_int(p, name="p")
    n_objects = X.shape[0]
    if p >= n_objects:
        # Degenerate tiny-type case: fall back to the densest sensible graph.
        p = max(n_objects - 1, 1)
    neighbours = pnn_indices(X, p, algorithm=algorithm)
    mask = np.zeros((n_objects, n_objects), dtype=bool)
    rows = np.repeat(np.arange(n_objects), neighbours.shape[1])
    mask[rows, neighbours.ravel()] = True
    # Eq. 3 keeps an edge if either endpoint lists the other as a neighbour.
    mask |= mask.T
    np.fill_diagonal(mask, False)
    weights = compute_edge_weights(X, scheme, sigma=sigma)
    affinity = np.where(mask, weights, 0.0)
    # Guarantee exact symmetry despite floating-point asymmetries in weights.
    return (affinity + affinity.T) / 2.0
