"""Symmetric p-nearest-neighbour affinity graphs (Eq. 3 of the paper).

``(W_k)_{ij}`` is the edge weight whenever object j is among the p nearest
neighbours of object i *or* vice versa, and zero otherwise.  This is the
Euclidean-distance-based intra-type relationship ``W^E`` that SNMTF, RMC and
the ``L_E`` member of RHCHME's heterogeneous ensemble are built from.

Two construction paths produce the same graph:

* the dense path masks a full ``n × n`` candidate weight matrix (simple, and
  fastest for small types);
* the sparse path (``sparse=True``) assembles a CSR matrix directly from the
  neighbour lists — at most ``2p`` non-zeros per row — without ever
  allocating an ``n × n`` intermediate, which is what lets the pipeline scale
  past the point where dense ``O(n²)`` arrays dominate.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .._validation import as_float_array, check_positive_int
from .neighbors import pnn_indices
from .weights import WeightingScheme, compute_edge_weights, compute_edge_weights_pairs

__all__ = ["pnn_affinity"]


def pnn_affinity(X: np.ndarray, p: int = 5,
                 scheme: WeightingScheme | str = WeightingScheme.COSINE,
                 *, sigma: float = 1.0,
                 algorithm: str = "auto",
                 sparse: bool = False):
    """Build the symmetric p-NN affinity matrix ``W^E`` for one object type.

    Parameters
    ----------
    X:
        ``(n, d)`` data matrix, one object per row.
    p:
        Neighbour count; the paper uses ``p = 5`` for SNMTF and RHCHME.
    scheme:
        Edge weighting scheme (binary / heat kernel / cosine).
    sigma:
        Heat-kernel bandwidth, ignored by the other schemes.
    algorithm:
        Neighbour-search backend forwarded to :func:`pnn_indices`.
    sparse:
        With ``True`` the affinity is assembled as a CSR sparse matrix from
        the neighbour edge list, computing weights only for actual p-NN pairs;
        no dense ``n × n`` array is ever allocated.

    Returns
    -------
    numpy.ndarray or scipy.sparse.csr_array
        Symmetric non-negative ``(n, n)`` affinity with zero diagonal.
    """
    X = as_float_array(X, name="X", ndim=2)
    p = check_positive_int(p, name="p")
    n_objects = X.shape[0]
    if p >= n_objects:
        # Degenerate tiny-type case: fall back to the densest sensible graph.
        p = max(n_objects - 1, 1)
    neighbours = pnn_indices(X, p, algorithm=algorithm)
    if sparse:
        rows = np.repeat(np.arange(n_objects, dtype=np.int64), neighbours.shape[1])
        cols = neighbours.ravel()
        values = compute_edge_weights_pairs(X, rows, cols, scheme, sigma=sigma)
        directed = sp.coo_array((values, (rows, cols)),
                                shape=(n_objects, n_objects)).tocsr()
        # Eq. 3 keeps an edge if either endpoint lists the other as a
        # neighbour; the weight of a pair is direction-independent, so the
        # element-wise maximum realises the union of the two edge lists.
        symmetric = directed.maximum(directed.T).tocsr()
        symmetric.eliminate_zeros()
        return symmetric
    mask = np.zeros((n_objects, n_objects), dtype=bool)
    rows = np.repeat(np.arange(n_objects), neighbours.shape[1])
    mask[rows, neighbours.ravel()] = True
    # Eq. 3 keeps an edge if either endpoint lists the other as a neighbour.
    mask |= mask.T
    np.fill_diagonal(mask, False)
    weights = compute_edge_weights(X, scheme, sigma=sigma)
    affinity = np.where(mask, weights, 0.0)
    # Guarantee exact symmetry despite floating-point asymmetries in weights.
    return (affinity + affinity.T) / 2.0
