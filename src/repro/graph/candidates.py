"""Candidate Laplacian grids for the RMC baseline's homogeneous ensemble.

RMC (Li et al., 2013) pre-computes a set of candidate normalised graph
Laplacians by varying the neighbour size ``p`` and the edge weighting scheme,
then learns a convex combination of them (Eq. 2 of the paper).  The paper's
experiments use six candidates: ``p ∈ {5, 10}`` × {binary, Gaussian kernel,
cosine}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .laplacian import laplacian
from .pnn import pnn_affinity
from .weights import WeightingScheme

__all__ = ["CandidateSpec", "default_candidate_grid", "candidate_laplacians"]


@dataclass(frozen=True)
class CandidateSpec:
    """One candidate intra-type relationship configuration.

    Attributes
    ----------
    p:
        Neighbour size of the p-NN graph.
    scheme:
        Edge weighting scheme.
    sigma:
        Heat-kernel bandwidth (ignored by binary/cosine schemes).
    """

    p: int
    scheme: WeightingScheme
    sigma: float = 1.0

    def describe(self) -> str:
        """Human-readable identifier, e.g. ``"p=5,cosine"``."""
        return f"p={self.p},{self.scheme.value}"


def default_candidate_grid(p_values: Sequence[int] = (5, 10),
                           schemes: Sequence[WeightingScheme | str] = (
                               WeightingScheme.BINARY,
                               WeightingScheme.HEAT_KERNEL,
                               WeightingScheme.COSINE),
                           *, sigma: float = 1.0) -> list[CandidateSpec]:
    """Return the paper's 6-candidate grid (or a custom cross product)."""
    grid = []
    for p in p_values:
        for scheme in schemes:
            grid.append(CandidateSpec(p=int(p), scheme=WeightingScheme.coerce(scheme),
                                      sigma=sigma))
    return grid


def candidate_laplacians(X: np.ndarray,
                         specs: Iterable[CandidateSpec] | None = None,
                         *, kind: str = "unnormalized") -> list[np.ndarray]:
    """Build the Laplacian for every candidate spec on data matrix ``X``."""
    if specs is None:
        specs = default_candidate_grid()
    laplacians = []
    for spec in specs:
        affinity = pnn_affinity(X, p=spec.p, scheme=spec.scheme, sigma=spec.sigma)
        laplacians.append(laplacian(affinity, kind=kind))
    return laplacians
