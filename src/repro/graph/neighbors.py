"""Pairwise distances/similarities and p-nearest-neighbour search.

Objects of each type are column vectors ``x_k^i`` in the paper; here we adopt
the row-major numpy convention: a data matrix ``X`` has one object per row.
The p-NN graph of Eq. 3 needs, for each object, the indices of its ``p``
nearest neighbours in Euclidean space (excluding the object itself).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from .._validation import as_float_array, check_positive_int

__all__ = [
    "pairwise_euclidean_distances",
    "pairwise_cosine_similarity",
    "pnn_indices",
]

_EPS = 1e-12


def pairwise_euclidean_distances(X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
    """Return the matrix of Euclidean distances between rows of ``X`` and ``Y``.

    With ``Y=None`` the distances are computed within ``X``.  Uses the
    expansion ``‖x − y‖² = ‖x‖² + ‖y‖² − 2 xᵀy`` and clips tiny negative
    values caused by floating-point cancellation.
    """
    X = as_float_array(X, name="X", ndim=2)
    Y = X if Y is None else as_float_array(Y, name="Y", ndim=2)
    if X.shape[1] != Y.shape[1]:
        raise ValueError(
            f"X and Y must share a feature dimension, got {X.shape[1]} and {Y.shape[1]}")
    x_sq = np.sum(X * X, axis=1)[:, None]
    y_sq = np.sum(Y * Y, axis=1)[None, :]
    squared = x_sq + y_sq - 2.0 * (X @ Y.T)
    np.maximum(squared, 0.0, out=squared)
    if Y is X:
        np.fill_diagonal(squared, 0.0)
    return np.sqrt(squared)


def pairwise_cosine_similarity(X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
    """Return the matrix of cosine similarities between rows of ``X`` and ``Y``.

    Zero rows produce zero similarity rather than NaN.
    """
    X = as_float_array(X, name="X", ndim=2)
    Y = X if Y is None else as_float_array(Y, name="Y", ndim=2)
    if X.shape[1] != Y.shape[1]:
        raise ValueError(
            f"X and Y must share a feature dimension, got {X.shape[1]} and {Y.shape[1]}")
    x_norms = np.linalg.norm(X, axis=1)
    y_norms = np.linalg.norm(Y, axis=1)
    denom = np.outer(np.where(x_norms > _EPS, x_norms, 1.0),
                     np.where(y_norms > _EPS, y_norms, 1.0))
    similarity = (X @ Y.T) / denom
    similarity[x_norms <= _EPS, :] = 0.0
    similarity[:, y_norms <= _EPS] = 0.0
    return np.clip(similarity, -1.0, 1.0)


def pnn_indices(X: np.ndarray, p: int, *, algorithm: str = "auto") -> np.ndarray:
    """Return an ``(n, p)`` array of the p nearest-neighbour indices per object.

    The object itself is excluded.  ``algorithm`` selects between a KD-tree
    (``"kdtree"``, good for low dimensional data), dense brute force
    (``"brute"``), or an automatic choice based on dimensionality (``"auto"``).
    """
    X = as_float_array(X, name="X", ndim=2)
    n_objects = X.shape[0]
    p = check_positive_int(p, name="p")
    if p >= n_objects:
        raise ValueError(
            f"p={p} must be smaller than the number of objects ({n_objects})")
    if algorithm not in {"auto", "kdtree", "brute"}:
        raise ValueError(f"unknown neighbour search algorithm {algorithm!r}")
    if algorithm == "auto":
        algorithm = "kdtree" if X.shape[1] <= 15 else "brute"
    if algorithm == "kdtree":
        tree = cKDTree(X)
        # query p+1 because the closest hit is usually the point itself
        _, indices = tree.query(X, k=p + 1)
        indices = np.atleast_2d(np.asarray(indices, dtype=np.int64))
        # Drop exactly one candidate per row: the point itself where it
        # appears, otherwise the farthest candidate (duplicate points can push
        # `i` out of its own candidate list — the p+1 hits are then all valid
        # neighbours and the closest p are kept).
        self_hits = indices == np.arange(n_objects)[:, None]
        drop = np.where(self_hits.any(axis=1), self_hits.argmax(axis=1), p)
        keep = np.ones((n_objects, p + 1), dtype=bool)
        keep[np.arange(n_objects), drop] = False
        return indices[keep].reshape(n_objects, p)
    return _brute_force_indices(X, p)


#: Upper bound on the number of entries of one brute-force distance block;
#: keeps peak memory at ~32 MB regardless of n, so the sparse graph pipeline
#: never materialises a full (n, n) distance matrix even on high-dimensional
#: data where the KD-tree is not used.
_BRUTE_BLOCK_ENTRIES = 4_000_000


def _brute_force_indices(X: np.ndarray, p: int) -> np.ndarray:
    """Blocked brute-force p-NN search with O(block · n) peak memory.

    Processes rows in blocks, using ``argpartition`` to select the p nearest
    candidates of each row (excluding the row itself) and then ordering those
    p by actual distance.
    """
    n_objects = X.shape[0]
    block_rows = max(1, _BRUTE_BLOCK_ENTRIES // n_objects)
    neighbours = np.empty((n_objects, p), dtype=np.int64)
    for start in range(0, n_objects, block_rows):
        stop = min(start + block_rows, n_objects)
        distances = pairwise_euclidean_distances(X[start:stop], X)
        distances[np.arange(stop - start), np.arange(start, stop)] = np.inf
        if p < n_objects - 1:
            candidates = np.argpartition(distances, p, axis=1)[:, :p]
        else:
            candidates = np.argsort(distances, axis=1)[:, :p]
        candidate_distances = np.take_along_axis(distances, candidates, axis=1)
        order = np.argsort(candidate_distances, axis=1)
        neighbours[start:stop] = np.take_along_axis(candidates, order, axis=1)
    return neighbours
