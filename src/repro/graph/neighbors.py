"""Pairwise distances/similarities and p-nearest-neighbour search.

Objects of each type are column vectors ``x_k^i`` in the paper; here we adopt
the row-major numpy convention: a data matrix ``X`` has one object per row.
The p-NN graph of Eq. 3 needs, for each object, the indices of its ``p``
nearest neighbours in Euclidean space (excluding the object itself).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from .._validation import as_float_array, check_positive_int

__all__ = [
    "pairwise_euclidean_distances",
    "pairwise_cosine_similarity",
    "pnn_indices",
    "QueryIndex",
]

_EPS = 1e-12


def pairwise_euclidean_distances(X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
    """Return the matrix of Euclidean distances between rows of ``X`` and ``Y``.

    With ``Y=None`` the distances are computed within ``X``.  Uses the
    expansion ``‖x − y‖² = ‖x‖² + ‖y‖² − 2 xᵀy`` and clips tiny negative
    values caused by floating-point cancellation.
    """
    X = as_float_array(X, name="X", ndim=2)
    Y = X if Y is None else as_float_array(Y, name="Y", ndim=2)
    if X.shape[1] != Y.shape[1]:
        raise ValueError(
            f"X and Y must share a feature dimension, got {X.shape[1]} and {Y.shape[1]}")
    x_sq = np.sum(X * X, axis=1)[:, None]
    y_sq = np.sum(Y * Y, axis=1)[None, :]
    squared = x_sq + y_sq - 2.0 * (X @ Y.T)
    np.maximum(squared, 0.0, out=squared)
    if Y is X:
        np.fill_diagonal(squared, 0.0)
    return np.sqrt(squared)


def pairwise_cosine_similarity(X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
    """Return the matrix of cosine similarities between rows of ``X`` and ``Y``.

    Zero rows produce zero similarity rather than NaN.
    """
    X = as_float_array(X, name="X", ndim=2)
    Y = X if Y is None else as_float_array(Y, name="Y", ndim=2)
    if X.shape[1] != Y.shape[1]:
        raise ValueError(
            f"X and Y must share a feature dimension, got {X.shape[1]} and {Y.shape[1]}")
    x_norms = np.linalg.norm(X, axis=1)
    y_norms = np.linalg.norm(Y, axis=1)
    denom = np.outer(np.where(x_norms > _EPS, x_norms, 1.0),
                     np.where(y_norms > _EPS, y_norms, 1.0))
    similarity = (X @ Y.T) / denom
    similarity[x_norms <= _EPS, :] = 0.0
    similarity[:, y_norms <= _EPS] = 0.0
    return np.clip(similarity, -1.0, 1.0)


def pnn_indices(X: np.ndarray, p: int, *, algorithm: str = "auto",
                query_points: np.ndarray | None = None) -> np.ndarray:
    """Return an ``(n, p)`` array of the p nearest-neighbour indices per object.

    The object itself is excluded.  ``algorithm`` selects between a KD-tree
    (``"kdtree"``, good for low dimensional data), dense brute force
    (``"brute"``), or an automatic choice based on dimensionality (``"auto"``).

    With ``query_points`` given, the search runs in *query mode*: ``X`` acts
    as a fixed reference set and the returned ``(n_queries, p)`` array holds,
    for each query row, the indices of its p nearest reference objects.  No
    self-exclusion is applied — a query identical to a reference point lists
    that point as its nearest neighbour, which is exactly what the
    out-of-sample extension wants — so ``p`` may go up to the reference size
    (instead of strictly below it).
    """
    X = as_float_array(X, name="X", ndim=2)
    n_objects = X.shape[0]
    p = check_positive_int(p, name="p")
    if algorithm not in {"auto", "kdtree", "brute"}:
        raise ValueError(f"unknown neighbour search algorithm {algorithm!r}")
    if algorithm == "auto":
        algorithm = "kdtree" if X.shape[1] <= 15 else "brute"
    if query_points is not None:
        return QueryIndex(X, algorithm=algorithm).query(query_points, p)
    if p >= n_objects:
        raise ValueError(
            f"p={p} must be smaller than the number of objects ({n_objects})")
    if algorithm == "kdtree":
        tree = cKDTree(X)
        # query p+1 because the closest hit is usually the point itself
        _, indices = tree.query(X, k=p + 1)
        indices = np.atleast_2d(np.asarray(indices, dtype=np.int64))
        # Drop exactly one candidate per row: the point itself where it
        # appears, otherwise the farthest candidate (duplicate points can push
        # `i` out of its own candidate list — the p+1 hits are then all valid
        # neighbours and the closest p are kept).
        self_hits = indices == np.arange(n_objects)[:, None]
        drop = np.where(self_hits.any(axis=1), self_hits.argmax(axis=1), p)
        keep = np.ones((n_objects, p + 1), dtype=bool)
        keep[np.arange(n_objects), drop] = False
        return indices[keep].reshape(n_objects, p)
    return _brute_force_indices(X, p)


#: Upper bound on the number of entries of one brute-force distance block;
#: keeps peak memory at ~32 MB regardless of n, so the sparse graph pipeline
#: never materialises a full (n, n) distance matrix even on high-dimensional
#: data where the KD-tree is not used.
_BRUTE_BLOCK_ENTRIES = 4_000_000


def _brute_force_indices(X: np.ndarray, p: int) -> np.ndarray:
    """Blocked brute-force p-NN search with O(block · n) peak memory.

    Processes rows in blocks, using ``argpartition`` to select the p nearest
    candidates of each row (excluding the row itself) and then ordering those
    p by actual distance.
    """
    n_objects = X.shape[0]
    block_rows = max(1, _BRUTE_BLOCK_ENTRIES // n_objects)
    neighbours = np.empty((n_objects, p), dtype=np.int64)
    for start in range(0, n_objects, block_rows):
        stop = min(start + block_rows, n_objects)
        distances = pairwise_euclidean_distances(X[start:stop], X)
        distances[np.arange(stop - start), np.arange(start, stop)] = np.inf
        if p < n_objects - 1:
            candidates = np.argpartition(distances, p, axis=1)[:, :p]
        else:
            candidates = np.argsort(distances, axis=1)[:, :p]
        candidate_distances = np.take_along_axis(distances, candidates, axis=1)
        order = np.argsort(candidate_distances, axis=1)
        neighbours[start:stop] = np.take_along_axis(candidates, order, axis=1)
    return neighbours


class QueryIndex:
    """Reusable query-mode p-NN search index over a fixed reference set.

    Building a KD-tree costs O(n log n); a micro-batched serving loop that
    called :func:`pnn_indices` in query mode per batch would pay that build
    for every batch.  This index constructs the search structure once and
    answers any number of query batches against it — the same results as
    ``pnn_indices(reference, p, query_points=...)``, which delegates here.

    Parameters
    ----------
    reference:
        ``(n, d)`` fixed reference set the queries are matched against.
    algorithm:
        ``"kdtree"``, ``"brute"`` (blocked, O(block · n) peak memory per
        query batch) or ``"auto"`` (KD-tree for d ≤ 15).

    Notes
    -----
    A built index is immutable and safe to share across threads: the KD-tree
    query releases the GIL, so one cached index can serve a whole worker
    pool (see :mod:`repro.runtime`).  It also pickles cleanly, so process
    workers can receive a prebuilt index instead of rebuilding their own.
    """

    def __init__(self, reference: np.ndarray, *, algorithm: str = "auto") -> None:
        reference = as_float_array(reference, name="reference", ndim=2)
        if algorithm not in {"auto", "kdtree", "brute"}:
            raise ValueError(f"unknown neighbour search algorithm {algorithm!r}")
        if algorithm == "auto":
            algorithm = "kdtree" if reference.shape[1] <= 15 else "brute"
        self.reference = reference
        self.algorithm = algorithm
        self._tree = cKDTree(reference) if algorithm == "kdtree" else None

    @property
    def n_reference(self) -> int:
        """Number of reference objects."""
        return self.reference.shape[0]

    def query(self, query_points: np.ndarray, p: int, *,
              workers: int = 1) -> np.ndarray:
        """Return the ``(n_queries, p)`` nearest reference indices per query.

        No self-exclusion is applied (queries are a separate object set), so
        ``p`` may go up to the reference size.  ``workers`` parallelises the
        KD-tree search across that many OS threads (``-1`` uses every core);
        the brute-force path ignores it — its inner products already use the
        BLAS thread pool.
        """
        queries = as_float_array(query_points, name="query_points", ndim=2)
        if queries.shape[1] != self.reference.shape[1]:
            raise ValueError(
                f"query_points must share the reference feature dimension, "
                f"got {queries.shape[1]} and {self.reference.shape[1]}")
        p = check_positive_int(p, name="p")
        if p > self.n_reference:
            raise ValueError(
                f"p={p} must not exceed the reference size ({self.n_reference})")
        if workers != -1:
            workers = check_positive_int(workers, name="workers")
        if self._tree is not None:
            _, indices = self._tree.query(queries, k=p, workers=workers)
            return np.asarray(indices, dtype=np.int64).reshape(queries.shape[0], p)
        return _brute_force_query_indices(self.reference, queries, p)


def _brute_force_query_indices(X: np.ndarray, queries: np.ndarray,
                               p: int) -> np.ndarray:
    """Blocked brute-force query-vs-reference p-NN search (no self-exclusion).

    Mirrors :func:`_brute_force_indices` but computes distances from query
    blocks to the full reference set; peak memory stays O(block · n) no
    matter how many queries arrive.
    """
    n_reference = X.shape[0]
    n_queries = queries.shape[0]
    block_rows = max(1, _BRUTE_BLOCK_ENTRIES // n_reference)
    neighbours = np.empty((n_queries, p), dtype=np.int64)
    for start in range(0, n_queries, block_rows):
        stop = min(start + block_rows, n_queries)
        distances = pairwise_euclidean_distances(queries[start:stop], X)
        if p < n_reference:
            candidates = np.argpartition(distances, p - 1, axis=1)[:, :p]
        else:
            candidates = np.argsort(distances, axis=1)[:, :p]
        candidate_distances = np.take_along_axis(distances, candidates, axis=1)
        order = np.argsort(candidate_distances, axis=1)
        neighbours[start:stop] = np.take_along_axis(candidates, order, axis=1)
    return neighbours
