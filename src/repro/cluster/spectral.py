"""Spectral embedding and spectral clustering of an affinity matrix.

Used as a diagnostic for the subspace affinities (cluster the learnt ``W^S``
directly, as sparse-subspace-clustering pipelines do) and by the
intersecting-manifolds example that reproduces the Figure 1 discussion.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array, check_positive_int
from ..graph.laplacian import normalized_laplacian
from ..linalg.normalize import row_normalize_l2
from .kmeans import KMeans

__all__ = ["spectral_embedding", "spectral_clustering"]


def spectral_embedding(affinity: np.ndarray, n_components: int) -> np.ndarray:
    """Embed the graph nodes with the bottom eigenvectors of the normalised Laplacian.

    Rows of the returned ``(n, n_components)`` matrix are ℓ2-normalised, as in
    the Ng–Jordan–Weiss spectral clustering recipe.
    """
    affinity = as_float_array(affinity, name="affinity", ndim=2)
    n_components = check_positive_int(n_components, name="n_components")
    if n_components > affinity.shape[0]:
        raise ValueError(
            f"n_components ({n_components}) exceeds number of nodes ({affinity.shape[0]})")
    laplacian = normalized_laplacian(affinity)
    # Symmetrise against accumulated floating point noise before eigh.
    laplacian = (laplacian + laplacian.T) / 2.0
    _, eigenvectors = np.linalg.eigh(laplacian)
    embedding = eigenvectors[:, :n_components]
    return row_normalize_l2(embedding)


def spectral_clustering(affinity: np.ndarray, n_clusters: int, *,
                        random_state=None, n_init: int = 5) -> np.ndarray:
    """Cluster graph nodes by k-means on the spectral embedding."""
    embedding = spectral_embedding(affinity, n_clusters)
    model = KMeans(n_clusters, n_init=n_init, random_state=random_state)
    return model.fit_predict(embedding)
