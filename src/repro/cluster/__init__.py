"""Clustering primitives shared by the HOCC methods.

The multiplicative-update HOCC algorithms need an initial cluster membership
matrix (the paper initialises ``G`` with k-means) and a way to turn soft
membership matrices back into hard labels for evaluation.  The spectral
embedding helper supports the two-way and diagnostic clustering paths.

* :mod:`repro.cluster.kmeans` — Lloyd's algorithm with k-means++ seeding.
* :mod:`repro.cluster.assignments` — labels ↔ membership-matrix conversions.
* :mod:`repro.cluster.spectral` — spectral embedding + k-means clustering of
  an affinity matrix.
"""

from .kmeans import KMeans, KMeansResult, kmeans
from .assignments import (
    labels_to_membership,
    membership_to_labels,
    one_hot_membership,
    relabel_consecutive,
)
from .spectral import spectral_clustering, spectral_embedding

__all__ = [
    "KMeans",
    "KMeansResult",
    "kmeans",
    "labels_to_membership",
    "membership_to_labels",
    "one_hot_membership",
    "relabel_consecutive",
    "spectral_clustering",
    "spectral_embedding",
]
