"""Lloyd's k-means with k-means++ seeding.

Used to initialise the cluster membership matrix ``G`` of the HOCC methods
(Algorithm 2 of the paper initialises G with k-means) and as the final
assignment step of spectral clustering and of the DRCC baseline.  Implemented
here because the execution environment has no scikit-learn.

``X`` may be a dense array or a scipy CSR matrix.  The sparse path never
densifies the sample matrix: distances are evaluated through the expansion
``‖x − c‖² = ‖x‖² − 2 x·c + ‖c‖²`` (the same formula the dense assignment
step uses), so one Lloyd iteration costs ``O(nnz·k)`` time and ``O(n + k·d)``
additional memory — this is what keeps the RHCHME ``init="kmeans"``
initialisation ``O(nnz)`` under the sparse backend, where each type's
relational profile is a CSR row block.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .._validation import (
    as_float_array,
    check_positive_int,
    check_random_state,
)

__all__ = ["KMeansResult", "KMeans", "kmeans"]


@dataclass
class KMeansResult:
    """Outcome of one k-means fit.

    Attributes
    ----------
    labels:
        Cluster index per sample.
    centers:
        ``(n_clusters, d)`` centroid matrix (always dense — there are only
        ``k`` of them, and means of sparse rows are dense in substance).
    inertia:
        Sum of squared distances of samples to their assigned centroid.
    n_iterations:
        Lloyd iterations of the best restart.
    """

    labels: np.ndarray
    centers: np.ndarray
    inertia: float
    n_iterations: int


def _row_sq_norms(X) -> np.ndarray:
    """Per-row squared L2 norms for a dense or CSR sample matrix."""
    if sp.issparse(X):
        squared = X.multiply(X)
        return np.asarray(squared.sum(axis=1)).ravel()
    return np.sum(X * X, axis=1)


def _dense_row(X, index: int) -> np.ndarray:
    """One sample as a dense vector (centroids are always dense)."""
    if sp.issparse(X):
        return np.asarray(X[[index]].toarray()).ravel()
    return np.asarray(X[index], dtype=np.float64)


def _plus_plus_init(X, x_sq: np.ndarray, n_clusters: int,
                    rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids proportionally to D²."""
    n_samples = X.shape[0]
    sparse = sp.issparse(X)
    centers = np.empty((n_clusters, X.shape[1]), dtype=np.float64)
    first = int(rng.integers(n_samples))
    centers[0] = _dense_row(X, first)
    if sparse:
        closest_sq = np.maximum(
            x_sq - 2.0 * np.asarray(X @ centers[0]).ravel()
            + float(centers[0] @ centers[0]), 0.0)
    else:
        closest_sq = np.sum((X - centers[0]) ** 2, axis=1)
    for index in range(1, n_clusters):
        total = float(closest_sq.sum())
        if total <= 0.0:
            # All remaining points coincide with an existing centroid; fall
            # back to uniform sampling to avoid a zero-probability draw.
            choice = int(rng.integers(n_samples))
        else:
            probabilities = closest_sq / total
            choice = int(rng.choice(n_samples, p=probabilities))
        centers[index] = _dense_row(X, choice)
        if sparse:
            distance_sq = np.maximum(
                x_sq - 2.0 * np.asarray(X @ centers[index]).ravel()
                + float(centers[index] @ centers[index]), 0.0)
        else:
            distance_sq = np.sum((X - centers[index]) ** 2, axis=1)
        np.minimum(closest_sq, distance_sq, out=closest_sq)
    return centers


def _assign(X, x_sq: np.ndarray,
            centers: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return (labels, squared distance to assigned centroid) for each sample."""
    c_sq = np.sum(centers * centers, axis=1)[None, :]
    cross = X @ centers.T
    if sp.issparse(X):  # pragma: no cover - sp.csr @ dense returns ndarray
        cross = np.asarray(cross)
    distances = x_sq[:, None] + c_sq - 2.0 * cross
    np.maximum(distances, 0.0, out=distances)
    labels = np.argmin(distances, axis=1)
    return labels, distances[np.arange(X.shape[0]), labels]


def _cluster_mean(X, member_mask: np.ndarray) -> np.ndarray:
    """Mean of the masked rows (dense vector), without densifying sparse X."""
    if sp.issparse(X):
        total = np.asarray(X[member_mask].sum(axis=0)).ravel()
        return total / float(np.count_nonzero(member_mask))
    return X[member_mask].mean(axis=0)


class KMeans:
    """Lloyd's algorithm with k-means++ initialisation and restarts.

    Parameters
    ----------
    n_clusters:
        Number of clusters.
    n_init:
        Number of random restarts; the fit with the lowest inertia wins.
    max_iter:
        Maximum Lloyd iterations per restart.
    tol:
        Relative centroid-shift tolerance for early stopping.
    random_state:
        Seed for the restarts.
    """

    def __init__(self, n_clusters: int, *, n_init: int = 5, max_iter: int = 100,
                 tol: float = 1e-6, random_state=None) -> None:
        self.n_clusters = check_positive_int(n_clusters, name="n_clusters")
        self.n_init = check_positive_int(n_init, name="n_init")
        self.max_iter = check_positive_int(max_iter, name="max_iter")
        self.tol = float(tol)
        self.random_state = random_state

    def fit(self, X) -> KMeansResult:
        """Cluster the rows of ``X`` (dense or CSR) and return the best restart."""
        if sp.issparse(X):
            # Same finiteness validation as the dense branch, CSR preserved.
            X = sp.csr_array(as_float_array(X, name="X", ndim=2,
                                            allow_sparse=True))
        else:
            X = as_float_array(X, name="X", ndim=2)
        n_samples = X.shape[0]
        if self.n_clusters > n_samples:
            raise ValueError(
                f"n_clusters ({self.n_clusters}) exceeds number of samples ({n_samples})")
        rng = check_random_state(self.random_state)
        x_sq = _row_sq_norms(X)
        best: KMeansResult | None = None
        for _ in range(self.n_init):
            result = self._single_run(X, x_sq, rng)
            if best is None or result.inertia < best.inertia:
                best = result
        assert best is not None
        return best

    def fit_predict(self, X) -> np.ndarray:
        """Cluster the rows of ``X`` and return only the labels."""
        return self.fit(X).labels

    def _single_run(self, X, x_sq: np.ndarray,
                    rng: np.random.Generator) -> KMeansResult:
        centers = _plus_plus_init(X, x_sq, self.n_clusters, rng)
        labels, distances = _assign(X, x_sq, centers)
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            new_centers = np.empty_like(centers)
            for cluster in range(self.n_clusters):
                members = labels == cluster
                if not np.any(members):
                    # Re-seed an empty cluster at the point farthest from its
                    # centroid to keep exactly n_clusters non-empty groups.
                    farthest = int(np.argmax(distances))
                    new_centers[cluster] = _dense_row(X, farthest)
                    distances[farthest] = 0.0
                else:
                    new_centers[cluster] = _cluster_mean(X, members)
            shift = float(np.linalg.norm(new_centers - centers))
            scale = max(float(np.linalg.norm(centers)), 1e-12)
            centers = new_centers
            labels, distances = _assign(X, x_sq, centers)
            if shift / scale < self.tol:
                break
        return KMeansResult(labels=labels.astype(np.int64), centers=centers,
                            inertia=float(distances.sum()), n_iterations=iteration)


def kmeans(X, n_clusters: int, *, n_init: int = 5,
           max_iter: int = 100, random_state=None) -> np.ndarray:
    """Functional wrapper returning only the label vector."""
    model = KMeans(n_clusters, n_init=n_init, max_iter=max_iter,
                   random_state=random_state)
    return model.fit_predict(X)
