"""Conversions between label vectors and cluster membership matrices.

The HOCC factorisations operate on soft membership matrices ``G`` whose rows
describe how strongly each object belongs to each cluster; evaluation
(FScore/NMI) and the k-means initialisation operate on hard label vectors.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array, check_labels, check_positive_int, check_random_state

__all__ = [
    "membership_to_labels",
    "labels_to_membership",
    "one_hot_membership",
    "relabel_consecutive",
]


def membership_to_labels(membership: np.ndarray) -> np.ndarray:
    """Hard-assign each object to its highest-weight cluster (row argmax)."""
    membership = as_float_array(membership, name="membership", ndim=2)
    return np.argmax(membership, axis=1).astype(np.int64)


def one_hot_membership(labels: np.ndarray, n_clusters: int | None = None) -> np.ndarray:
    """Return the 0/1 membership matrix of a hard label vector."""
    labels = check_labels(labels, name="labels")
    if labels.min() < 0:
        raise ValueError("labels must be non-negative cluster indices")
    if n_clusters is None:
        n_clusters = int(labels.max()) + 1
    else:
        n_clusters = check_positive_int(n_clusters, name="n_clusters")
        if labels.max() >= n_clusters:
            raise ValueError(
                f"labels contain index {labels.max()} but n_clusters={n_clusters}")
    membership = np.zeros((labels.size, n_clusters), dtype=np.float64)
    membership[np.arange(labels.size), labels] = 1.0
    return membership


def labels_to_membership(labels: np.ndarray, n_clusters: int | None = None, *,
                         smoothing: float = 0.0, random_state=None) -> np.ndarray:
    """Return a (optionally smoothed) membership matrix for a label vector.

    ``smoothing > 0`` adds small positive random mass to every entry and
    re-normalises the rows.  Multiplicative update rules cannot move an entry
    away from exactly zero, so a smoothed initial G keeps all clusters
    reachable (this mirrors the standard practice for NMF-style updates).
    """
    membership = one_hot_membership(labels, n_clusters)
    if smoothing > 0.0:
        rng = check_random_state(random_state)
        membership = membership + smoothing * rng.uniform(
            0.5, 1.5, size=membership.shape)
        membership /= membership.sum(axis=1, keepdims=True)
    return membership


def relabel_consecutive(labels: np.ndarray) -> np.ndarray:
    """Map arbitrary label values onto consecutive integers 0..k-1.

    The mapping preserves the order of first appearance, which keeps the
    relabelling deterministic for reproducible tests.
    """
    labels = check_labels(labels, name="labels")
    mapping: dict[int, int] = {}
    out = np.empty_like(labels)
    for index, value in enumerate(labels):
        key = int(value)
        if key not in mapping:
            mapping[key] = len(mapping)
        out[index] = mapping[key]
    return out
