"""Manifold (graph Laplacian) ensembles.

The second stage of RHCHME (Section III.B of the paper) fuses two different
views of intra-type structure into one regulariser:

    L = α · L_S + L_E                                   (Eq. 12)

where ``L_S`` is the Laplacian of the subspace-membership affinity ``W^S``
and ``L_E`` is the Laplacian of the cosine-weighted p-NN affinity ``W^E``.
The RMC baseline instead combines a *homogeneous* grid of p-NN candidate
Laplacians with learnt convex weights (Eq. 2).

* :mod:`repro.manifold.ensemble` — the heterogeneous two-member ensemble.
* :mod:`repro.manifold.homogeneous` — the RMC-style candidate ensemble.
"""

from .ensemble import HeterogeneousManifoldEnsemble, build_type_laplacians
from .homogeneous import HomogeneousCandidateEnsemble

__all__ = [
    "HeterogeneousManifoldEnsemble",
    "HomogeneousCandidateEnsemble",
    "build_type_laplacians",
]
