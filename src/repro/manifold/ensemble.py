"""The heterogeneous manifold ensemble of RHCHME (Eq. 12).

For each object type with features, two intra-type affinities are learnt:

* ``W^S`` — subspace-membership affinity from multiple-subspace learning
  (complete: any within-subspace pair is connected, however distant);
* ``W^E`` — cosine-weighted p-NN affinity (accurate for close neighbours).

Their graph Laplacians are combined per type as ``L_k = α L_k^S + L_k^E`` and
assembled into the block-diagonal regulariser ``L`` over all n objects.
Setting ``α → 0`` recovers an SNMTF-style pNN-only regulariser and
``α → ∞`` a subspace-only regulariser — the extremes the paper's parameter
study (Fig. 2) explores.

The ensemble supports two compute backends.  With ``backend="sparse"`` the
p-NN member is assembled directly as a CSR matrix (≤ 2p non-zeros per row)
and the block-diagonal ``L`` stays sparse end to end, so no ``(n, n)`` dense
array is ever allocated for the graph pipeline.  ``backend="auto"`` picks
per dataset size (see :mod:`repro.linalg.backend`).  The subspace member —
inherently dense, since any within-subspace pair is connected — is converted
to CSR when it participates in a sparse ensemble so the combined operator
keeps a single representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from .._validation import check_positive_float, check_positive_int
from ..graph.laplacian import laplacian
from ..graph.pnn import pnn_affinity
from ..graph.weights import WeightingScheme
from ..linalg.backend import (as_csr, check_backend, numpy_carrier,
                              resolve_backend, topk_rows)
from ..linalg.blocks import block_diagonal
from ..relational.dataset import MultiTypeRelationalData
from ..subspace.representation import SubspaceRepresentation

__all__ = ["HeterogeneousManifoldEnsemble", "build_type_laplacians"]


@dataclass
class _TypeLaplacians:
    """Per-type Laplacian members kept for inspection and ablation."""

    name: str
    subspace: np.ndarray | sp.csr_array | None
    pnn: np.ndarray | sp.csr_array | None
    combined: np.ndarray | sp.csr_array


@dataclass
class HeterogeneousManifoldEnsemble:
    """Builder for the block-diagonal heterogeneous ensemble Laplacian.

    Parameters
    ----------
    alpha:
        Trade-off between the subspace member ``L_S`` and the p-NN member
        ``L_E`` (Eq. 12); the paper finds α ∈ [0.25, 2] stable with α = 1 best.
    gamma:
        Noise-tolerance weight of the multiple-subspace objective (Eq. 9).
    p:
        Neighbour size of the p-NN graph (the paper uses p = 5).
    weighting:
        p-NN edge weighting scheme; RHCHME uses cosine similarity.
    laplacian_kind:
        Which Laplacian normalisation to use for both members.
    subspace_max_iter, subspace_tol:
        SPG budget for the subspace representation solver.
    use_subspace, use_pnn:
        Ablation switches disabling one member (the α → {0, ∞} extremes).
    subspace_topk:
        Optional top-k thresholding of the subspace member's affinity (keep
        the k strongest similarities per row, united symmetrically like the
        Eq. 3 p-NN edges).  Bounds the subspace member at 2k non-zeros per
        row, which is what allows a genuinely sparse ensemble even with the
        subspace member active; ``None`` keeps the exact dense affinity.
    scale_by_size:
        Divide each type's Laplacian by its object count so that
        ``tr(Gᵀ L G)`` measures *average* label smoothness per object rather
        than a sum that grows with the dataset.  This keeps the λ grid of the
        paper meaningful on datasets of different sizes and balances the
        regulariser against the (block-normalised) reconstruction term; it is
        a documented implementation deviation (see DESIGN.md).
    backend:
        ``"dense"`` (seed behaviour), ``"sparse"`` (CSR end to end),
        ``"torch"`` (the optional tensor engine; the graph blocks are still
        built in a numpy carrier — see :meth:`graph_carrier`) or ``"auto"``
        (sparse once the dataset's total object count crosses
        :data:`repro.linalg.backend.AUTO_SPARSE_THRESHOLD`, the torch
        engine above it when torch sees a CUDA device).
    random_state:
        Seed for the subspace solver initialisation.
    """

    alpha: float = 1.0
    gamma: float = 25.0
    p: int = 5
    weighting: WeightingScheme | str = WeightingScheme.COSINE
    laplacian_kind: str = "unnormalized"
    subspace_max_iter: int = 150
    subspace_tol: float = 1e-4
    use_subspace: bool = True
    use_pnn: bool = True
    subspace_topk: int | None = None
    scale_by_size: bool = True
    backend: str = "dense"
    random_state: int | None = None
    members_: list[_TypeLaplacians] = field(default_factory=list, init=False, repr=False)
    resolved_backend_: str | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        self.alpha = check_positive_float(self.alpha, name="alpha", minimum=0.0,
                                          inclusive=True)
        self.gamma = check_positive_float(self.gamma, name="gamma")
        self.p = check_positive_int(self.p, name="p")
        check_backend(self.backend)
        if self.subspace_topk is not None:
            self.subspace_topk = check_positive_int(self.subspace_topk,
                                                    name="subspace_topk")
        if not (self.use_subspace or self.use_pnn):
            raise ValueError("at least one ensemble member must be enabled")

    def resolve(self, n_objects: int) -> str:
        """Resolve the instance's backend knob for ``n_objects`` total objects.

        ``"auto"`` never picks sparse while the subspace member is active
        *without* top-k thresholding: the exact subspace affinity connects
        every within-subspace pair, so the combined Laplacian is dense in
        substance and CSR storage would cost more memory and slower products
        than a plain array.  With ``subspace_topk`` set the member is bounded
        at 2k non-zeros per row and the usual size-based choice applies.
        The caveat does not apply when ``"auto"`` resolves to the torch
        engine (torch installed, CUDA visible, problem above the size
        threshold) — the engine holds dense or sparse graph operands alike,
        so the dense-in-substance member only shapes the *carrier* (see
        :meth:`graph_carrier`), not the engine choice.
        """
        resolved = resolve_backend(self.backend, n_objects=n_objects)
        if (resolved == "sparse" and self.backend == "auto"
                and self.use_subspace and self.alpha > 0.0
                and self.subspace_topk is None):
            return "dense"
        return resolved

    def graph_carrier(self, engine: str, n_objects: int) -> str:
        """Numpy representation (``"dense"``/``"sparse"``) of the graph blocks.

        The torch engine is representation-agnostic on its inputs — a CSR
        Laplacian becomes a sparse COO tensor, a dense one a dense tensor —
        so under ``engine="torch"`` this picks the numpy carrier the blocks
        are *built* in: dense while the subspace member is active without
        top-k (its affinity is dense in substance), the usual size rule
        otherwise.  Concrete numpy engines pass through unchanged.
        """
        if engine != "torch":
            return engine
        if self.use_subspace and self.alpha > 0.0 and self.subspace_topk is None:
            return "dense"
        return numpy_carrier(engine, n_objects=n_objects)

    def build_for_type(self, name: str, features: np.ndarray | None,
                       n_objects: int, *, backend: str | None = None) -> _TypeLaplacians:
        """Build the combined Laplacian for one object type.

        Types without features contribute a zero Laplacian block (no
        intra-type smoothing), matching how the paper treats types whose
        only information is relational.  ``backend`` overrides the instance
        knob with an already-resolved concrete backend — :meth:`build` always
        passes one, resolved once against the dataset's *total* object count
        so every block shares a representation.  Only when this method is
        called standalone with the knob still at ``"auto"`` is the choice
        made from this type's own size.
        """
        backend = self.resolve(n_objects) if backend is None else resolve_backend(
            backend, n_objects=n_objects)
        backend = self.graph_carrier(backend, n_objects)
        use_sparse = backend == "sparse"
        if features is None:
            zero = (sp.csr_array((n_objects, n_objects), dtype=np.float64)
                    if use_sparse else np.zeros((n_objects, n_objects)))
            return _TypeLaplacians(name=name, subspace=None, pnn=None, combined=zero)

        subspace_laplacian = None
        pnn_laplacian = None
        combined = (sp.csr_array((n_objects, n_objects), dtype=np.float64)
                    if use_sparse else np.zeros((n_objects, n_objects)))
        if self.use_subspace and self.alpha > 0.0:
            model = SubspaceRepresentation(gamma=self.gamma,
                                           max_iter=self.subspace_max_iter,
                                           tol=self.subspace_tol,
                                           random_state=self.random_state)
            affinity = model.fit(features).affinity
            if self.subspace_topk is not None:
                affinity = topk_rows(affinity, self.subspace_topk)
                if use_sparse:
                    affinity = as_csr(affinity)
            subspace_laplacian = laplacian(affinity, kind=self.laplacian_kind)
            if use_sparse and not sp.issparse(subspace_laplacian):
                # Without top-k thresholding the subspace affinity connects
                # every within-subspace pair, so this block is dense in
                # substance; converting keeps the combined operator in one
                # representation.
                subspace_laplacian = as_csr(subspace_laplacian)
            combined = combined + self.alpha * subspace_laplacian
        if self.use_pnn:
            affinity = pnn_affinity(features, p=self.p, scheme=self.weighting,
                                    sparse=use_sparse)
            pnn_laplacian = laplacian(affinity, kind=self.laplacian_kind)
            combined = combined + pnn_laplacian
        if self.scale_by_size and n_objects > 0:
            combined = combined / float(n_objects)
        return _TypeLaplacians(name=name, subspace=subspace_laplacian,
                               pnn=pnn_laplacian, combined=combined)

    def build_blocks(self, data: MultiTypeRelationalData, *,
                     types=None) -> list:
        """Build the per-type ensemble Laplacian blocks ``L_t`` (Eq. 12).

        The global regulariser L is block diagonal by construction — it
        only couples objects within one type — so the blocked solver never
        assembles it: each type's combined Laplacian is returned on its
        own, in the resolved backend's representation (dense array or CSR).
        The concrete backend used is recorded on ``resolved_backend_`` and
        the per-type members on ``members_``.

        ``types`` optionally restricts the build to a subset of type
        *indices* — a delta-scheduled refit only re-optimises dirty types,
        so building (and eigen-touching) the clean types' graphs would be
        pure waste at scale.  Skipped types yield ``None`` in both the
        returned list and ``members_``.
        """
        backend = self.resolve(data.n_objects_total)
        self.resolved_backend_ = backend
        carrier = self.graph_carrier(backend, data.n_objects_total)
        self.members_ = []
        blocks = []
        for index, object_type in enumerate(data.types):
            if types is not None and index not in types:
                self.members_.append(None)
                blocks.append(None)
                continue
            member = self.build_for_type(object_type.name, object_type.features,
                                         object_type.n_objects, backend=carrier)
            self.members_.append(member)
            blocks.append(member.combined)
        return blocks

    def build(self, data: MultiTypeRelationalData):
        """Assemble the full block-diagonal ensemble Laplacian ``L``.

        Returns a dense array or a CSR sparse matrix depending on the
        (resolved) backend; either representation is accepted by the global
        update rules and objective evaluation.  The blocked solver core
        uses :meth:`build_blocks` instead and never pays for the stacked
        ``(n, n)`` assembly.
        """
        return block_diagonal(self.build_blocks(data))


def build_type_laplacians(data: MultiTypeRelationalData, *, p: int = 5,
                          weighting: WeightingScheme | str = WeightingScheme.COSINE,
                          laplacian_kind: str = "unnormalized",
                          backend: str = "dense"):
    """Build a pNN-only block-diagonal Laplacian (the SNMTF regulariser).

    This is the homogeneous single-member special case used by the SNMTF
    baseline; kept here so baseline and RHCHME share the same assembly code.
    """
    ensemble = HeterogeneousManifoldEnsemble(alpha=0.0, p=p, weighting=weighting,
                                             laplacian_kind=laplacian_kind,
                                             use_subspace=False, use_pnn=True,
                                             backend=backend)
    return ensemble.build(data)
