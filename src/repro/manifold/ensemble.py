"""The heterogeneous manifold ensemble of RHCHME (Eq. 12).

For each object type with features, two intra-type affinities are learnt:

* ``W^S`` — subspace-membership affinity from multiple-subspace learning
  (complete: any within-subspace pair is connected, however distant);
* ``W^E`` — cosine-weighted p-NN affinity (accurate for close neighbours).

Their graph Laplacians are combined per type as ``L_k = α L_k^S + L_k^E`` and
assembled into the block-diagonal regulariser ``L`` over all n objects.
Setting ``α → 0`` recovers an SNMTF-style pNN-only regulariser and
``α → ∞`` a subspace-only regulariser — the extremes the paper's parameter
study (Fig. 2) explores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import check_positive_float, check_positive_int
from ..graph.laplacian import laplacian
from ..graph.pnn import pnn_affinity
from ..graph.weights import WeightingScheme
from ..linalg.blocks import block_diagonal
from ..relational.dataset import MultiTypeRelationalData
from ..subspace.representation import SubspaceRepresentation

__all__ = ["HeterogeneousManifoldEnsemble", "build_type_laplacians"]


@dataclass
class _TypeLaplacians:
    """Per-type Laplacian members kept for inspection and ablation."""

    name: str
    subspace: np.ndarray | None
    pnn: np.ndarray | None
    combined: np.ndarray


@dataclass
class HeterogeneousManifoldEnsemble:
    """Builder for the block-diagonal heterogeneous ensemble Laplacian.

    Parameters
    ----------
    alpha:
        Trade-off between the subspace member ``L_S`` and the p-NN member
        ``L_E`` (Eq. 12); the paper finds α ∈ [0.25, 2] stable with α = 1 best.
    gamma:
        Noise-tolerance weight of the multiple-subspace objective (Eq. 9).
    p:
        Neighbour size of the p-NN graph (the paper uses p = 5).
    weighting:
        p-NN edge weighting scheme; RHCHME uses cosine similarity.
    laplacian_kind:
        Which Laplacian normalisation to use for both members.
    subspace_max_iter, subspace_tol:
        SPG budget for the subspace representation solver.
    use_subspace, use_pnn:
        Ablation switches disabling one member (the α → {0, ∞} extremes).
    scale_by_size:
        Divide each type's Laplacian by its object count so that
        ``tr(Gᵀ L G)`` measures *average* label smoothness per object rather
        than a sum that grows with the dataset.  This keeps the λ grid of the
        paper meaningful on datasets of different sizes and balances the
        regulariser against the (block-normalised) reconstruction term; it is
        a documented implementation deviation (see DESIGN.md).
    random_state:
        Seed for the subspace solver initialisation.
    """

    alpha: float = 1.0
    gamma: float = 25.0
    p: int = 5
    weighting: WeightingScheme | str = WeightingScheme.COSINE
    laplacian_kind: str = "unnormalized"
    subspace_max_iter: int = 150
    subspace_tol: float = 1e-4
    use_subspace: bool = True
    use_pnn: bool = True
    scale_by_size: bool = True
    random_state: int | None = None
    members_: list[_TypeLaplacians] = field(default_factory=list, init=False, repr=False)

    def __post_init__(self) -> None:
        self.alpha = check_positive_float(self.alpha, name="alpha", minimum=0.0,
                                          inclusive=True)
        self.gamma = check_positive_float(self.gamma, name="gamma")
        self.p = check_positive_int(self.p, name="p")
        if not (self.use_subspace or self.use_pnn):
            raise ValueError("at least one ensemble member must be enabled")

    def build_for_type(self, name: str, features: np.ndarray | None,
                       n_objects: int) -> _TypeLaplacians:
        """Build the combined Laplacian for one object type.

        Types without features contribute a zero Laplacian block (no
        intra-type smoothing), matching how the paper treats types whose
        only information is relational.
        """
        if features is None:
            zero = np.zeros((n_objects, n_objects))
            return _TypeLaplacians(name=name, subspace=None, pnn=None, combined=zero)

        subspace_laplacian = None
        pnn_laplacian = None
        combined = np.zeros((n_objects, n_objects))
        if self.use_subspace and self.alpha > 0.0:
            model = SubspaceRepresentation(gamma=self.gamma,
                                           max_iter=self.subspace_max_iter,
                                           tol=self.subspace_tol,
                                           random_state=self.random_state)
            affinity = model.fit(features).affinity
            subspace_laplacian = laplacian(affinity, kind=self.laplacian_kind)
            combined = combined + self.alpha * subspace_laplacian
        if self.use_pnn:
            affinity = pnn_affinity(features, p=self.p, scheme=self.weighting)
            pnn_laplacian = laplacian(affinity, kind=self.laplacian_kind)
            combined = combined + pnn_laplacian
        if self.scale_by_size and n_objects > 0:
            combined = combined / float(n_objects)
        return _TypeLaplacians(name=name, subspace=subspace_laplacian,
                               pnn=pnn_laplacian, combined=combined)

    def build(self, data: MultiTypeRelationalData) -> np.ndarray:
        """Assemble the full block-diagonal ensemble Laplacian ``L``."""
        self.members_ = []
        blocks = []
        for object_type in data.types:
            member = self.build_for_type(object_type.name, object_type.features,
                                         object_type.n_objects)
            self.members_.append(member)
            blocks.append(member.combined)
        return block_diagonal(blocks)


def build_type_laplacians(data: MultiTypeRelationalData, *, p: int = 5,
                          weighting: WeightingScheme | str = WeightingScheme.COSINE,
                          laplacian_kind: str = "unnormalized") -> np.ndarray:
    """Build a pNN-only block-diagonal Laplacian (the SNMTF regulariser).

    This is the homogeneous single-member special case used by the SNMTF
    baseline; kept here so baseline and RHCHME share the same assembly code.
    """
    ensemble = HeterogeneousManifoldEnsemble(alpha=0.0, p=p, weighting=weighting,
                                             laplacian_kind=laplacian_kind,
                                             use_subspace=False, use_pnn=True)
    return ensemble.build(data)
