"""Homogeneous candidate-Laplacian ensemble (the RMC baseline's regulariser).

RMC (Relational Multi-manifold Co-clustering, Li et al. 2013) builds, for
each object type, a set of q candidate p-NN graph Laplacians (varying the
neighbour size and the weighting scheme) and uses their convex combination
``L = Σ βᵢ L̂ᵢ`` with ``Σ βᵢ = 1, βᵢ > 0`` (Eq. 2 of the paper) as the graph
regulariser.  The weights can be uniform or refitted against the current
cluster membership by minimising ``Σᵢ βᵢ tr(Gᵀ L̂ᵢ G) + μ‖β‖²`` on the
simplex, which is how RMC adapts the ensemble during its iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .._validation import check_positive_float
from ..graph.candidates import CandidateSpec, candidate_laplacians, default_candidate_grid
from ..linalg.blocks import block_diagonal
from ..linalg.norms import trace_quadratic
from ..linalg.projections import project_simplex
from ..relational.dataset import MultiTypeRelationalData

__all__ = ["HomogeneousCandidateEnsemble"]


@dataclass
class HomogeneousCandidateEnsemble:
    """RMC-style ensemble of p-NN candidate Laplacians with learnable weights.

    Parameters
    ----------
    specs:
        Candidate configurations; defaults to the paper's grid of
        ``p ∈ {5, 10}`` × {binary, heat kernel, cosine}.
    laplacian_kind:
        Laplacian normalisation applied to every candidate.
    smoothing:
        Ridge term μ of the weight-refit subproblem; keeps the learnt weights
        away from a degenerate single-candidate solution.
    scale_by_size:
        Divide each type's candidate Laplacian by its object count (same
        convention as the heterogeneous ensemble, see
        :class:`~repro.manifold.ensemble.HeterogeneousManifoldEnsemble`).
    """

    specs: Sequence[CandidateSpec] | None = None
    laplacian_kind: str = "unnormalized"
    smoothing: float = 1.0
    scale_by_size: bool = True
    weights_: np.ndarray | None = field(default=None, init=False, repr=False)
    candidates_: list[np.ndarray] = field(default_factory=list, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.specs is None:
            self.specs = default_candidate_grid()
        self.specs = list(self.specs)
        if not self.specs:
            raise ValueError("candidate ensemble needs at least one candidate spec")
        self.smoothing = check_positive_float(self.smoothing, name="smoothing")

    @property
    def n_candidates(self) -> int:
        """Number of candidate Laplacians per type."""
        return len(self.specs)

    def build_candidates(self, data: MultiTypeRelationalData) -> list[np.ndarray]:
        """Build one full block-diagonal Laplacian per candidate spec.

        Types without features contribute zero blocks to every candidate.
        """
        per_candidate_blocks: list[list[np.ndarray]] = [[] for _ in self.specs]
        for object_type in data.types:
            if object_type.features is None:
                zero = np.zeros((object_type.n_objects, object_type.n_objects))
                for blocks in per_candidate_blocks:
                    blocks.append(zero)
                continue
            laplacians = candidate_laplacians(object_type.features, self.specs,
                                              kind=self.laplacian_kind)
            scale = (1.0 / float(object_type.n_objects)
                     if self.scale_by_size else 1.0)
            for blocks, candidate in zip(per_candidate_blocks, laplacians):
                blocks.append(candidate * scale)
        self.candidates_ = [block_diagonal(blocks) for blocks in per_candidate_blocks]
        return self.candidates_

    def initial_weights(self) -> np.ndarray:
        """Uniform simplex weights used before any refit."""
        weights = np.full(self.n_candidates, 1.0 / self.n_candidates)
        self.weights_ = weights
        return weights

    def combine(self, weights: np.ndarray | None = None) -> np.ndarray:
        """Return the weighted combination of the prepared candidates."""
        if not self.candidates_:
            raise RuntimeError("call build_candidates() before combine()")
        if weights is None:
            weights = self.weights_ if self.weights_ is not None else self.initial_weights()
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.n_candidates,):
            raise ValueError(
                f"weights must have shape ({self.n_candidates},), got {weights.shape}")
        combined = np.zeros_like(self.candidates_[0])
        for weight, candidate in zip(weights, self.candidates_):
            combined += weight * candidate
        return combined

    def refit_weights(self, G: np.ndarray) -> np.ndarray:
        """Refit the candidate weights against the current membership matrix.

        Minimises ``Σᵢ βᵢ tr(Gᵀ L̂ᵢ G) + μ ‖β‖²`` subject to the simplex
        constraint.  The closed-form unconstrained minimiser
        ``βᵢ = −tr(Gᵀ L̂ᵢ G) / (2μ)`` is projected onto the simplex, which
        down-weights candidates whose Laplacian penalises the current
        clustering most.
        """
        if not self.candidates_:
            raise RuntimeError("call build_candidates() before refit_weights()")
        penalties = np.array([trace_quadratic(G, candidate)
                              for candidate in self.candidates_])
        raw = -penalties / (2.0 * self.smoothing)
        self.weights_ = project_simplex(raw)
        return self.weights_
