"""Additional clustering agreement metrics (purity, adjusted Rand index).

Not reported in the paper but useful as extra diagnostics for the extended
benchmarks and ablations; both are standard, widely used metrics.
"""

from __future__ import annotations

import numpy as np
from scipy.special import comb

from .contingency import contingency_matrix

__all__ = ["purity_score", "adjusted_rand_index"]


def purity_score(labels_true, labels_pred) -> float:
    """Fraction of objects assigned to the majority true class of their cluster."""
    table = contingency_matrix(labels_true, labels_pred)
    return float(table.max(axis=0).sum() / table.sum())


def adjusted_rand_index(labels_true, labels_pred) -> float:
    """Adjusted Rand index (chance-corrected pairwise agreement) in [-1, 1]."""
    table = contingency_matrix(labels_true, labels_pred)
    n_total = int(table.sum())
    sum_cells = float(np.sum(comb(table, 2)))
    sum_rows = float(np.sum(comb(table.sum(axis=1), 2)))
    sum_cols = float(np.sum(comb(table.sum(axis=0), 2)))
    total_pairs = float(comb(n_total, 2))
    if total_pairs == 0:
        return 1.0
    expected = sum_rows * sum_cols / total_pairs
    maximum = (sum_rows + sum_cols) / 2.0
    if maximum == expected:
        return 1.0
    return float((sum_cells - expected) / (maximum - expected))
