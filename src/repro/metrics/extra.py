"""Additional clustering agreement metrics (purity, adjusted Rand index).

Not reported in the paper but useful as extra diagnostics for the extended
benchmarks and ablations; both are standard, widely used metrics.  The
cluster-alignment helpers match the (arbitrary) cluster numberings of two
labelings of the same objects, which is what lets the serving subsystem
compare out-of-sample predictions against a full refit.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment
from scipy.special import comb

from .._validation import check_labels
from ..exceptions import ValidationError
from .contingency import contingency_matrix

__all__ = [
    "purity_score",
    "adjusted_rand_index",
    "cluster_alignment",
    "align_cluster_labels",
]


def purity_score(labels_true, labels_pred) -> float:
    """Fraction of objects assigned to the majority true class of their cluster."""
    table = contingency_matrix(labels_true, labels_pred)
    return float(table.max(axis=0).sum() / table.sum())


def adjusted_rand_index(labels_true, labels_pred) -> float:
    """Adjusted Rand index (chance-corrected pairwise agreement) in [-1, 1]."""
    table = contingency_matrix(labels_true, labels_pred)
    n_total = int(table.sum())
    sum_cells = float(np.sum(comb(table, 2)))
    sum_rows = float(np.sum(comb(table.sum(axis=1), 2)))
    sum_cols = float(np.sum(comb(table.sum(axis=0), 2)))
    total_pairs = float(comb(n_total, 2))
    if total_pairs == 0:
        return 1.0
    expected = sum_rows * sum_cols / total_pairs
    maximum = (sum_rows + sum_cols) / 2.0
    if maximum == expected:
        return 1.0
    return float((sum_cells - expected) / (maximum - expected))


def cluster_alignment(labels_reference, labels_other) -> np.ndarray:
    """Best one-to-one map from ``labels_other`` ids onto ``labels_reference`` ids.

    Solves a maximum-overlap linear assignment (Hungarian algorithm) on the
    contingency table of the two labelings — which must label the *same*
    objects — and returns an integer array ``mapping`` such that
    ``mapping[labels_other]`` renumbers the other labeling into the reference
    numbering.  Cluster numberings of independent fits are arbitrary, so this
    is the canonical way to compare two clusterings label-by-label (e.g.
    out-of-sample predictions against a full refit).
    """
    reference = check_labels(labels_reference, name="labels_reference")
    other = check_labels(labels_other, name="labels_other",
                         n_samples=reference.size)
    if reference.min() < 0 or other.min() < 0:
        raise ValidationError("cluster alignment requires non-negative label ids")
    size = int(max(reference.max(), other.max())) + 1
    overlap = np.zeros((size, size), dtype=np.int64)
    np.add.at(overlap, (other, reference), 1)
    rows, cols = linear_sum_assignment(-overlap)
    mapping = np.empty(size, dtype=np.int64)
    mapping[rows] = cols
    return mapping


def align_cluster_labels(labels_reference, labels_other) -> np.ndarray:
    """Renumber ``labels_other`` to best match ``labels_reference``.

    Convenience wrapper around :func:`cluster_alignment` for callers that
    only need the remapped labels of the same objects the alignment was
    computed on.
    """
    mapping = cluster_alignment(labels_reference, labels_other)
    other = check_labels(labels_other, name="labels_other")
    return mapping[other]
