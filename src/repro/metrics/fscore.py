"""Clustering FScore (Eq. 38 of the paper).

For every true class the best-matching cluster is found by the harmonic mean
of precision (``n_jl / n_l``) and recall (``n_jl / n_j``); the FScore is the
class-size-weighted average of those best matches.  This is the document
clustering FScore of Zhao & Karypis used throughout the HOCC literature.
"""

from __future__ import annotations

import numpy as np

from .contingency import contingency_matrix

__all__ = ["clustering_fscore", "pairwise_precision_recall"]


def clustering_fscore(labels_true, labels_pred) -> float:
    """Return the clustering FScore in [0, 1]; higher is better."""
    table = contingency_matrix(labels_true, labels_pred).astype(np.float64)
    n_total = float(table.sum())
    class_sizes = table.sum(axis=1)
    cluster_sizes = table.sum(axis=0)
    score = 0.0
    for j in range(table.shape[0]):
        if class_sizes[j] == 0:
            continue
        recalls = table[j] / class_sizes[j]
        precisions = np.divide(table[j], cluster_sizes,
                               out=np.zeros_like(table[j]), where=cluster_sizes > 0)
        denominator = precisions + recalls
        f_values = np.divide(2.0 * precisions * recalls, denominator,
                             out=np.zeros_like(denominator), where=denominator > 0)
        score += (class_sizes[j] / n_total) * float(f_values.max())
    # The class weights sum to 1 only up to floating point; a perfect
    # clustering can otherwise accumulate to 1 + O(eps) and escape [0, 1].
    return float(min(score, 1.0))


def pairwise_precision_recall(labels_true, labels_pred) -> tuple[float, float]:
    """Pairwise precision and recall (pairs of objects grouped together).

    A complementary view of agreement used by the extended diagnostics: of
    all object pairs placed in the same predicted cluster, the fraction that
    truly share a class (precision), and of all truly co-classed pairs, the
    fraction recovered (recall).
    """
    table = contingency_matrix(labels_true, labels_pred).astype(np.float64)
    same_both = float(np.sum(table * (table - 1.0)) / 2.0)
    cluster_sizes = table.sum(axis=0)
    class_sizes = table.sum(axis=1)
    same_pred = float(np.sum(cluster_sizes * (cluster_sizes - 1.0)) / 2.0)
    same_true = float(np.sum(class_sizes * (class_sizes - 1.0)) / 2.0)
    precision = same_both / same_pred if same_pred > 0 else 0.0
    recall = same_both / same_true if same_true > 0 else 0.0
    return precision, recall
