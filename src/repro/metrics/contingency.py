"""Contingency tables between true classes and predicted clusters."""

from __future__ import annotations

import numpy as np

from .._validation import check_labels
from ..cluster.assignments import relabel_consecutive

__all__ = ["contingency_matrix", "validate_label_pair"]


def validate_label_pair(labels_true, labels_pred) -> tuple[np.ndarray, np.ndarray]:
    """Validate and align a pair of label vectors onto consecutive ids."""
    labels_true = check_labels(labels_true, name="labels_true")
    labels_pred = check_labels(labels_pred, name="labels_pred",
                               n_samples=labels_true.size)
    return relabel_consecutive(labels_true), relabel_consecutive(labels_pred)


def contingency_matrix(labels_true, labels_pred) -> np.ndarray:
    """Return the ``(n_classes, n_clusters)`` matrix of co-occurrence counts.

    Entry ``(j, l)`` counts the objects that belong to true class j and were
    assigned to predicted cluster l (the ``n_jl`` of Eq. 38/39).
    """
    labels_true, labels_pred = validate_label_pair(labels_true, labels_pred)
    n_classes = int(labels_true.max()) + 1
    n_clusters = int(labels_pred.max()) + 1
    table = np.zeros((n_classes, n_clusters), dtype=np.int64)
    np.add.at(table, (labels_true, labels_pred), 1)
    return table
