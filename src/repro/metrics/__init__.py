"""Clustering evaluation metrics.

The paper evaluates with FScore (Eq. 38) and Normalized Mutual Information
(Eq. 39).  Purity and the adjusted Rand index are provided as additional
diagnostics used by the extended benchmarks.

All metrics compare a predicted label vector with a ground-truth label
vector; they are invariant to the numbering of predicted clusters.
"""

from .contingency import contingency_matrix
from .fscore import clustering_fscore, pairwise_precision_recall
from .nmi import mutual_information, normalized_mutual_information
from .extra import (
    adjusted_rand_index,
    align_cluster_labels,
    cluster_alignment,
    purity_score,
)

__all__ = [
    "adjusted_rand_index",
    "align_cluster_labels",
    "cluster_alignment",
    "clustering_fscore",
    "contingency_matrix",
    "mutual_information",
    "normalized_mutual_information",
    "pairwise_precision_recall",
    "purity_score",
]
