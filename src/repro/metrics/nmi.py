"""Normalized Mutual Information (Eq. 39 of the paper).

The mutual information between the true class assignment and the predicted
cluster assignment, normalised by the geometric mean of the two entropies so
the score lies in [0, 1] (1 = identical partitions up to relabelling, 0 =
independent partitions).
"""

from __future__ import annotations

import numpy as np

from .contingency import contingency_matrix

__all__ = ["mutual_information", "normalized_mutual_information"]


def _entropy(counts: np.ndarray) -> float:
    """Shannon entropy (nats) of a count vector."""
    total = float(counts.sum())
    if total <= 0:
        return 0.0
    probabilities = counts[counts > 0] / total
    return float(-np.sum(probabilities * np.log(probabilities)))


def mutual_information(labels_true, labels_pred) -> float:
    """Mutual information (nats) between two labelings."""
    table = contingency_matrix(labels_true, labels_pred).astype(np.float64)
    total = float(table.sum())
    joint = table / total
    class_marginal = joint.sum(axis=1, keepdims=True)
    cluster_marginal = joint.sum(axis=0, keepdims=True)
    outer = class_marginal @ cluster_marginal
    mask = joint > 0
    return float(np.sum(joint[mask] * np.log(joint[mask] / outer[mask])))


def normalized_mutual_information(labels_true, labels_pred) -> float:
    """NMI normalised by the geometric mean of the two label entropies.

    A degenerate case where one of the partitions has a single group (zero
    entropy) returns 0 unless both partitions are single-group and identical,
    in which case 1 is returned.
    """
    table = contingency_matrix(labels_true, labels_pred).astype(np.float64)
    entropy_true = _entropy(table.sum(axis=1))
    entropy_pred = _entropy(table.sum(axis=0))
    if entropy_true == 0.0 and entropy_pred == 0.0:
        return 1.0
    if entropy_true == 0.0 or entropy_pred == 0.0:
        return 0.0
    mi = mutual_information(labels_true, labels_pred)
    value = mi / np.sqrt(entropy_true * entropy_pred)
    return float(np.clip(value, 0.0, 1.0))
