"""Exception hierarchy and error taxonomy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures without masking programming errors
elsewhere in their own code.

Every error class additionally carries a **stable machine-readable error
code** (:attr:`ReproError.code`) and a CLI exit code
(:attr:`ReproError.exit_code`).  The same taxonomy is shared by all three
error surfaces of the serving stack:

* Python exceptions — ``exc.code`` / :func:`error_code`;
* the wire schema — :class:`repro.net.schema.ErrorResponse` carries the
  code, and :func:`exception_for_code` maps it back to the matching
  exception class on the client side;
* CLI exit codes — ``python -m repro.serve`` / ``python -m repro.net``
  exit with ``exc.exit_code`` and print ``error[<code>]`` on stderr.

Codes are append-only: once released, a code keeps its meaning (and its
exit code) forever, so scripts and monitoring rules written against one
release keep working on the next.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "ShapeError",
    "NotFittedError",
    "ConvergenceWarning",
    "DataGenerationError",
    "ExperimentError",
    "ArtifactError",
    "QueueFullError",
    "QuotaExceededError",
    "ModelNotFoundError",
    "ServerClosedError",
    "ServerDrainingError",
    "ERROR_CODES",
    "error_code",
    "exception_for_code",
]


class ReproError(Exception):
    """Base class for every error raised by the repro library."""

    #: Stable machine-readable error code of this class of failure.
    code = "internal"
    #: Process exit code a CLI maps this failure to.
    exit_code = 1
    #: Whether retrying the same request later may succeed (load shedding
    #: and lifecycle errors are retryable; validation errors are not).
    retryable = False


class ValidationError(ReproError, ValueError):
    """An input matrix, vector or parameter failed validation."""

    code = "invalid_request"
    exit_code = 2


class ShapeError(ValidationError):
    """An array has an incompatible or unexpected shape."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring a fitted estimator was called before ``fit``."""

    code = "not_fitted"


class ConvergenceWarning(UserWarning):
    """An iterative solver stopped before reaching its convergence tolerance."""


class DataGenerationError(ReproError):
    """A synthetic data generator received an unsatisfiable specification."""

    code = "data_generation"


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""

    code = "experiment"


class ArtifactError(ReproError):
    """A persisted model artifact is missing, corrupt or schema-incompatible."""

    code = "artifact_error"
    exit_code = 3


class ModelNotFoundError(ReproError, LookupError):
    """A request named a model id the serving tier has not registered."""

    code = "model_not_found"
    exit_code = 4


class QueueFullError(ReproError):
    """A serving runtime rejected a request because its queue is at capacity.

    Raised by the micro-batching runtime as explicit backpressure: callers
    should retry later or shed load instead of queueing unboundedly.
    """

    code = "queue_full"
    exit_code = 5
    retryable = True


class QuotaExceededError(ReproError):
    """A request exceeded its model's admission quota and was shed.

    Unlike :class:`QueueFullError` (the whole runtime is saturated), this
    is per-model admission control: other models keep being served.
    """

    code = "quota_exceeded"
    exit_code = 6
    retryable = True


class ServerClosedError(ReproError, RuntimeError):
    """A request was submitted to — or still queued in — a closed server.

    Requests still waiting in the micro-batch queue when the runtime shuts
    down are settled with this error instead of being orphaned; their
    futures resolve promptly and callers can fail over.
    """

    code = "server_closed"
    exit_code = 7
    retryable = True


class ServerDrainingError(ReproError):
    """A new request was rejected because the server is draining.

    In-flight requests accepted before the drain started still complete;
    only new admissions are refused (HTTP 503 on the wire).
    """

    code = "draining"
    exit_code = 8
    retryable = True


#: code -> exception class, for mapping wire/CLI error codes back to typed
#: exceptions.  Subclasses sharing a parent's code (e.g. ``ShapeError``)
#: map to the most general class carrying that code.
ERROR_CODES: dict[str, type[ReproError]] = {
    cls.code: cls
    for cls in (
        ReproError,
        ValidationError,
        NotFittedError,
        DataGenerationError,
        ExperimentError,
        ArtifactError,
        ModelNotFoundError,
        QueueFullError,
        QuotaExceededError,
        ServerClosedError,
        ServerDrainingError,
    )
}


def error_code(exc: BaseException) -> str:
    """The stable error code of ``exc`` (``"internal"`` for foreign errors)."""
    return getattr(type(exc), "code", ReproError.code) if isinstance(
        exc, ReproError) else ReproError.code


def exception_for_code(code: str, message: str) -> ReproError:
    """Instantiate the exception class registered for ``code``.

    Unknown codes (e.g. from a newer server) degrade to the base
    :class:`ReproError` rather than failing, so old clients survive new
    error codes — the same forward-compatibility stance as the wire schema.
    """
    return ERROR_CODES.get(code, ReproError)(message)
