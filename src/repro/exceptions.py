"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures without masking programming errors
elsewhere in their own code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An input matrix, vector or parameter failed validation."""


class ShapeError(ValidationError):
    """An array has an incompatible or unexpected shape."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring a fitted estimator was called before ``fit``."""


class ConvergenceWarning(UserWarning):
    """An iterative solver stopped before reaching its convergence tolerance."""


class DataGenerationError(ReproError):
    """A synthetic data generator received an unsatisfiable specification."""


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""


class ArtifactError(ReproError):
    """A persisted model artifact is missing, corrupt or schema-incompatible."""


class QueueFullError(ReproError):
    """A serving runtime rejected a request because its queue is at capacity.

    Raised by the micro-batching runtime as explicit backpressure: callers
    should retry later or shed load instead of queueing unboundedly.
    """
