"""Multiple-subspace learning for complete intra-type relationships.

The first stage of RHCHME (Section III.A of the paper) reconstructs each
object as a non-negative sparse combination of the other objects of its type,
``X_k ≈ X_k W_k`` with ``W_k ≥ 0`` and ``diag(W_k) = 0``, by minimising

    J2 = γ ‖X_k − X_k W_k‖²_F + ‖W_k W_kᵀ‖₁

with a Spectral Projected Gradient (SPG) method (Algorithm 1).  Objects from
the same low-dimensional subspace receive non-zero coefficients no matter how
far apart they are in Euclidean space — the "complete" intra-type
relationships the p-NN graph misses.

* :mod:`repro.subspace.spg` — generic non-monotone SPG solver on a convex set.
* :mod:`repro.subspace.representation` — the subspace representation problem
  and its solver wrapper (:class:`SubspaceRepresentation`).
* :mod:`repro.subspace.reference` — compact SSC/LRR-style reference solvers
  used as diagnostics and in ablation benchmarks.
"""

from .spg import SPGResult, spg_minimize
from .representation import (
    SubspaceRepresentation,
    SubspaceResult,
    learn_subspace_affinity,
    subspace_objective,
    subspace_objective_gradient,
)
from .reference import lrr_shrinkage_affinity, ssc_affinity

__all__ = [
    "SPGResult",
    "SubspaceRepresentation",
    "SubspaceResult",
    "learn_subspace_affinity",
    "lrr_shrinkage_affinity",
    "spg_minimize",
    "ssc_affinity",
    "subspace_objective",
    "subspace_objective_gradient",
]
