"""Non-monotone Spectral Projected Gradient (SPG) solver.

Implements the projected-gradient scheme of Birgin, Martínez & Raydan (SIAM
J. Optim., 1999) that Algorithm 1 of the paper uses to minimise the
multiple-subspace objective over the convex set
``{W : W ≥ 0, diag(W) = 0}``:

1. form the projected direction ``D = P(W − σ ∇f(W)) − W``;
2. choose a step length by a non-monotone Armijo line search;
3. update the spectral step ``σ = (yᵀ y) / (sᵀ y)`` from the Barzilai–Borwein
   quotient of successive iterates/gradients.

The solver is generic: it takes the objective, gradient and projection as
callables so the same machinery can be reused by other constrained problems
(for example the RMC ensemble-weight subproblem).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .._validation import check_positive_float, check_positive_int

__all__ = ["SPGResult", "spg_minimize"]


@dataclass
class SPGResult:
    """Outcome of an SPG run.

    Attributes
    ----------
    solution:
        The final (projected) iterate.
    objective:
        Objective value at the final iterate.
    n_iterations:
        Number of outer iterations performed.
    converged:
        ``True`` when the projected-gradient stationarity criterion was met
        before exhausting ``max_iter``.
    history:
        Objective value per iteration (including the starting point).
    """

    solution: np.ndarray
    objective: float
    n_iterations: int
    converged: bool
    history: list[float] = field(default_factory=list)


def spg_minimize(objective: Callable[[np.ndarray], float],
                 gradient: Callable[[np.ndarray], np.ndarray],
                 project: Callable[[np.ndarray], np.ndarray],
                 x0: np.ndarray,
                 *,
                 max_iter: int = 200,
                 tol: float = 1e-5,
                 memory: int = 10,
                 sigma_init: float = 1.0,
                 sigma_min: float = 1e-10,
                 sigma_max: float = 1e10,
                 armijo_decrease: float = 1e-4,
                 backtrack_factor: float = 0.5,
                 max_backtracks: int = 30) -> SPGResult:
    """Minimise ``objective`` over a convex set defined by ``project``.

    Parameters
    ----------
    objective, gradient, project:
        Callables evaluating the smooth objective, its gradient and the
        Euclidean projection onto the feasible set.
    x0:
        Starting point; it is projected onto the feasible set before use.
    max_iter:
        Maximum number of outer iterations.
    tol:
        Stationarity tolerance on the infinity norm of the projected-gradient
        step ``P(x − ∇f(x)) − x``.
    memory:
        Number of previous objective values used by the non-monotone Armijo
        condition (``memory=1`` gives the classical monotone line search).
    sigma_init, sigma_min, sigma_max:
        Initial value and safeguarding bounds of the spectral step length.
    armijo_decrease:
        Sufficient-decrease constant of the Armijo condition.
    backtrack_factor:
        Multiplicative backtracking factor of the line search.
    max_backtracks:
        Maximum number of halvings per line search before accepting the step.
    """
    max_iter = check_positive_int(max_iter, name="max_iter")
    memory = check_positive_int(memory, name="memory")
    tol = check_positive_float(tol, name="tol")
    sigma = float(np.clip(sigma_init, sigma_min, sigma_max))

    x = project(np.asarray(x0, dtype=np.float64))
    f_x = float(objective(x))
    grad = gradient(x)
    history = [f_x]
    recent_values = [f_x]
    converged = False
    iteration = 0

    for iteration in range(1, max_iter + 1):
        direction = project(x - sigma * grad) - x
        step_norm = float(np.max(np.abs(project(x - grad) - x)))
        if step_norm <= tol:
            converged = True
            iteration -= 1
            break

        directional_derivative = float(np.sum(grad * direction))
        if directional_derivative >= 0.0:
            # The projected direction is not a descent direction (can happen
            # with a badly scaled spectral step); reset sigma and retry once.
            sigma = 1.0
            direction = project(x - sigma * grad) - x
            directional_derivative = float(np.sum(grad * direction))
            if directional_derivative >= 0.0:
                converged = True
                iteration -= 1
                break

        reference = max(recent_values)
        step = 1.0
        for _ in range(max_backtracks):
            candidate = x + step * direction
            f_candidate = float(objective(candidate))
            if f_candidate <= reference + armijo_decrease * step * directional_derivative:
                break
            step *= backtrack_factor
        else:
            candidate = x + step * direction
            f_candidate = float(objective(candidate))

        grad_candidate = gradient(candidate)
        s = (candidate - x).ravel()
        y = (grad_candidate - grad).ravel()
        sy = float(np.dot(s, y))
        if sy > 0:
            sigma = float(np.clip(np.dot(s, s) / sy, sigma_min, sigma_max))
        else:
            sigma = sigma_max

        x, f_x, grad = candidate, f_candidate, grad_candidate
        history.append(f_x)
        recent_values.append(f_x)
        if len(recent_values) > memory:
            recent_values.pop(0)

    return SPGResult(solution=x, objective=f_x, n_iterations=iteration,
                     converged=converged, history=history)
