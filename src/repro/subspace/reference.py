"""Reference reconstruction-based subspace affinities (SSC / LRR style).

The paper's related-work section compares its quadratic-programming
formulation against Sparse Subspace Clustering (ℓ1-regularised) and Low-Rank
Representation (nuclear-norm-regularised).  These compact solvers provide
alternative ``W^S`` constructions used by the ablation benchmarks and the
property tests; they are not needed by the main RHCHME pipeline.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array, check_positive_float, check_positive_int

__all__ = ["ssc_affinity", "lrr_shrinkage_affinity"]


def _soft_threshold(values: np.ndarray, threshold: float) -> np.ndarray:
    """Element-wise soft-thresholding operator."""
    return np.sign(values) * np.maximum(np.abs(values) - threshold, 0.0)


def ssc_affinity(X: np.ndarray, *, alpha: float = 10.0, max_iter: int = 200,
                 tol: float = 1e-5) -> np.ndarray:
    """Sparse self-representation affinity via proximal gradient (ISTA).

    Solves ``min_C ½‖Xᵀ − Xᵀ C‖²_F + (1/α)·‖C‖₁`` with ``diag(C) = 0`` and
    returns the symmetrised magnitude ``(|C| + |Cᵀ|) / 2``.

    Parameters
    ----------
    X:
        ``(n, d)`` data matrix, one object per row.
    alpha:
        Inverse sparsity weight; larger values allow denser representations.
    max_iter, tol:
        ISTA iteration limit and relative-change tolerance.
    """
    X = as_float_array(X, name="X", ndim=2)
    alpha = check_positive_float(alpha, name="alpha")
    max_iter = check_positive_int(max_iter, name="max_iter")
    n_objects = X.shape[0]
    gram = X @ X.T
    scale = float(np.trace(gram)) / max(n_objects, 1)
    if scale > 0:
        gram = gram / scale
    lipschitz = max(float(np.linalg.norm(gram, 2)), 1e-8)
    step = 1.0 / lipschitz
    penalty = 1.0 / alpha
    C = np.zeros((n_objects, n_objects))
    for _ in range(max_iter):
        gradient = gram @ C - gram
        updated = _soft_threshold(C - step * gradient, step * penalty)
        np.fill_diagonal(updated, 0.0)
        change = float(np.linalg.norm(updated - C)) / max(float(np.linalg.norm(C)), 1e-8)
        C = updated
        if change < tol:
            break
    return (np.abs(C) + np.abs(C.T)) / 2.0


def lrr_shrinkage_affinity(X: np.ndarray, *, rank_fraction: float = 0.25,
                           shrinkage: float = 0.1) -> np.ndarray:
    """Low-rank self-representation affinity via truncated SVD shrinkage.

    A lightweight stand-in for Low-Rank Representation: the data Gram matrix
    is approximated with a soft-thresholded truncated eigen-decomposition and
    converted into a non-negative symmetric affinity.  This captures LRR's
    "global low-rank structure" behaviour at a fraction of its cost, which is
    all the ablation studies need.

    Parameters
    ----------
    X:
        ``(n, d)`` data matrix, one object per row.
    rank_fraction:
        Fraction of the spectrum retained (at least one component).
    shrinkage:
        Relative soft-threshold applied to the retained eigenvalues.
    """
    X = as_float_array(X, name="X", ndim=2)
    rank_fraction = check_positive_float(rank_fraction, name="rank_fraction")
    if rank_fraction > 1.0:
        raise ValueError(f"rank_fraction must be <= 1, got {rank_fraction}")
    n_objects = X.shape[0]
    gram = X @ X.T
    eigenvalues, eigenvectors = np.linalg.eigh(gram)
    order = np.argsort(eigenvalues)[::-1]
    eigenvalues, eigenvectors = eigenvalues[order], eigenvectors[:, order]
    keep = max(int(round(rank_fraction * n_objects)), 1)
    eigenvalues = eigenvalues[:keep]
    eigenvectors = eigenvectors[:, :keep]
    threshold = shrinkage * float(eigenvalues[0]) if eigenvalues.size else 0.0
    shrunk = np.maximum(eigenvalues - threshold, 0.0)
    affinity = eigenvectors @ np.diag(shrunk) @ eigenvectors.T
    affinity = np.abs((affinity + affinity.T) / 2.0)
    np.fill_diagonal(affinity, 0.0)
    maximum = float(affinity.max())
    if maximum > 0:
        affinity = affinity / maximum
    return affinity
