"""Multiple-subspace representation learning (Algorithm 1 / Eq. 9).

Each object of a type is reconstructed from the other objects of the same
type.  The learnt coefficient matrix ``W_k`` is the subspace-membership
affinity ``W^S``: objects drawn from the same low-dimensional subspace get a
non-zero similarity regardless of their Euclidean distance, objects from
different subspaces get (near-)zero similarity.

Objective (Eq. 9, with the paper's column-vector convention transposed into
our row-major convention ``X ∈ R^{n×d}``):

    J2(W) = γ ‖Xᵀ − Xᵀ W‖²_F + ‖W Wᵀ‖₁    s.t.  W ≥ 0, diag(W) = 0

Because ``W ≥ 0``, ``‖W Wᵀ‖₁ = 1ᵀ W Wᵀ 1 = Σ_j (Σ_i W_ij)²`` is smooth with
gradient ``2 Z W`` (``Z`` the all-ones matrix).  The paper's Algorithm 1
writes the gradient as ``2 W Z``, which is the same expression under the
transposed (column-object) data convention; both are equivalent because the
learnt affinity is symmetrised afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_float_array, check_positive_float, check_random_state
from ..linalg.projections import project_nonnegative_zero_diagonal
from .spg import SPGResult, spg_minimize

__all__ = [
    "subspace_objective",
    "subspace_objective_gradient",
    "SubspaceResult",
    "SubspaceRepresentation",
    "learn_subspace_affinity",
]


def subspace_objective(W: np.ndarray, gram: np.ndarray, gamma: float) -> float:
    """Evaluate J2 given the Gram matrix ``gram = X Xᵀ`` of the objects.

    Expanding the reconstruction term with the Gram matrix keeps every
    evaluation at ``O(n²·n)`` in the number of objects and independent of the
    feature dimensionality, which matters for the text-like data the paper
    uses (thousands of features).
    """
    W = np.asarray(W, dtype=np.float64)
    residual_quadratic = (np.trace(gram)
                          - 2.0 * float(np.sum(gram * W))
                          + float(np.sum((gram @ W) * W)))
    sparsity = float(np.sum(W @ W.T)) if np.all(W >= 0) else float(np.sum(np.abs(W @ W.T)))
    return gamma * max(residual_quadratic, 0.0) + sparsity


def subspace_objective_gradient(W: np.ndarray, gram: np.ndarray,
                                gamma: float) -> np.ndarray:
    """Gradient of J2 with respect to ``W`` (Algorithm 1, step 1).

    ``∇J2 = 2γ (X Xᵀ W − X Xᵀ) + 2 Z W`` where ``Z`` is the all-ones matrix,
    so ``Z W`` has entry ``(i, j)`` equal to the j-th column sum of ``W`` —
    the gradient of ``‖W Wᵀ‖₁ = Σ_j (Σ_i W_ij)²`` for non-negative ``W``.
    """
    W = np.asarray(W, dtype=np.float64)
    column_sums = np.sum(W, axis=0, keepdims=True)
    ones_product = np.broadcast_to(column_sums, W.shape)
    return 2.0 * gamma * (gram @ W - gram) + 2.0 * ones_product


@dataclass
class SubspaceResult:
    """Result of fitting the multiple-subspace representation.

    Attributes
    ----------
    affinity:
        Symmetrised non-negative subspace affinity ``(|W| + |Wᵀ|) / 2``.
    coefficients:
        Raw (asymmetric) coefficient matrix ``W`` solving Eq. 9.
    objective:
        Final objective value.
    n_iterations:
        SPG iterations performed.
    converged:
        Whether the SPG stationarity criterion was met.
    """

    affinity: np.ndarray
    coefficients: np.ndarray
    objective: float
    n_iterations: int
    converged: bool


class SubspaceRepresentation:
    """Estimator for the subspace-membership affinity of one object type.

    Parameters
    ----------
    gamma:
        Noise-tolerance weight of the reconstruction term (larger values mean
        the data is assumed cleaner); the paper's experiments favour
        ``γ ∈ [10, 50]``.
    max_iter:
        Maximum SPG iterations.
    tol:
        SPG stationarity tolerance.
    random_state:
        Seed controlling the random initialisation of ``W``.
    init_scale:
        Magnitude of the random uniform initialisation.
    """

    def __init__(self, gamma: float = 25.0, *, max_iter: int = 200,
                 tol: float = 1e-4, random_state=None,
                 init_scale: float = 1e-2) -> None:
        self.gamma = check_positive_float(gamma, name="gamma")
        self.max_iter = int(max_iter)
        self.tol = check_positive_float(tol, name="tol")
        self.random_state = random_state
        self.init_scale = check_positive_float(init_scale, name="init_scale")

    def fit(self, X: np.ndarray) -> SubspaceResult:
        """Learn the subspace affinity for data matrix ``X`` (objects as rows)."""
        X = as_float_array(X, name="X", ndim=2)
        n_objects = X.shape[0]
        if n_objects < 2:
            raise ValueError("subspace learning needs at least two objects")
        rng = check_random_state(self.random_state)
        gram = X @ X.T
        # Scale-normalise the Gram matrix so the same gamma grid behaves
        # comparably across datasets with very different feature magnitudes.
        scale = float(np.trace(gram)) / n_objects
        if scale > 0:
            gram = gram / scale

        initial = project_nonnegative_zero_diagonal(
            rng.uniform(0.0, self.init_scale, size=(n_objects, n_objects)))

        result: SPGResult = spg_minimize(
            objective=lambda W: subspace_objective(W, gram, self.gamma),
            gradient=lambda W: subspace_objective_gradient(W, gram, self.gamma),
            project=project_nonnegative_zero_diagonal,
            x0=initial,
            max_iter=self.max_iter,
            tol=self.tol,
        )
        coefficients = result.solution
        affinity = (coefficients + coefficients.T) / 2.0
        return SubspaceResult(affinity=affinity,
                              coefficients=coefficients,
                              objective=result.objective,
                              n_iterations=result.n_iterations,
                              converged=result.converged)


def learn_subspace_affinity(X: np.ndarray, gamma: float = 25.0, *,
                            max_iter: int = 200, tol: float = 1e-4,
                            random_state=None) -> np.ndarray:
    """Convenience wrapper returning only the symmetric affinity ``W^S``."""
    model = SubspaceRepresentation(gamma=gamma, max_iter=max_iter, tol=tol,
                                   random_state=random_state)
    return model.fit(X).affinity
