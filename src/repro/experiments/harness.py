"""Running (method, dataset) cells and collecting FScore / NMI / runtime.

The paper's evaluation is organised as a grid: every method on every dataset,
reporting the document-clustering FScore (Table III), NMI (Table IV) and the
running time (Table V).  ``run_cell`` evaluates one cell; ``run_grid`` runs a
whole grid and caches datasets so every method sees the same data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import time
from typing import Any, Mapping, Sequence

import numpy as np

from ..data.datasets import make_dataset
from ..metrics.fscore import clustering_fscore
from ..metrics.nmi import normalized_mutual_information
from ..relational.dataset import MultiTypeRelationalData
from .registry import DEFAULT_DATASETS, DEFAULT_METHODS, build_method, method_registry

__all__ = ["CellResult", "evaluate_labels", "run_cell", "run_grid"]


@dataclass
class CellResult:
    """Evaluation of one method on one dataset.

    Attributes
    ----------
    method, dataset:
        Names of the evaluated method and dataset preset.
    fscore, nmi:
        Document-clustering FScore and NMI (the quantities of Tables III/IV).
    runtime_seconds:
        Wall-clock fit time (Table V analogue).
    per_type:
        FScore/NMI per object type for methods that cluster all types.
    n_iterations:
        Iterations the method ran for (when exposed by the estimator).
    extras:
        Free-form additional details (convergence flag, config, …).
    """

    method: str
    dataset: str
    fscore: float
    nmi: float
    runtime_seconds: float
    per_type: dict[str, dict[str, float]] = field(default_factory=dict)
    n_iterations: int = 0
    extras: dict[str, Any] = field(default_factory=dict)


def evaluate_labels(labels_true: np.ndarray, labels_pred: np.ndarray) -> dict[str, float]:
    """FScore and NMI of one predicted labeling."""
    return {
        "fscore": clustering_fscore(labels_true, labels_pred),
        "nmi": normalized_mutual_information(labels_true, labels_pred),
    }


def run_cell(method_name: str, data: MultiTypeRelationalData, *,
             dataset_name: str = "dataset", max_iter: int = 60,
             random_state: int | None = 0,
             overrides: Mapping[str, Any] | None = None) -> CellResult:
    """Fit one method on one dataset and evaluate document clustering.

    Two-way methods (the DRCC variants) return document labels directly;
    HOCC methods return labels for every type, of which the document labels
    are used for the headline FScore/NMI (matching the paper's evaluation)
    and the per-type metrics are kept in ``per_type``.
    """
    registry = method_registry()
    estimator = build_method(method_name, max_iter=max_iter,
                             random_state=random_state, **(overrides or {}))
    documents = data.get_type("documents")
    if documents.labels is None:
        raise ValueError("the documents type needs ground-truth labels for evaluation")

    start = time.perf_counter()
    spec = registry.get(method_name) or registry[method_name.upper()]
    per_type: dict[str, dict[str, float]] = {}
    if spec.is_two_way:
        result = estimator.fit(data)
        document_labels = result.labels
        n_iterations = result.n_iterations
        converged = result.converged
    else:
        result = estimator.fit(data)
        document_labels = result.labels["documents"]
        n_iterations = result.n_iterations
        converged = result.converged
        for object_type in data.types:
            if object_type.has_labels:
                per_type[object_type.name] = evaluate_labels(
                    object_type.labels, result.labels[object_type.name])
    runtime = time.perf_counter() - start

    headline = evaluate_labels(documents.labels, document_labels)
    return CellResult(method=method_name, dataset=dataset_name,
                      fscore=headline["fscore"], nmi=headline["nmi"],
                      runtime_seconds=runtime, per_type=per_type,
                      n_iterations=n_iterations,
                      extras={"converged": converged})


def run_grid(methods: Sequence[str] = DEFAULT_METHODS,
             datasets: Sequence[str] = DEFAULT_DATASETS, *,
             max_iter: int = 60, random_state: int = 0,
             dataset_random_state: int = 0,
             overrides: Mapping[str, Mapping[str, Any]] | None = None,
             prebuilt: Mapping[str, MultiTypeRelationalData] | None = None,
             ) -> list[CellResult]:
    """Run every method on every dataset and return the flat list of cells.

    Parameters
    ----------
    methods, datasets:
        Names to evaluate; defaults are the paper's seven methods and the
        four Table II datasets (synthetic, scaled).
    max_iter:
        Iteration budget for every iterative method.
    random_state:
        Seed given to every estimator (same seed → same initialisation per
        dataset, so methods are compared under identical conditions).
    dataset_random_state:
        Seed of the synthetic dataset generation.
    overrides:
        Optional per-method hyper-parameter overrides
        (``{"RHCHME": {"lam": 500}}``).
    prebuilt:
        Optional mapping of dataset name to an already-generated dataset
        (used by the benchmarks to avoid re-generating data per round).
    """
    overrides = overrides or {}
    results: list[CellResult] = []
    for dataset_name in datasets:
        if prebuilt is not None and dataset_name in prebuilt:
            data = prebuilt[dataset_name]
        else:
            data = make_dataset(dataset_name, random_state=dataset_random_state)
        for method_name in methods:
            cell = run_cell(method_name, data, dataset_name=dataset_name,
                            max_iter=max_iter, random_state=random_state,
                            overrides=overrides.get(method_name))
            results.append(cell)
    return results
