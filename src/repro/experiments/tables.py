"""Reproduction of the paper's tables.

* Table II — dataset characteristics (classes / documents / terms / concepts).
* Table III — FScore for each dataset and method.
* Table IV — NMI for each dataset and method.
* Table V — running time of each method.

Each function returns structured rows plus the nested ``{method: {dataset:
value}}`` mapping the reporting module renders, so the benchmarks can both
print the table and make qualitative assertions (e.g. "RHCHME ≥ RMC on
average") against it.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from ..data.datasets import dataset_characteristics
from .harness import CellResult, run_grid
from .registry import DEFAULT_DATASETS, DEFAULT_METHODS

__all__ = [
    "table2_dataset_characteristics",
    "table3_fscore",
    "table4_nmi",
    "table5_runtime",
    "grid_to_matrix",
    "method_averages",
]


def grid_to_matrix(cells: Sequence[CellResult], metric: str) -> dict[str, dict[str, float]]:
    """Reshape flat grid cells into ``{method: {dataset: value}}`` for one metric."""
    matrix: dict[str, dict[str, float]] = {}
    for cell in cells:
        value = getattr(cell, metric)
        matrix.setdefault(cell.method, {})[cell.dataset] = float(value)
    return matrix


def method_averages(matrix: Mapping[str, Mapping[str, float]]) -> dict[str, float]:
    """Average of each method's values across datasets (the Average column)."""
    return {method: float(np.mean(list(values.values())))
            for method, values in matrix.items() if values}


def table2_dataset_characteristics(datasets: Sequence[str] | None = None
                                   ) -> list[dict[str, Any]]:
    """Table II analogue: the synthetic presets' class/object counts."""
    return dataset_characteristics(datasets)


def _run_or_reuse(cells: Sequence[CellResult] | None,
                  methods: Sequence[str], datasets: Sequence[str],
                  max_iter: int, random_state: int) -> list[CellResult]:
    if cells is not None:
        return list(cells)
    return run_grid(methods, datasets, max_iter=max_iter, random_state=random_state)


def table3_fscore(methods: Sequence[str] = DEFAULT_METHODS,
                  datasets: Sequence[str] = DEFAULT_DATASETS, *,
                  max_iter: int = 60, random_state: int = 0,
                  cells: Sequence[CellResult] | None = None
                  ) -> tuple[dict[str, dict[str, float]], dict[str, float]]:
    """Table III: FScore per (method, dataset) plus per-method averages."""
    cells = _run_or_reuse(cells, methods, datasets, max_iter, random_state)
    matrix = grid_to_matrix(cells, "fscore")
    return matrix, method_averages(matrix)


def table4_nmi(methods: Sequence[str] = DEFAULT_METHODS,
               datasets: Sequence[str] = DEFAULT_DATASETS, *,
               max_iter: int = 60, random_state: int = 0,
               cells: Sequence[CellResult] | None = None
               ) -> tuple[dict[str, dict[str, float]], dict[str, float]]:
    """Table IV: NMI per (method, dataset) plus per-method averages."""
    cells = _run_or_reuse(cells, methods, datasets, max_iter, random_state)
    matrix = grid_to_matrix(cells, "nmi")
    return matrix, method_averages(matrix)


def table5_runtime(methods: Sequence[str] = DEFAULT_METHODS,
                   datasets: Sequence[str] = DEFAULT_DATASETS, *,
                   max_iter: int = 60, random_state: int = 0,
                   cells: Sequence[CellResult] | None = None
                   ) -> dict[str, dict[str, float]]:
    """Table V: wall-clock running time (seconds) per (method, dataset)."""
    cells = _run_or_reuse(cells, methods, datasets, max_iter, random_state)
    return grid_to_matrix(cells, "runtime_seconds")
