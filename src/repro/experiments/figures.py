"""Reproduction of the paper's figures.

* Figure 1 — why p-NN graphs miss within-manifold neighbours on intersecting
  manifolds while subspace learning finds them (a quantitative analysis of
  the illustration: neighbour completeness and intersection confusion).
* Figure 2 — FScore/NMI sensitivity curves over λ, γ, α and β on the
  R-Min20Max200 analogue.
* Figure 3 — FScore/NMI versus iteration count on every dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.config import RHCHMEConfig
from ..core.rhchme import RHCHME
from ..data.datasets import make_dataset
from ..data.manifolds import sample_intersecting_circles
from ..graph.pnn import pnn_affinity
from ..metrics.fscore import clustering_fscore
from ..metrics.nmi import normalized_mutual_information
from ..relational.dataset import MultiTypeRelationalData
from ..subspace.representation import learn_subspace_affinity

__all__ = [
    "SensitivityCurve",
    "figure1_neighbour_completeness",
    "figure2_parameter_sensitivity",
    "figure3_convergence_curves",
    "PAPER_PARAMETER_GRIDS",
]

#: The parameter grids swept in Figure 2 of the paper.
PAPER_PARAMETER_GRIDS: dict[str, tuple[float, ...]] = {
    "lam": (0.001, 0.01, 0.1, 1.0, 250.0, 500.0, 750.0, 1000.0),
    "gamma": (0.01, 0.1, 1.0, 10.0, 25.0, 50.0, 75.0, 100.0),
    "alpha": (1 / 16, 1 / 8, 1 / 4, 1 / 2, 1.0, 2.0, 4.0, 8.0, 16.0),
    "beta": (1.0, 10.0, 20.0, 30.0, 40.0, 50.0, 80.0, 100.0, 1000.0),
}


@dataclass
class SensitivityCurve:
    """FScore/NMI of RHCHME as one hyper-parameter sweeps its grid.

    Attributes
    ----------
    parameter:
        Name of the swept hyper-parameter (``lam`` / ``gamma`` / ``alpha`` /
        ``beta``).
    values:
        Grid values in sweep order.
    fscore, nmi:
        Document-clustering metrics at each grid value.
    """

    parameter: str
    values: list[float] = field(default_factory=list)
    fscore: list[float] = field(default_factory=list)
    nmi: list[float] = field(default_factory=list)

    def best_value(self, metric: str = "fscore") -> float:
        """Grid value with the best score for the chosen metric."""
        scores = getattr(self, metric)
        return self.values[int(np.argmax(scores))]


# --------------------------------------------------------------------- fig 1
def figure1_neighbour_completeness(n_per_circle: int = 60, *, p: int = 5,
                                   gamma: float = 25.0, separation: float = 1.0,
                                   noise: float = 0.03,
                                   random_state: int = 0) -> dict[str, float]:
    """Quantify the Figure 1 argument on two intersecting circles.

    For each affinity (p-NN graph vs subspace representation) we measure

    * ``within_manifold_mass`` — the fraction of total affinity mass that
      connects points of the same circle (higher = the affinity respects the
      manifolds better);
    * ``neighbour_coverage`` — the average fraction of same-manifold points a
      point is connected to (p-NN is bounded by p/n; subspace learning can
      reach distant within-manifold points).

    The expected shape is the paper's: the subspace affinity achieves higher
    coverage of within-manifold neighbours than the small-p graph.
    """
    points, labels = sample_intersecting_circles(
        n_per_circle, separation=separation, noise=noise,
        random_state=random_state)
    keep = labels >= 0
    points, labels = points[keep], labels[keep]

    same_manifold = labels[:, None] == labels[None, :]
    np.fill_diagonal(same_manifold, False)

    def analyse(affinity: np.ndarray) -> tuple[float, float]:
        affinity = np.asarray(affinity, dtype=np.float64).copy()
        np.fill_diagonal(affinity, 0.0)
        total_mass = float(affinity.sum())
        within_mass = float(affinity[same_manifold].sum())
        mass_ratio = within_mass / total_mass if total_mass > 0 else 0.0
        connected = affinity > 1e-8
        coverage = float(np.mean(
            np.sum(connected & same_manifold, axis=1)
            / np.maximum(np.sum(same_manifold, axis=1), 1)))
        return mass_ratio, coverage

    pnn = pnn_affinity(points, p=p, scheme="binary")
    subspace = learn_subspace_affinity(points, gamma=gamma, max_iter=150,
                                       random_state=random_state)
    pnn_mass, pnn_coverage = analyse(pnn)
    sub_mass, sub_coverage = analyse(subspace)
    return {
        "pnn_within_manifold_mass": pnn_mass,
        "pnn_neighbour_coverage": pnn_coverage,
        "subspace_within_manifold_mass": sub_mass,
        "subspace_neighbour_coverage": sub_coverage,
    }


# --------------------------------------------------------------------- fig 2
def figure2_parameter_sensitivity(parameter: str,
                                  values: Sequence[float] | None = None, *,
                                  dataset: str = "r-min20max200-small",
                                  data: MultiTypeRelationalData | None = None,
                                  base_config: RHCHMEConfig | None = None,
                                  max_iter: int = 30,
                                  random_state: int = 0) -> SensitivityCurve:
    """Sweep one RHCHME hyper-parameter and record FScore/NMI (Figure 2).

    The paper demonstrates the sweep on R-Min20Max200; the default here is
    the scaled synthetic analogue.  All other parameters stay at the paper's
    defaults, matching the experimental protocol of Section IV.E.
    """
    if parameter not in PAPER_PARAMETER_GRIDS:
        raise ValueError(
            f"unknown parameter {parameter!r}; expected one of "
            f"{sorted(PAPER_PARAMETER_GRIDS)}")
    if values is None:
        values = PAPER_PARAMETER_GRIDS[parameter]
    if data is None:
        data = make_dataset(dataset, random_state=random_state)
    if base_config is None:
        base_config = RHCHMEConfig(max_iter=max_iter, random_state=random_state,
                                   track_metrics_every=0)
    documents = data.get_type("documents")
    curve = SensitivityCurve(parameter=parameter)
    for value in values:
        config = base_config.with_overrides(**{parameter: float(value)},
                                            max_iter=max_iter,
                                            random_state=random_state)
        result = RHCHME(config).fit(data)
        predicted = result.labels["documents"]
        curve.values.append(float(value))
        curve.fscore.append(clustering_fscore(documents.labels, predicted))
        curve.nmi.append(normalized_mutual_information(documents.labels, predicted))
    return curve


# --------------------------------------------------------------------- fig 3
def figure3_convergence_curves(datasets: Sequence[str] = (
        "multi5-small", "multi10-small", "r-min20max200-small", "r-top10-small"), *,
        max_iter: int = 40, random_state: int = 0,
        config: RHCHMEConfig | None = None
        ) -> dict[str, dict[str, list[float]]]:
    """FScore/NMI of RHCHME per iteration on each dataset (Figure 3).

    Returns ``{dataset: {"fscore": [...], "nmi": [...], "objective": [...]}}``
    where index i is the value after iteration i (index 0 is the k-means
    initialisation).
    """
    curves: dict[str, dict[str, list[float]]] = {}
    for dataset_name in datasets:
        data = make_dataset(dataset_name, random_state=random_state)
        base = config or RHCHMEConfig()
        run_config = base.with_overrides(max_iter=max_iter,
                                         random_state=random_state,
                                         track_metrics_every=1)
        result = RHCHME(run_config).fit(data)
        fscore_series = result.trace.metric_series("fscore/documents")
        nmi_series = result.trace.metric_series("nmi/documents")
        curves[dataset_name] = {
            "fscore": [float(v) for v in fscore_series],
            "nmi": [float(v) for v in nmi_series],
            "objective": [float(v) for v in result.trace.objectives],
        }
    return curves
