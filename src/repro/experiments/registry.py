"""Method and dataset registries used by the evaluation harness.

``method_registry`` maps the paper's method names (DR-T, DR-C, DR-TC, SRC,
SNMTF, RMC, RHCHME) to factories producing configured estimators.  The
default hyper-parameters follow Section IV.B/IV.E of the paper: p = 5 for
SNMTF and RHCHME, the six-candidate grid for RMC, λ ≈ 250, γ = 25, α = 1 and
β = 50 for RHCHME.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..baselines.drcc import DRCC, DRCCVariant
from ..baselines.rmc import RMC
from ..baselines.snmtf import SNMTF
from ..baselines.src import SRC
from ..core.config import RHCHMEConfig
from ..core.rhchme import RHCHME
from ..exceptions import ExperimentError

__all__ = [
    "MethodSpec",
    "method_registry",
    "list_methods",
    "build_method",
    "DEFAULT_METHODS",
    "DEFAULT_DATASETS",
]

#: Method names in the order the paper's tables list them.
DEFAULT_METHODS: tuple[str, ...] = (
    "DR-T", "DR-C", "DR-TC", "SRC", "SNMTF", "RMC", "RHCHME")

#: Dataset presets corresponding to D1–D4 (scaled synthetic variants).
DEFAULT_DATASETS: tuple[str, ...] = (
    "multi5", "multi10", "r-min20max200", "r-top10")

#: Reduced dataset list for smoke runs of the full grid.
SMALL_DATASETS: tuple[str, ...] = (
    "multi5-small", "multi10-small", "r-min20max200-small", "r-top10-small")


@dataclass(frozen=True)
class MethodSpec:
    """Registry entry describing one comparison method.

    Attributes
    ----------
    name:
        The paper's name for the method.
    factory:
        Callable ``(max_iter, random_state, **overrides) -> estimator``.
    is_two_way:
        Whether the method clusters only documents (the DRCC variants) rather
        than all object types.
    """

    name: str
    factory: Callable[..., Any]
    is_two_way: bool = False


def _drcc_factory(variant: str) -> Callable[..., DRCC]:
    def build(max_iter: int = 60, random_state: int | None = None,
              **overrides: Any) -> DRCC:
        params = {"lam": 1.0, "mu": 1.0, "p": 5}
        params.update(overrides)
        return DRCC(DRCCVariant.coerce(variant), max_iter=max_iter,
                    random_state=random_state, **params)
    return build


def _src_factory(max_iter: int = 60, random_state: int | None = None,
                 **overrides: Any) -> SRC:
    return SRC(max_iter=max_iter, random_state=random_state, **overrides)


def _snmtf_factory(max_iter: int = 60, random_state: int | None = None,
                   **overrides: Any) -> SNMTF:
    params = {"lam": 100.0, "p": 5}
    params.update(overrides)
    return SNMTF(max_iter=max_iter, random_state=random_state, **params)


def _rmc_factory(max_iter: int = 60, random_state: int | None = None,
                 **overrides: Any) -> RMC:
    params = {"lam": 100.0, "refit_every": 5}
    params.update(overrides)
    return RMC(max_iter=max_iter, random_state=random_state, **params)


def _rhchme_factory(max_iter: int = 60, random_state: int | None = None,
                    **overrides: Any) -> RHCHME:
    config = RHCHMEConfig(lam=250.0, gamma=25.0, alpha=1.0, beta=50.0, p=5,
                          max_iter=max_iter, random_state=random_state)
    if overrides:
        config = config.with_overrides(**overrides)
    return RHCHME(config)


def method_registry() -> dict[str, MethodSpec]:
    """Return the full method registry keyed by the paper's method names."""
    return {
        "DR-T": MethodSpec("DR-T", _drcc_factory("dr-t"), is_two_way=True),
        "DR-C": MethodSpec("DR-C", _drcc_factory("dr-c"), is_two_way=True),
        "DR-TC": MethodSpec("DR-TC", _drcc_factory("dr-tc"), is_two_way=True),
        "SRC": MethodSpec("SRC", _src_factory),
        "SNMTF": MethodSpec("SNMTF", _snmtf_factory),
        "RMC": MethodSpec("RMC", _rmc_factory),
        "RHCHME": MethodSpec("RHCHME", _rhchme_factory),
    }


def list_methods() -> list[str]:
    """Registered method names in table order."""
    return list(DEFAULT_METHODS)


def build_method(name: str, *, max_iter: int = 60, random_state: int | None = None,
                 **overrides: Any):
    """Instantiate a registered method with optional hyper-parameter overrides."""
    registry = method_registry()
    key = name.strip()
    if key not in registry:
        # Accept case-insensitive lookups for convenience.
        matches = [k for k in registry if k.lower() == key.lower()]
        if not matches:
            raise ExperimentError(
                f"unknown method {name!r}; available: {sorted(registry)}")
        key = matches[0]
    return registry[key].factory(max_iter=max_iter, random_state=random_state,
                                 **overrides)
