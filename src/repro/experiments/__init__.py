"""Experiment harness reproducing every table and figure of the paper.

The harness separates three concerns:

* :mod:`repro.experiments.registry` — the method registry (name → factory)
  and the dataset list used by the evaluation tables.
* :mod:`repro.experiments.harness` — running one (method, dataset) cell and
  collecting FScore / NMI / runtime.
* :mod:`repro.experiments.tables` — Table II (dataset characteristics),
  Table III (FScore), Table IV (NMI) and Table V (running time).
* :mod:`repro.experiments.figures` — Figure 2 (parameter sensitivity) and
  Figure 3 (convergence curves), plus the Figure 1 neighbour-completeness
  analysis.
* :mod:`repro.experiments.reporting` — plain-text/markdown rendering of the
  collected results (the benchmark harness prints the same rows/series the
  paper reports).
"""

from .registry import (
    DEFAULT_DATASETS,
    DEFAULT_METHODS,
    MethodSpec,
    build_method,
    list_methods,
    method_registry,
)
from .harness import CellResult, evaluate_labels, run_cell, run_grid
from .tables import table2_dataset_characteristics, table3_fscore, table4_nmi, table5_runtime
from .figures import (
    figure1_neighbour_completeness,
    figure2_parameter_sensitivity,
    figure3_convergence_curves,
)
from .reporting import format_series, format_table, rows_to_markdown

__all__ = [
    "CellResult",
    "DEFAULT_DATASETS",
    "DEFAULT_METHODS",
    "MethodSpec",
    "build_method",
    "evaluate_labels",
    "figure1_neighbour_completeness",
    "figure2_parameter_sensitivity",
    "figure3_convergence_curves",
    "format_series",
    "format_table",
    "list_methods",
    "method_registry",
    "rows_to_markdown",
    "run_cell",
    "run_grid",
    "table2_dataset_characteristics",
    "table3_fscore",
    "table4_nmi",
    "table5_runtime",
]
