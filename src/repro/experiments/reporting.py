"""Rendering experiment results as plain-text / markdown tables.

The benchmark harness prints the same rows the paper's tables report:
methods down the side, datasets across the top, one metric per table.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["format_table", "format_series", "rows_to_markdown"]


def format_table(values: Mapping[str, Mapping[str, float]],
                 row_order: Sequence[str] | None = None,
                 column_order: Sequence[str] | None = None, *,
                 title: str = "", precision: int = 3,
                 add_average: bool = True) -> str:
    """Render a nested mapping ``{row: {column: value}}`` as an aligned text table.

    ``add_average`` appends an "Average" column (mean over the row's columns),
    matching the Average column of Tables III and IV.
    """
    rows = list(row_order) if row_order is not None else sorted(values)
    columns: list[str] = list(column_order) if column_order is not None else sorted(
        {column for row in values.values() for column in row})
    header = ["Method", *columns]
    if add_average:
        header.append("Average")
    lines: list[list[str]] = [header]
    for row in rows:
        cells = [row]
        numeric = []
        for column in columns:
            value = values.get(row, {}).get(column)
            if value is None:
                cells.append("-")
            else:
                cells.append(f"{value:.{precision}f}")
                numeric.append(value)
        if add_average:
            cells.append(f"{np.mean(numeric):.{precision}f}" if numeric else "-")
        lines.append(cells)
    widths = [max(len(line[i]) for line in lines) for i in range(len(header))]
    rendered = []
    if title:
        rendered.append(title)
    for index, line in enumerate(lines):
        rendered.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
        if index == 0:
            rendered.append("  ".join("-" * width for width in widths))
    return "\n".join(rendered)


def format_series(series: Mapping[str, Iterable[float]], *, x_label: str = "x",
                  title: str = "", precision: int = 3) -> str:
    """Render named numeric series (e.g. FScore vs λ) as aligned text columns."""
    names = list(series)
    columns = {name: [f"{v:.{precision}f}" for v in values]
               for name, values in series.items()}
    length = max((len(v) for v in columns.values()), default=0)
    header = [x_label, *names]
    lines = [header, ["-" * len(h) for h in header]]
    for index in range(length):
        row = [str(index)]
        for name in names:
            values = columns[name]
            row.append(values[index] if index < len(values) else "-")
        lines.append(row)
    widths = [max(len(line[i]) for line in lines) for i in range(len(header))]
    rendered = [title] if title else []
    for line in lines:
        rendered.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(rendered)


def rows_to_markdown(rows: Sequence[Mapping[str, object]], *,
                     columns: Sequence[str] | None = None) -> str:
    """Render a list of dict rows as a GitHub-flavoured markdown table."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    lines = ["| " + " | ".join(str(c) for c in columns) + " |",
             "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:.3f}")
            else:
                cells.append(str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
