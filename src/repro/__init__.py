"""repro — a reproduction of RHCHME (Hou & Nayak, ICDE 2015).

Robust High-order Co-clustering via a Heterogeneous Manifold Ensemble
simultaneously clusters multiple types of inter-related objects (documents,
terms, concepts, …) using:

* the inter-type co-occurrence structure (a symmetric block factorisation
  ``R ≈ G S Gᵀ``),
* complete intra-type relationships learnt by multiple-subspace learning,
* accurate intra-type relationships fused in a heterogeneous manifold
  ensemble (subspace Laplacian + p-NN Laplacian),
* robustness to sample-wise corruption via an L2,1-regularised sparse error
  matrix.

Quickstart
----------
>>> from repro import RHCHME, make_dataset, clustering_fscore
>>> data = make_dataset("multi5-small", random_state=0)
>>> result = RHCHME(max_iter=20, random_state=0).fit(data)
>>> fscore = clustering_fscore(data.get_type("documents").labels,
...                            result.labels["documents"])

Subpackages
-----------
``repro.core``
    The RHCHME estimator, its objective and update rules.
``repro.baselines``
    SRC, SNMTF, RMC and the DRCC two-way co-clustering variants.
``repro.relational``
    The multi-type relational data model (object types, relations, block
    matrices).
``repro.subspace``
    Multiple-subspace representation learning (SPG solver).
``repro.graph`` / ``repro.manifold``
    p-NN graphs, Laplacians and the manifold ensembles.
``repro.cluster`` / ``repro.metrics``
    k-means, spectral clustering, FScore, NMI, purity, ARI.
``repro.data``
    Synthetic multi-type corpora mirroring the paper's datasets, plus
    union-of-manifold toy data.
``repro.experiments``
    The harness that regenerates every table and figure of the paper.
``repro.serve``
    Model persistence (``RHCHMEModel`` artifacts, monolithic or per-type
    sharded) and out-of-sample batch prediction: ``save``/``load``
    round-trips, the anchor-style out-of-sample extension, the
    ``BatchPredictor`` serving front-end and the ``python -m repro.serve``
    CLI.
``repro.runtime``
    The async multi-worker serving runtime: dynamic micro-batching of
    small requests, a pluggable thread/process/serial worker pool with
    explicit backpressure, and incremental artifact refresh from warm
    starts.
``repro.net``
    The asyncio HTTP front-end over the runtime: versioned wire schema,
    multi-model routing with admission control, drain lifecycle, the
    Prometheus ``/v1/metrics`` exposition, a keep-alive client and a
    closed-loop load generator.
``repro.diagnostics``
    Model health monitoring: fit-time spectral metrics of the ensemble
    Laplacian blocks, serving-time covariate-drift detection against
    training fingerprints, and the threshold/hysteresis/cooldown refresh
    policy that closes the loop into automatic ``refresh()``.
"""

from .core.config import RHCHMEConfig
from .core.rhchme import RHCHME, RHCHMEResult
from .baselines import DRCC, RMC, SNMTF, SRC
from .data.datasets import list_datasets, make_dataset
from .metrics import (
    adjusted_rand_index,
    clustering_fscore,
    normalized_mutual_information,
    purity_score,
)
from .relational import MultiTypeRelationalData, ObjectType, Relation

__version__ = "1.0.0"

__all__ = [
    "DRCC",
    "MultiTypeRelationalData",
    "ObjectType",
    "RHCHME",
    "RHCHMEConfig",
    "RHCHMEResult",
    "RMC",
    "Relation",
    "SNMTF",
    "SRC",
    "adjusted_rand_index",
    "clustering_fscore",
    "list_datasets",
    "make_dataset",
    "normalized_mutual_information",
    "purity_score",
    "__version__",
]
