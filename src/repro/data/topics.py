"""Generative topic model behind the synthetic corpora.

Each true class is a topic with its own multinomial distribution over terms.
Concepts act as the synthetic stand-in for the Wikipedia concepts of the
paper: each concept is a small group of semantically related terms, and each
topic prefers a subset of concepts.  Sampling a document means drawing terms
from its topic's term distribution (with a background-vocabulary component
controlling cluster separability) and activating the concepts associated
with the drawn terms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import (
    check_positive_float,
    check_positive_int,
    check_probability,
    check_random_state,
)
from ..exceptions import DataGenerationError

__all__ = ["TopicModelSpec", "TopicModel"]


@dataclass(frozen=True)
class TopicModelSpec:
    """Specification of the synthetic topic model.

    Parameters
    ----------
    n_classes:
        Number of topics (true document classes).
    n_terms:
        Vocabulary size.
    n_concepts:
        Number of synthetic concepts (groups of related terms).
    terms_per_topic:
        Size of each topic's preferred vocabulary block.
    background_weight:
        Probability mass a document draws from the shared background
        vocabulary instead of its topic block; larger values make the
        clustering task harder (classes overlap more).
    concept_noise:
        Fraction of a document's active concepts drawn at random rather than
        from the topic's preferred concepts — models imperfect Wikipedia
        mapping.
    doc_length_mean:
        Mean number of term occurrences per document (Poisson distributed).
    direct_concept_weight:
        Fraction of a document's concept activations drawn *directly* from
        its topic's preferred concepts (rather than derived from the drawn
        terms).  This models the semantic enrichment of the paper's setup:
        the Wikipedia concept layer carries class signal that is complementary
        to the raw term counts, so multi-type methods that combine the
        document–term, document–concept and term–concept relations have an
        advantage over two-way co-clustering on either feature space alone.
    concept_background_weight:
        Probability mass of the direct concept draws that falls on concepts
        outside the topic's preferred block (the concept-layer analogue of
        ``background_weight``).
    topic_overlap:
        Fraction of each topic's term block shared with its paired topic
        (topics 2k and 2k+1 form a pair).  Paired topics use overlapping
        vocabulary — mimicking confusable newsgroups such as rec.autos vs
        rec.motorcycles — so the term space alone cannot fully separate them,
        while their (distinct) concept blocks can.  This is what gives the
        multi-type methods their edge over two-way co-clustering, as in the
        paper's corpora.
    """

    n_classes: int
    n_terms: int
    n_concepts: int
    terms_per_topic: int = 40
    background_weight: float = 0.35
    concept_noise: float = 0.1
    doc_length_mean: float = 80.0
    direct_concept_weight: float = 0.5
    concept_background_weight: float = 0.2
    topic_overlap: float = 0.0

    def __post_init__(self) -> None:
        check_positive_int(self.n_classes, name="n_classes")
        check_positive_int(self.n_terms, name="n_terms")
        check_positive_int(self.n_concepts, name="n_concepts")
        check_positive_int(self.terms_per_topic, name="terms_per_topic")
        check_probability(self.background_weight, name="background_weight")
        check_probability(self.concept_noise, name="concept_noise")
        check_probability(self.direct_concept_weight, name="direct_concept_weight")
        check_probability(self.concept_background_weight,
                          name="concept_background_weight")
        check_probability(self.topic_overlap, name="topic_overlap")
        check_positive_float(self.doc_length_mean, name="doc_length_mean")
        if self.terms_per_topic * self.n_classes > self.n_terms:
            raise DataGenerationError(
                "terms_per_topic * n_classes exceeds the vocabulary size; "
                f"got {self.terms_per_topic} * {self.n_classes} > {self.n_terms}")
        if self.n_concepts < self.n_classes:
            raise DataGenerationError(
                f"need at least one concept per class, got {self.n_concepts} concepts "
                f"for {self.n_classes} classes")


class TopicModel:
    """Samplable synthetic topic model.

    Parameters
    ----------
    spec:
        The :class:`TopicModelSpec` describing the model dimensions.
    random_state:
        Seed controlling topic construction (term blocks, concept membership).
    """

    def __init__(self, spec: TopicModelSpec, random_state=None) -> None:
        self.spec = spec
        rng = check_random_state(random_state)
        self._build(rng)

    def _build(self, rng: np.random.Generator) -> None:
        spec = self.spec
        permutation = rng.permutation(spec.n_terms)
        self.topic_term_blocks: list[np.ndarray] = []
        for topic in range(spec.n_classes):
            start = topic * spec.terms_per_topic
            block = permutation[start:start + spec.terms_per_topic]
            self.topic_term_blocks.append(np.sort(block))
        if spec.topic_overlap > 0.0:
            # Paired topics (2k, 2k+1) share a fraction of their vocabulary;
            # the pairing mimics confusable classes (e.g. two vehicle-related
            # newsgroups) that the term space alone struggles to separate
            # while their distinct concept blocks still can.
            n_shared = int(round(spec.topic_overlap * spec.terms_per_topic))
            for first in range(0, spec.n_classes - 1, 2):
                second = first + 1
                if n_shared == 0:
                    continue
                shared = self.topic_term_blocks[first][:n_shared]
                own = self.topic_term_blocks[second][n_shared:]
                self.topic_term_blocks[second] = np.sort(
                    np.concatenate([shared, own]))
        used = np.concatenate(self.topic_term_blocks)
        self.background_terms = np.setdiff1d(np.arange(spec.n_terms), used)
        if self.background_terms.size == 0:
            # Degenerate but legal spec: every term belongs to a topic block.
            self.background_terms = np.arange(spec.n_terms)

        # Topic-specific term distributions: a Zipf-like profile over the
        # topic block mixed with a flat background component.
        self.topic_term_probs = np.zeros((spec.n_classes, spec.n_terms))
        for topic, block in enumerate(self.topic_term_blocks):
            ranks = np.arange(1, block.size + 1, dtype=np.float64)
            zipf = 1.0 / ranks
            zipf /= zipf.sum()
            self.topic_term_probs[topic, block] = (1.0 - spec.background_weight) * zipf
            background = np.full(self.background_terms.size,
                                 spec.background_weight / self.background_terms.size)
            self.topic_term_probs[topic, self.background_terms] += background
            self.topic_term_probs[topic] /= self.topic_term_probs[topic].sum()

        # Concepts: each concept owns a contiguous group of terms; topics
        # prefer the concepts that overlap their term block.
        self.concept_terms: list[np.ndarray] = []
        concept_assignment = rng.integers(0, spec.n_concepts, size=spec.n_terms)
        for concept in range(spec.n_concepts):
            members = np.nonzero(concept_assignment == concept)[0]
            if members.size == 0:
                members = rng.choice(spec.n_terms, size=1, replace=False)
            self.concept_terms.append(members)
        self.term_to_concept = concept_assignment

        self.topic_concept_probs = np.zeros((spec.n_classes, spec.n_concepts))
        for topic in range(spec.n_classes):
            weights = np.zeros(spec.n_concepts)
            for concept, members in enumerate(self.concept_terms):
                weights[concept] = float(
                    np.sum(self.topic_term_probs[topic, members]))
            weights = (1.0 - spec.concept_noise) * weights / max(weights.sum(), 1e-12)
            weights += spec.concept_noise / spec.n_concepts
            self.topic_concept_probs[topic] = weights / weights.sum()

        # Direct topic → concept preferences, independent of the term layer:
        # each topic owns a (roughly disjoint) block of concepts.  Documents
        # draw a fraction of their concept activations from this distribution,
        # which is the complementary class signal the Wikipedia enrichment of
        # the paper's setup provides.
        concept_permutation = rng.permutation(spec.n_concepts)
        concepts_per_topic = max(spec.n_concepts // spec.n_classes, 1)
        self.topic_concept_blocks: list[np.ndarray] = []
        self.direct_concept_probs = np.zeros((spec.n_classes, spec.n_concepts))
        for topic in range(spec.n_classes):
            start = (topic * concepts_per_topic) % spec.n_concepts
            block = concept_permutation[start:start + concepts_per_topic]
            if block.size == 0:
                block = concept_permutation[:1]
            self.topic_concept_blocks.append(np.sort(block))
            probs = np.full(spec.n_concepts,
                            spec.concept_background_weight / spec.n_concepts)
            probs[block] += (1.0 - spec.concept_background_weight) / block.size
            self.direct_concept_probs[topic] = probs / probs.sum()

    # ----------------------------------------------------------- sampling API
    def sample_document(self, topic: int,
                        rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """Sample one document's term counts and concept counts for a topic."""
        spec = self.spec
        if not 0 <= topic < spec.n_classes:
            raise DataGenerationError(
                f"topic index {topic} out of range [0, {spec.n_classes})")
        length = max(int(rng.poisson(spec.doc_length_mean)), 5)
        term_counts = rng.multinomial(length, self.topic_term_probs[topic]).astype(
            np.float64)
        # Concepts activated by the document: partly the concepts of the drawn
        # terms (the Wikipedia mapping route), partly direct draws from the
        # topic's preferred concepts (the complementary semantic signal), plus
        # a small random component modelling mapping noise.
        concept_counts = np.zeros(spec.n_concepts)
        drawn_terms = np.nonzero(term_counts > 0)[0]
        for term in drawn_terms:
            concept_counts[self.term_to_concept[term]] += term_counts[term]
        if spec.direct_concept_weight > 0.0:
            mapped_total = max(int(concept_counts.sum()), 1)
            n_direct = max(int(round(spec.direct_concept_weight * mapped_total)), 1)
            direct = rng.multinomial(n_direct, self.direct_concept_probs[topic])
            concept_counts = ((1.0 - spec.direct_concept_weight) * concept_counts
                              + direct.astype(np.float64))
        n_noise = int(round(spec.concept_noise * max(drawn_terms.size, 1)))
        if n_noise > 0:
            noise_concepts = rng.integers(0, spec.n_concepts, size=n_noise)
            np.add.at(concept_counts, noise_concepts, 1.0)
        return term_counts, concept_counts
