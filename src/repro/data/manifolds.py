"""Union-of-manifolds toy data (the Figure 1 setting of the paper).

Figure 1 motivates multiple-subspace learning with two intersecting
circle-shaped manifolds plus background noise: points near the intersection
share the same Euclidean nearest neighbours even though they belong to
different manifolds, and far-away points on the same manifold are missed by
a small-p nearest-neighbour graph.  These generators create that data (and
linear-subspace analogues) for the Figure 1 reproduction, the spectral
clustering diagnostics and the property tests.
"""

from __future__ import annotations

import numpy as np

from .._validation import (
    check_positive_float,
    check_positive_int,
    check_probability,
    check_random_state,
)

__all__ = [
    "sample_intersecting_circles",
    "sample_union_of_lines",
    "sample_union_of_rays",
    "sample_union_of_subspaces",
]


def sample_intersecting_circles(n_per_circle: int = 100, *, radius: float = 1.0,
                                separation: float = 1.0, noise: float = 0.02,
                                outlier_fraction: float = 0.0,
                                random_state=None) -> tuple[np.ndarray, np.ndarray]:
    """Two overlapping circles in R² (the Figure 1 illustration).

    Parameters
    ----------
    n_per_circle:
        Points sampled per circle.
    radius:
        Circle radius.
    separation:
        Distance between the two circle centres; with ``separation < 2·radius``
        the circles intersect, which is the interesting regime.
    noise:
        Standard deviation of isotropic Gaussian jitter.
    outlier_fraction:
        Fraction of additional uniform background noise points (label -1).

    Returns
    -------
    (points, labels):
        ``points`` is ``(n, 2)``; ``labels`` is 0/1 per circle and -1 for
        outliers.
    """
    n_per_circle = check_positive_int(n_per_circle, name="n_per_circle")
    radius = check_positive_float(radius, name="radius")
    noise = check_positive_float(noise, name="noise", minimum=0.0, inclusive=True)
    outlier_fraction = check_probability(outlier_fraction, name="outlier_fraction")
    rng = check_random_state(random_state)

    centers = np.array([[-separation / 2.0, 0.0], [separation / 2.0, 0.0]])
    points, labels = [], []
    for circle, center in enumerate(centers):
        angles = rng.uniform(0.0, 2.0 * np.pi, size=n_per_circle)
        ring = center + radius * np.column_stack([np.cos(angles), np.sin(angles)])
        ring += rng.normal(0.0, noise, size=ring.shape) if noise > 0 else 0.0
        points.append(ring)
        labels.append(np.full(n_per_circle, circle, dtype=np.int64))
    n_outliers = int(round(outlier_fraction * 2 * n_per_circle))
    if n_outliers > 0:
        span = separation / 2.0 + 2.0 * radius
        background = rng.uniform(-span, span, size=(n_outliers, 2))
        points.append(background)
        labels.append(np.full(n_outliers, -1, dtype=np.int64))
    return np.vstack(points), np.concatenate(labels)


def sample_union_of_lines(n_per_line: int = 50, n_lines: int = 2, *,
                          ambient_dim: int = 3, noise: float = 0.01,
                          random_state=None) -> tuple[np.ndarray, np.ndarray]:
    """Points on a union of 1-D lines through the origin in ``ambient_dim`` dimensions.

    The canonical linear-subspace-clustering toy problem: the reconstruction-
    based subspace affinity should connect points on the same line regardless
    of how far apart they are.
    """
    n_per_line = check_positive_int(n_per_line, name="n_per_line")
    n_lines = check_positive_int(n_lines, name="n_lines")
    ambient_dim = check_positive_int(ambient_dim, name="ambient_dim")
    rng = check_random_state(random_state)
    points, labels = [], []
    for line in range(n_lines):
        direction = rng.normal(size=ambient_dim)
        direction /= np.linalg.norm(direction)
        coefficients = rng.uniform(-2.0, 2.0, size=n_per_line)
        samples = np.outer(coefficients, direction)
        if noise > 0:
            samples += rng.normal(0.0, noise, size=samples.shape)
        points.append(samples)
        labels.append(np.full(n_per_line, line, dtype=np.int64))
    return np.vstack(points), np.concatenate(labels)


def sample_union_of_rays(n_per_ray: int = 50, n_rays: int = 2, *,
                         ambient_dim: int = 3, noise: float = 0.01,
                         coefficient_range: tuple[float, float] = (0.2, 2.0),
                         random_state=None) -> tuple[np.ndarray, np.ndarray]:
    """Points on a union of rays (half-lines) from the origin.

    The non-negative self-representation of Eq. 9 can only combine points
    with non-negative coefficients, so anti-parallel points on a full line
    cannot reconstruct each other.  Rays are the natural non-negative
    analogue of the line benchmark: every point on a ray is a non-negative
    multiple of every other point on the same ray.
    """
    n_per_ray = check_positive_int(n_per_ray, name="n_per_ray")
    n_rays = check_positive_int(n_rays, name="n_rays")
    ambient_dim = check_positive_int(ambient_dim, name="ambient_dim")
    low, high = coefficient_range
    if not (0 < low < high):
        raise ValueError(
            f"coefficient_range must satisfy 0 < low < high, got {coefficient_range}")
    rng = check_random_state(random_state)
    points, labels = [], []
    for ray in range(n_rays):
        direction = rng.normal(size=ambient_dim)
        direction /= np.linalg.norm(direction)
        coefficients = rng.uniform(low, high, size=n_per_ray)
        samples = np.outer(coefficients, direction)
        if noise > 0:
            samples += rng.normal(0.0, noise, size=samples.shape)
        points.append(samples)
        labels.append(np.full(n_per_ray, ray, dtype=np.int64))
    return np.vstack(points), np.concatenate(labels)


def sample_union_of_subspaces(n_per_subspace: int = 50, n_subspaces: int = 3, *,
                              subspace_dim: int = 2, ambient_dim: int = 10,
                              noise: float = 0.01,
                              random_state=None) -> tuple[np.ndarray, np.ndarray]:
    """Points drawn from a union of random low-dimensional linear subspaces.

    Each subspace has an orthonormal basis drawn from the Haar distribution
    (QR of a Gaussian matrix); points are Gaussian in subspace coordinates
    plus small ambient noise.
    """
    n_per_subspace = check_positive_int(n_per_subspace, name="n_per_subspace")
    n_subspaces = check_positive_int(n_subspaces, name="n_subspaces")
    subspace_dim = check_positive_int(subspace_dim, name="subspace_dim")
    ambient_dim = check_positive_int(ambient_dim, name="ambient_dim")
    if subspace_dim >= ambient_dim:
        raise ValueError(
            f"subspace_dim ({subspace_dim}) must be smaller than ambient_dim "
            f"({ambient_dim})")
    rng = check_random_state(random_state)
    points, labels = [], []
    for subspace in range(n_subspaces):
        basis, _ = np.linalg.qr(rng.normal(size=(ambient_dim, subspace_dim)))
        coordinates = rng.normal(0.0, 1.0, size=(n_per_subspace, subspace_dim))
        samples = coordinates @ basis.T
        if noise > 0:
            samples += rng.normal(0.0, noise, size=samples.shape)
        points.append(samples)
        labels.append(np.full(n_per_subspace, subspace, dtype=np.int64))
    return np.vstack(points), np.concatenate(labels)
