"""Sampling of synthetic multi-type corpora (documents × terms × concepts).

Produces everything the HOCC methods consume:

* per-type feature matrices (documents over terms, terms over documents,
  concepts over documents);
* the three co-occurrence relations of the paper's experimental setup —
  document-term (tf-idf), document-concept (normalised term-weighted
  activations) and term-concept (pair co-occurrence counts);
* ground-truth labels for documents, terms and concepts (a term/concept
  belongs to the class whose topic uses it most).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_random_state, check_sizes
from ..exceptions import DataGenerationError
from ..linalg.normalize import tfidf_transform
from .topics import TopicModel

__all__ = ["CorpusSample", "sample_corpus"]


@dataclass
class CorpusSample:
    """One sampled synthetic corpus.

    Attributes
    ----------
    document_term_counts:
        Raw ``(n_docs, n_terms)`` term counts.
    document_term:
        tf-idf weighted document-term relation.
    document_concept:
        ``(n_docs, n_concepts)`` normalised concept activation relation.
    term_concept:
        ``(n_terms, n_concepts)`` term/concept document co-occurrence counts.
    document_labels, term_labels, concept_labels:
        Ground-truth class of each object (terms/concepts inherit the class
        that uses them most).
    """

    document_term_counts: np.ndarray
    document_term: np.ndarray
    document_concept: np.ndarray
    term_concept: np.ndarray
    document_labels: np.ndarray
    term_labels: np.ndarray
    concept_labels: np.ndarray

    @property
    def n_documents(self) -> int:
        """Number of sampled documents."""
        return self.document_term.shape[0]

    @property
    def n_terms(self) -> int:
        """Vocabulary size."""
        return self.document_term.shape[1]

    @property
    def n_concepts(self) -> int:
        """Number of concepts."""
        return self.document_concept.shape[1]


def sample_corpus(model: TopicModel, class_sizes: list[int] | tuple[int, ...],
                  *, random_state=None) -> CorpusSample:
    """Sample a corpus with the given number of documents per class.

    Parameters
    ----------
    model:
        The generative :class:`~repro.data.topics.TopicModel`.
    class_sizes:
        Documents per class; its length must equal the model's ``n_classes``.
    random_state:
        Seed for the sampling.
    """
    class_sizes = check_sizes(class_sizes, name="class_sizes")
    spec = model.spec
    if len(class_sizes) != spec.n_classes:
        raise DataGenerationError(
            f"class_sizes has {len(class_sizes)} entries but the topic model "
            f"defines {spec.n_classes} classes")
    rng = check_random_state(random_state)

    n_documents = sum(class_sizes)
    term_counts = np.zeros((n_documents, spec.n_terms))
    concept_counts = np.zeros((n_documents, spec.n_concepts))
    document_labels = np.zeros(n_documents, dtype=np.int64)

    row = 0
    for topic, size in enumerate(class_sizes):
        for _ in range(size):
            doc_terms, doc_concepts = model.sample_document(topic, rng)
            term_counts[row] = doc_terms
            concept_counts[row] = doc_concepts
            document_labels[row] = topic
            row += 1

    # Shuffle document order so class blocks are not contiguous.
    permutation = rng.permutation(n_documents)
    term_counts = term_counts[permutation]
    concept_counts = concept_counts[permutation]
    document_labels = document_labels[permutation]

    document_term = tfidf_transform(term_counts)

    # Document-concept relation: concept activations normalised per document
    # (the paper normalises by tf-idf of mapped terms and semantic relatedness;
    # the per-document normalisation plays the same role of keeping documents
    # comparable regardless of length).
    concept_row_sums = concept_counts.sum(axis=1, keepdims=True)
    concept_row_sums = np.where(concept_row_sums > 0, concept_row_sums, 1.0)
    document_concept = concept_counts / concept_row_sums

    # Term-concept relation: number of documents in which a term and a concept
    # co-occur.
    term_presence = (term_counts > 0).astype(np.float64)
    concept_presence = (concept_counts > 0).astype(np.float64)
    term_concept = term_presence.T @ concept_presence

    # Ground truth for terms/concepts: the class whose documents use them most.
    class_term_usage = np.zeros((spec.n_classes, spec.n_terms))
    class_concept_usage = np.zeros((spec.n_classes, spec.n_concepts))
    for topic in range(spec.n_classes):
        members = document_labels == topic
        if np.any(members):
            class_term_usage[topic] = term_counts[members].sum(axis=0)
            class_concept_usage[topic] = concept_counts[members].sum(axis=0)
    term_labels = np.argmax(class_term_usage, axis=0).astype(np.int64)
    concept_labels = np.argmax(class_concept_usage, axis=0).astype(np.int64)

    return CorpusSample(document_term_counts=term_counts,
                        document_term=document_term,
                        document_concept=document_concept,
                        term_concept=term_concept,
                        document_labels=document_labels,
                        term_labels=term_labels,
                        concept_labels=concept_labels)
