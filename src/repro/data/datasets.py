"""Dataset presets mirroring Table II of the paper (scaled for laptop runs).

The paper evaluates on four text collections enriched with Wikipedia
concepts: Multi5 (D1), Multi10 (D2), R-Min20Max200 (D3) and R-Top10 (D4).
They differ in the number of classes and, importantly, in class balance —
Multi5/Multi10 have equal-size classes, R-Min20Max200 has many classes of
varying small sizes and R-Top10 has a few large, strongly imbalanced classes.

The synthetic presets below keep those class-structure profiles (and the
relative ordering of dataset sizes) while scaling the object counts so that
the full benchmark suite runs in minutes on a laptop.  Each preset also has a
``*-small`` variant for fast unit tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._validation import check_random_state
from ..exceptions import DataGenerationError
from ..relational.dataset import MultiTypeRelationalData
from ..relational.types import ObjectType, Relation
from .corpus import CorpusSample, sample_corpus
from .noise import add_gaussian_noise, corrupt_rows
from .topics import TopicModel, TopicModelSpec

__all__ = [
    "DatasetSpec",
    "DATASET_PRESETS",
    "list_datasets",
    "make_dataset",
    "make_multi_type_dataset",
    "dataset_characteristics",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Specification of one synthetic multi-type dataset preset.

    Parameters
    ----------
    name:
        Preset identifier.
    paper_name:
        Name of the paper dataset this preset mirrors (Table II).
    class_sizes:
        Documents per class; length defines the number of classes and the
        values define the balance profile.
    n_terms, n_concepts:
        Vocabulary and concept-inventory sizes.
    terms_per_topic:
        Topic-block size of the generative model.
    background_weight:
        Vocabulary overlap between classes (difficulty knob).
    noise_scale:
        Gaussian feature-noise level applied to the document-term relation.
    corruption_fraction:
        Fraction of document rows replaced by gross corruption (exercises the
        sparse error matrix).
    doc_length_mean:
        Mean document length of the generative model.
    """

    name: str
    paper_name: str
    class_sizes: tuple[int, ...]
    n_terms: int
    n_concepts: int
    terms_per_topic: int = 25
    background_weight: float = 0.35
    concept_noise: float = 0.1
    noise_scale: float = 0.05
    corruption_fraction: float = 0.0
    doc_length_mean: float = 80.0
    direct_concept_weight: float = 0.5
    concept_background_weight: float = 0.2
    topic_overlap: float = 0.0

    @property
    def n_classes(self) -> int:
        """Number of document classes."""
        return len(self.class_sizes)

    @property
    def n_documents(self) -> int:
        """Total number of documents."""
        return int(sum(self.class_sizes))


def _balanced(n_classes: int, per_class: int) -> tuple[int, ...]:
    return tuple([per_class] * n_classes)


def _graded(sizes: Sequence[int]) -> tuple[int, ...]:
    return tuple(int(s) for s in sizes)


# Presets mirror the class-balance structure of Table II at laptop scale:
#   D1 Multi5          5 equal classes
#   D2 Multi10         10 equal classes
#   D3 R-Min20Max200   many classes of varying (small) sizes
#   D4 R-Top10         10 classes, strongly imbalanced, largest dataset
# Difficulty comes from three calibrated ingredients: vocabulary overlap
# between paired topics (confusable classes), a shared background vocabulary,
# and moderate feature noise.  The concept layer carries complementary class
# signal (direct_concept_weight), as the Wikipedia enrichment does in the
# paper, which is what gives multi-type methods an edge over two-way
# co-clustering on a single feature space.
DATASET_PRESETS: dict[str, DatasetSpec] = {
    "multi5": DatasetSpec(
        name="multi5", paper_name="Multi5 (D1)",
        class_sizes=_balanced(5, 40), n_terms=400, n_concepts=120,
        terms_per_topic=36, background_weight=0.35, concept_noise=0.25,
        direct_concept_weight=0.35, concept_background_weight=0.55,
        topic_overlap=0.55, noise_scale=0.15, doc_length_mean=55.0),
    "multi10": DatasetSpec(
        name="multi10", paper_name="Multi10 (D2)",
        class_sizes=_balanced(10, 20), n_terms=500, n_concepts=150,
        terms_per_topic=28, background_weight=0.35, concept_noise=0.25,
        direct_concept_weight=0.35, concept_background_weight=0.55,
        topic_overlap=0.6, noise_scale=0.15, doc_length_mean=50.0),
    "r-min20max200": DatasetSpec(
        name="r-min20max200", paper_name="R-Min20Max200 (D3)",
        class_sizes=_graded([8, 10, 12, 14, 16, 18, 20, 24, 28, 32, 36, 42]),
        n_terms=600, n_concepts=180, terms_per_topic=28,
        background_weight=0.40, concept_noise=0.25,
        direct_concept_weight=0.35, concept_background_weight=0.55,
        topic_overlap=0.55, noise_scale=0.15, doc_length_mean=50.0),
    "r-top10": DatasetSpec(
        name="r-top10", paper_name="R-Top10 (D4)",
        class_sizes=_graded([90, 70, 55, 40, 30, 22, 16, 12, 8, 7]),
        n_terms=700, n_concepts=200, terms_per_topic=36,
        background_weight=0.40, concept_noise=0.25,
        direct_concept_weight=0.35, concept_background_weight=0.55,
        topic_overlap=0.55, noise_scale=0.15, doc_length_mean=50.0),
    # Fast variants for unit tests, examples and smoke benchmarks.  multi5-small
    # is kept easy (clearly separated classes) so that unit tests asserting
    # near-perfect recovery stay meaningful; the other small variants use the
    # calibrated difficulty of their full-size counterparts.
    "multi5-small": DatasetSpec(
        name="multi5-small", paper_name="Multi5 (D1, reduced)",
        class_sizes=_balanced(5, 12), n_terms=150, n_concepts=50,
        terms_per_topic=20, background_weight=0.25, doc_length_mean=60.0,
        direct_concept_weight=0.4, concept_background_weight=0.3),
    "multi10-small": DatasetSpec(
        name="multi10-small", paper_name="Multi10 (D2, reduced)",
        class_sizes=_balanced(10, 8), n_terms=220, n_concepts=70,
        terms_per_topic=18, background_weight=0.35, concept_noise=0.25,
        direct_concept_weight=0.35, concept_background_weight=0.55,
        topic_overlap=0.6, noise_scale=0.15, doc_length_mean=45.0),
    "r-min20max200-small": DatasetSpec(
        name="r-min20max200-small", paper_name="R-Min20Max200 (D3, reduced)",
        class_sizes=_graded([6, 8, 10, 12, 14, 16]), n_terms=250, n_concepts=80,
        terms_per_topic=22, background_weight=0.35, concept_noise=0.25,
        direct_concept_weight=0.35, concept_background_weight=0.55,
        topic_overlap=0.5, noise_scale=0.15, doc_length_mean=50.0),
    "r-top10-small": DatasetSpec(
        name="r-top10-small", paper_name="R-Top10 (D4, reduced)",
        class_sizes=_graded([30, 22, 16, 12, 8, 6]), n_terms=280, n_concepts=90,
        terms_per_topic=25, background_weight=0.35, concept_noise=0.25,
        direct_concept_weight=0.35, concept_background_weight=0.55,
        topic_overlap=0.5, noise_scale=0.15, doc_length_mean=50.0),
    "corrupted-multi5": DatasetSpec(
        name="corrupted-multi5", paper_name="Multi5 (D1) + sample-wise corruption",
        class_sizes=_balanced(5, 30), n_terms=350, n_concepts=100,
        terms_per_topic=35, background_weight=0.30,
        direct_concept_weight=0.4, concept_background_weight=0.3,
        corruption_fraction=0.1, noise_scale=0.1),
}

# Paper dataset aliases (Table II ids).
_ALIASES = {
    "d1": "multi5",
    "d2": "multi10",
    "d3": "r-min20max200",
    "d4": "r-top10",
}


def list_datasets() -> list[str]:
    """Names of all registered dataset presets."""
    return sorted(DATASET_PRESETS)


def _resolve(name: str) -> DatasetSpec:
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return DATASET_PRESETS[key]
    except KeyError as exc:
        raise DataGenerationError(
            f"unknown dataset {name!r}; available: {list_datasets()}") from exc


def make_multi_type_dataset(sample: CorpusSample, *,
                            document_clusters: int,
                            term_clusters: int | None = None,
                            concept_clusters: int | None = None) -> MultiTypeRelationalData:
    """Wrap a sampled corpus into a :class:`MultiTypeRelationalData`.

    The paper sets the number of document clusters to the true class count
    and lets term/concept cluster numbers vary between m/10 and m/100 of the
    respective object counts; the defaults here use the class count for all
    types, which falls inside that range at the synthetic scale.
    """
    if term_clusters is None:
        term_clusters = document_clusters
    if concept_clusters is None:
        concept_clusters = document_clusters

    # Intra-type features combine every observed view of an object (documents
    # are described by their terms and concepts, terms by the documents and
    # concepts they co-occur with, …), mirroring how the paper computes
    # object similarity from the full object representation.
    document_features = np.hstack([sample.document_term, sample.document_concept])
    term_features = np.hstack([sample.document_term.T, sample.term_concept])
    concept_features = np.hstack([sample.document_concept.T, sample.term_concept.T])

    documents = ObjectType("documents", n_objects=sample.n_documents,
                           n_clusters=document_clusters,
                           features=document_features,
                           labels=sample.document_labels)
    terms = ObjectType("terms", n_objects=sample.n_terms,
                       n_clusters=term_clusters,
                       features=term_features,
                       labels=sample.term_labels)
    concepts = ObjectType("concepts", n_objects=sample.n_concepts,
                          n_clusters=concept_clusters,
                          features=concept_features,
                          labels=sample.concept_labels)
    relations = [
        Relation("documents", "terms", sample.document_term),
        Relation("documents", "concepts", sample.document_concept),
        Relation("terms", "concepts", sample.term_concept),
    ]
    return MultiTypeRelationalData([documents, terms, concepts], relations)


def make_dataset(name: str = "multi5", *, random_state=None,
                 corruption_fraction: float | None = None,
                 noise_scale: float | None = None) -> MultiTypeRelationalData:
    """Generate one of the registered dataset presets.

    Parameters
    ----------
    name:
        Preset name (``"multi5"``, ``"multi10"``, ``"r-min20max200"``,
        ``"r-top10"``, their ``*-small`` variants, ``"corrupted-multi5"``) or
        a paper alias (``"D1"``–``"D4"``).
    random_state:
        Seed controlling both topic-model construction and corpus sampling.
    corruption_fraction, noise_scale:
        Optional overrides of the preset's noise configuration.
    """
    spec = _resolve(name)
    rng = check_random_state(random_state)
    if corruption_fraction is None:
        corruption_fraction = spec.corruption_fraction
    if noise_scale is None:
        noise_scale = spec.noise_scale

    model_spec = TopicModelSpec(n_classes=spec.n_classes, n_terms=spec.n_terms,
                                n_concepts=spec.n_concepts,
                                terms_per_topic=spec.terms_per_topic,
                                background_weight=spec.background_weight,
                                concept_noise=spec.concept_noise,
                                doc_length_mean=spec.doc_length_mean,
                                direct_concept_weight=spec.direct_concept_weight,
                                concept_background_weight=spec.concept_background_weight,
                                topic_overlap=spec.topic_overlap)
    model = TopicModel(model_spec, random_state=int(rng.integers(0, 2**31 - 1)))
    sample = sample_corpus(model, list(spec.class_sizes),
                           random_state=int(rng.integers(0, 2**31 - 1)))

    if noise_scale and noise_scale > 0:
        sample.document_term = add_gaussian_noise(
            sample.document_term, scale=noise_scale,
            random_state=int(rng.integers(0, 2**31 - 1)))
    if corruption_fraction and corruption_fraction > 0:
        corrupted, _ = corrupt_rows(sample.document_term,
                                    fraction=corruption_fraction,
                                    random_state=int(rng.integers(0, 2**31 - 1)))
        sample.document_term = corrupted

    return make_multi_type_dataset(sample, document_clusters=spec.n_classes)


def dataset_characteristics(names: Sequence[str] | None = None, *,
                            random_state: int = 0) -> list[dict[str, object]]:
    """Table II analogue: per-dataset class/object counts of the presets.

    Returns one row per dataset with the preset's configured sizes; used by
    the Table II benchmark and EXPERIMENTS.md.
    """
    if names is None:
        names = ["multi5", "multi10", "r-min20max200", "r-top10"]
    rows = []
    for name in names:
        spec = _resolve(name)
        rows.append({
            "dataset": spec.name,
            "paper_dataset": spec.paper_name,
            "classes": spec.n_classes,
            "documents": spec.n_documents,
            "terms": spec.n_terms,
            "concepts": spec.n_concepts,
            "balanced": len(set(spec.class_sizes)) == 1,
        })
    return rows
