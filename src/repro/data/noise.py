"""Noise and corruption injection for robustness experiments.

The sparse error matrix of RHCHME targets *sample-wise* corruption — a
handful of objects whose relational profiles are grossly wrong.  These
helpers create exactly that situation on synthetic data so the ablation
benchmarks can compare RHCHME with and without the error matrix, and the
methods against each other under increasing corruption.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array, check_probability, check_random_state

__all__ = ["add_gaussian_noise", "corrupt_rows", "shuffle_fraction_of_labels"]


def add_gaussian_noise(matrix: np.ndarray, *, scale: float = 0.1,
                       random_state=None, clip_nonnegative: bool = True) -> np.ndarray:
    """Add i.i.d. Gaussian noise with standard deviation ``scale · std(matrix)``.

    ``clip_nonnegative=True`` keeps the result usable as a co-occurrence
    matrix (negative entries are clipped to zero).
    """
    matrix = as_float_array(matrix, name="matrix", ndim=2)
    rng = check_random_state(random_state)
    sigma = scale * float(matrix.std())
    noisy = matrix + rng.normal(0.0, max(sigma, 1e-12), size=matrix.shape)
    if clip_nonnegative:
        noisy = np.maximum(noisy, 0.0)
    return noisy


def corrupt_rows(matrix: np.ndarray, *, fraction: float = 0.1,
                 magnitude: float = 3.0, random_state=None) -> tuple[np.ndarray, np.ndarray]:
    """Replace a fraction of rows with large random garbage (sample-wise corruption).

    Returns the corrupted matrix and the indices of the corrupted rows.  Each
    corrupted row is resampled uniformly in ``[0, magnitude · max(matrix)]``,
    which is the gross, sample-wise corruption the L2,1 error matrix of
    RHCHME is designed to absorb.
    """
    matrix = as_float_array(matrix, name="matrix", ndim=2)
    fraction = check_probability(fraction, name="fraction")
    rng = check_random_state(random_state)
    n_rows = matrix.shape[0]
    n_corrupt = int(round(fraction * n_rows))
    corrupted = matrix.copy()
    if n_corrupt == 0:
        return corrupted, np.array([], dtype=np.int64)
    rows = rng.choice(n_rows, size=n_corrupt, replace=False)
    ceiling = magnitude * max(float(matrix.max()), 1e-12)
    corrupted[rows] = rng.uniform(0.0, ceiling, size=(n_corrupt, matrix.shape[1]))
    return corrupted, np.sort(rows).astype(np.int64)


def shuffle_fraction_of_labels(labels: np.ndarray, *, fraction: float = 0.1,
                               random_state=None) -> np.ndarray:
    """Randomly permute a fraction of the label entries (label noise).

    Used by metric robustness tests: agreement metrics should degrade
    smoothly as label noise increases.
    """
    labels = np.asarray(labels).copy()
    fraction = check_probability(fraction, name="fraction")
    rng = check_random_state(random_state)
    n_shuffle = int(round(fraction * labels.size))
    if n_shuffle < 2:
        return labels
    indices = rng.choice(labels.size, size=n_shuffle, replace=False)
    shuffled = labels[indices].copy()
    rng.shuffle(shuffled)
    labels[indices] = shuffled
    return labels
