"""Synthetic multi-type relational data generators.

The paper evaluates on subsets of 20Newsgroups and Reuters-21578 enriched
with Wikipedia concepts (Table II).  Those corpora and the Wikipedia mapping
are not available offline, so this package generates *synthetic* multi-type
relational data with the same structure — documents × terms × concepts with
planted topic clusters, tf-idf weighting, class-balance profiles matching the
paper's datasets, and controllable noise/corruption — plus the
intersecting-manifold toy data the paper uses to motivate subspace learning
(Figure 1).

* :mod:`repro.data.topics` — the generative topic model (per-class term and
  concept distributions).
* :mod:`repro.data.corpus` — sampling documents and the three co-occurrence
  matrices (document-term, document-concept, term-concept).
* :mod:`repro.data.noise` — feature noise and sample-wise corruption.
* :mod:`repro.data.datasets` — presets D1–D4 mirroring Table II (scaled) and
  the :func:`make_dataset` registry.
* :mod:`repro.data.manifolds` — union-of-manifolds toy data (circles, lines,
  planes) for the Figure 1 reproduction.
"""

from .topics import TopicModel, TopicModelSpec
from .corpus import CorpusSample, sample_corpus
from .noise import add_gaussian_noise, corrupt_rows, shuffle_fraction_of_labels
from .datasets import (
    DATASET_PRESETS,
    DatasetSpec,
    dataset_characteristics,
    list_datasets,
    make_dataset,
    make_multi_type_dataset,
)
from .manifolds import (
    sample_intersecting_circles,
    sample_union_of_lines,
    sample_union_of_rays,
    sample_union_of_subspaces,
)

__all__ = [
    "CorpusSample",
    "DATASET_PRESETS",
    "DatasetSpec",
    "TopicModel",
    "TopicModelSpec",
    "add_gaussian_noise",
    "corrupt_rows",
    "dataset_characteristics",
    "list_datasets",
    "make_dataset",
    "make_multi_type_dataset",
    "sample_corpus",
    "sample_intersecting_circles",
    "sample_union_of_lines",
    "sample_union_of_rays",
    "sample_union_of_subspaces",
    "shuffle_fraction_of_labels",
]
