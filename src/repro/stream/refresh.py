"""Refresh a fitted model directly from an append-only object log.

Glue between the two halves of the streaming engine: the durable growth
delta (:class:`~repro.stream.log.ObjectLog`) and the delta-scheduled
warm-start refit (:func:`~repro.runtime.refresh.refresh_model`).  One call
materialises the log's current dataset, derives the dirty set from the
appended segments (object growth *and* edge appends — an edge-only append
grows no type but still dirties both endpoints), and runs the refresh.
"""

from __future__ import annotations

from ..core.schedule import DirtySet
from ..exceptions import ValidationError
from .log import ObjectLog

__all__ = ["refresh_from_log"]


def refresh_from_log(model, log: ObjectLog, *, since: int | None = None,
                     dirty="auto", validate: str = "shapes", **overrides):
    """Warm-start refit ``model`` on the log's current dataset.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.serve.RHCHMEModel` (eager or a
        :class:`~repro.stream.view.ModelView`'s ``.model`` facade), or a
        path to load one from.
    log:
        The append-only object log holding base + growth.
    since:
        Log version the model was last fitted at.  When given, the dirty
        set is derived from the log's segments in ``(since, head]`` —
        including edge-only appends, which grow no type but dirty both
        endpoints of their relation.  When ``None``, ``dirty="auto"``
        falls back to the growth the refresh itself observes (model sizes
        vs dataset sizes), which cannot see edge-only appends.
    dirty:
        ``"auto"`` (default) derives the schedule as above; a
        :class:`~repro.core.schedule.DirtySet` is passed through; ``None``
        forces the full warm-start refit.
    validate:
        Defaults to ``"shapes"`` — the log guarantees the append-only
        prefix property by construction, and skipping the element-wise
        prefix check keeps an mmap-opened model's clean types unpaged.
    overrides:
        Config overrides for the refit (e.g. ``max_iter=10``).

    Returns
    -------
    RefreshOutcome
        See :func:`repro.runtime.refresh.refresh_model`.  The outcome's
        telemetry plus ``log.version`` is what a caller should persist to
        pass as ``since`` next time.
    """
    # Imported lazily: repro.runtime pulls in the serving/worker stack,
    # which a log-only writer process never needs.
    from ..runtime.refresh import refresh_model

    if not isinstance(log, ObjectLog):
        raise ValidationError(
            f"log must be an ObjectLog, got {type(log).__name__}")
    data = log.dataset()
    if since is not None and isinstance(dirty, str) and dirty == "auto":
        dirty = log.delta_since(since).dirty_set()
    elif dirty is not None and not isinstance(dirty, (DirtySet, str)):
        raise ValidationError(
            f'dirty must be a DirtySet, "auto" or None, got '
            f"{type(dirty).__name__}")
    return refresh_model(model, data, dirty=dirty, validate=validate,
                         **overrides)
