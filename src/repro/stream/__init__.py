"""Streaming growth engine: grow a deployed corpus without full refits.

Three coordinated layers let a served model track an append-only corpus at
a fraction of the cold-refit cost:

* :class:`ObjectLog` / :class:`GrowthDelta` — a durable append-only log of
  growth (new objects with features, new relation edges) whose
  :meth:`~GrowthDelta.dirty_set` names exactly the types a refresh must
  re-optimise;
* :func:`refresh_from_log` — materialise the log's current dataset and run
  a delta-scheduled warm-start refit (clean types' factor blocks stay
  frozen, clean pairs skip their kernels — see
  :class:`~repro.core.schedule.DirtySet` and
  :func:`repro.runtime.refresh.refresh_model`);
* :func:`open_model_view` / :class:`ModelView` — open a
  ``per-type-mmap`` artifact as a lazily-backed model whose clean types
  are never paged into memory, with promotion of the dirty types' arrays
  as the copy-on-write boundary before the artifact is rewritten.
"""

from ..core.schedule import DirtySet
from .log import GrowthDelta, ObjectLog
from .refresh import refresh_from_log
from .view import ModelView, open_model_view

__all__ = [
    "DirtySet",
    "GrowthDelta",
    "ModelView",
    "ObjectLog",
    "open_model_view",
    "refresh_from_log",
]
