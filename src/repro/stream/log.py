"""Append-only object log: durable growth deltas for streaming refresh.

A deployed corpus grows continuously — new objects arrive with their
features, new co-occurrence edges connect them — but a refresh only needs
the *delta* since the last fit, not a re-materialised copy of everything.
:class:`ObjectLog` is the durable form of that delta: a directory holding
the base dataset's arrays once, plus one small append file per ingest
batch, described by a JSON manifest with a monotone version counter.

* :meth:`ObjectLog.create` snapshots a fitted dataset as the log's base
  (features per type, relation matrices in their native dense/sparse
  representation).
* :meth:`ObjectLog.append_objects` / :meth:`ObjectLog.append_edges` append
  an ingest batch — each append writes one new array file and atomically
  rewrites the manifest, bumping the version.  Base files are never
  touched again.
* :meth:`ObjectLog.dataset` materialises the *current*
  :class:`~repro.relational.dataset.MultiTypeRelationalData` (base +
  every appended segment), caching per-type feature concatenations and
  per-relation assemblies so repeated calls between appends are free and
  a call after an append only loads the new segments.
* :meth:`ObjectLog.delta_since` summarises growth between two versions as
  a :class:`GrowthDelta`, whose :meth:`GrowthDelta.dirty_set` is exactly
  the :class:`~repro.core.schedule.DirtySet` a delta-scheduled refresh
  should run with: types that gained objects plus both endpoints of every
  relation that gained edges.

The log assumes a single writer (appends are not locked against each
other); readers always see a consistent state because array files are
written before the manifest that references them, and the manifest
replace is atomic.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from .._validation import as_float_array
from ..core.schedule import DirtySet
from ..exceptions import ArtifactError, ValidationError
from ..relational.dataset import MultiTypeRelationalData
from ..relational.types import ObjectType, Relation

__all__ = ["ObjectLog", "GrowthDelta"]

_LOG_FORMAT = "rhchme-object-log"

#: Version stamp of the on-disk log layout; bump on incompatible changes.
LOG_SCHEMA_VERSION = 1

_MANIFEST = "manifest.json"


def _safe(label: str) -> str:
    """Filesystem-safe file name component for a type label."""
    return re.sub(r"[^A-Za-z0-9_-]+", "-", label).strip("-") or "type"


def _write_bytes_atomic(path: Path, writer) -> None:
    """Write a file via temp + atomic rename; ``writer(handle)`` fills it."""
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            writer(handle)
        tmp.replace(path)
    finally:
        tmp.unlink(missing_ok=True)


@dataclass(frozen=True)
class GrowthDelta:
    """Summary of the log's growth between two versions.

    Attributes
    ----------
    since, version:
        The half-open version window ``(since, version]`` the delta covers.
    grown:
        Mapping from type name to how many objects it gained in the window
        (every type appears, clean types at zero).
    new_edges:
        Mapping from canonical ``(source, target)`` relation pairs to how
        many edge entries were appended in the window.
    """

    since: int
    version: int
    grown: dict[str, int]
    new_edges: dict[tuple[str, str], int]

    @property
    def is_empty(self) -> bool:
        """Whether nothing was appended in the window."""
        return (not any(self.grown.values())
                and not any(self.new_edges.values()))

    @property
    def n_new_objects(self) -> int:
        """Total objects appended in the window across all types."""
        return int(sum(self.grown.values()))

    def dirty_types(self) -> set[str]:
        """Type names the delta touches (grown, or endpoint of new edges)."""
        names = {name for name, count in self.grown.items() if count > 0}
        for (source, target), count in self.new_edges.items():
            if count > 0:
                names.add(source)
                names.add(target)
        return names

    def dirty_set(self, *, full_sweep_every: int = 0) -> DirtySet:
        """The :class:`DirtySet` a refresh over this delta should use."""
        return DirtySet(types=frozenset(self.dirty_types()),
                        full_sweep_every=full_sweep_every)

    def describe(self) -> dict:
        """JSON-safe summary for logs and telemetry."""
        return {
            "since": self.since,
            "version": self.version,
            "grown": dict(self.grown),
            "new_edges": {f"{s}->{t}": n
                          for (s, t), n in self.new_edges.items()},
            "dirty_types": sorted(self.dirty_types()),
        }


class ObjectLog:
    """Append-only growth log over a multi-type relational dataset.

    Open an existing log with ``ObjectLog(directory)``; start a new one
    from a dataset with :meth:`create`.
    """

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        manifest_path = self.directory / _MANIFEST
        if not manifest_path.exists():
            raise ArtifactError(
                f"no object log at {self.directory} (missing {_MANIFEST}); "
                "start one with ObjectLog.create(directory, data)")
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise ArtifactError(
                f"corrupt object-log manifest {manifest_path}: {exc}") from exc
        if manifest.get("format") != _LOG_FORMAT:
            raise ArtifactError(
                f"{manifest_path} is not an object-log manifest "
                f"(format={manifest.get('format')!r})")
        if manifest.get("log_schema_version") != LOG_SCHEMA_VERSION:
            raise ArtifactError(
                f"unsupported object-log schema version "
                f"{manifest.get('log_schema_version')!r} (this library "
                f"reads version {LOG_SCHEMA_VERSION})")
        self._manifest = manifest
        # Incremental caches: concatenated features per type, assembled
        # relation matrices, and the last materialised dataset — each keyed
        # by the number of segments (or version) it was built from.
        self._feature_parts: dict[str, list[np.ndarray]] = {}
        self._feature_scanned: dict[str, int] = {}
        self._feature_concat: dict[str, tuple[int, np.ndarray]] = {}
        self._relation_cache: dict[tuple[str, str], tuple[int, object]] = {}
        self._dataset_cache: tuple[int, MultiTypeRelationalData] | None = None

    # ------------------------------------------------------------ construction
    @classmethod
    def create(cls, directory, data: MultiTypeRelationalData) -> "ObjectLog":
        """Start a new log at ``directory`` with ``data`` as its base.

        The base snapshot stores each feature-carrying type's matrix as one
        ``.npy`` and each relation in its native representation (dense
        ``.npy`` or CSR ``.npz``); ground-truth labels are not carried —
        appended objects would have none.  Refuses a directory that already
        holds a log.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest_path = directory / _MANIFEST
        if manifest_path.exists():
            raise ArtifactError(
                f"{directory} already holds an object log; open it with "
                "ObjectLog(directory) or choose a fresh directory")
        types = []
        base_features: dict[str, str] = {}
        used = set()
        for index, object_type in enumerate(data.types):
            label = _safe(object_type.name)
            if label in used:
                label = f"type{index}"
            used.add(label)
            n_features = (object_type.features.shape[1]
                          if object_type.features is not None else None)
            types.append({"name": object_type.name, "label": label,
                          "n_objects": object_type.n_objects,
                          "n_clusters": object_type.n_clusters,
                          "n_features": n_features})
            if object_type.features is not None:
                filename = f"base.{label}.features.npy"
                matrix = object_type.features
                _write_bytes_atomic(directory / filename,
                                    lambda h, m=matrix: np.save(h, m))
                base_features[object_type.name] = filename
        labels = {entry["name"]: entry["label"] for entry in types}
        relations = []
        for relation in data.relations:
            stem = f"base.{labels[relation.source]}__{labels[relation.target]}"
            if relation.is_sparse:
                filename = stem + ".npz"
                matrix = sp.csr_matrix(relation.matrix)
                _write_bytes_atomic(directory / filename,
                                    lambda h, m=matrix: sp.save_npz(h, m))
            else:
                filename = stem + ".npy"
                matrix = relation.matrix
                _write_bytes_atomic(directory / filename,
                                    lambda h, m=matrix: np.save(h, m))
            relations.append({"source": relation.source,
                              "target": relation.target,
                              "file": filename,
                              "sparse": bool(relation.is_sparse),
                              "weight": float(relation.weight)})
        manifest = {"format": _LOG_FORMAT,
                    "log_schema_version": LOG_SCHEMA_VERSION,
                    "version": 0,
                    "types": types,
                    "base_features": base_features,
                    "relations": relations,
                    "segments": []}
        tmp = manifest_path.with_name(manifest_path.name + ".tmp")
        tmp.write_text(json.dumps(manifest, indent=2) + "\n")
        tmp.replace(manifest_path)
        return cls(directory)

    # -------------------------------------------------------------- inspection
    @property
    def version(self) -> int:
        """Monotone version counter (0 = base only; +1 per append)."""
        return int(self._manifest["version"])

    @property
    def type_names(self) -> list[str]:
        """Names of the logged object types in block order."""
        return [entry["name"] for entry in self._manifest["types"]]

    @property
    def sizes(self) -> dict[str, int]:
        """Current object count per type (base + every appended batch)."""
        sizes = {entry["name"]: int(entry["n_objects"])
                 for entry in self._manifest["types"]}
        for segment in self._manifest["segments"]:
            if segment["kind"] == "objects":
                sizes[segment["type"]] += int(segment["count"])
        return sizes

    def describe(self) -> dict:
        """JSON-safe log summary (sizes, version, segment count)."""
        return {"directory": str(self.directory), "version": self.version,
                "sizes": self.sizes,
                "n_segments": len(self._manifest["segments"])}

    def _type_entry(self, name: str) -> dict:
        for entry in self._manifest["types"]:
            if entry["name"] == name:
                return entry
        raise ValidationError(
            f"unknown object type {name!r}; known types: {self.type_names}")

    def _relation_entry(self, source: str, target: str) -> dict | None:
        for entry in self._manifest["relations"]:
            if {entry["source"], entry["target"]} == {source, target}:
                return entry
        return None

    # ----------------------------------------------------------------- appends
    def _commit(self, segment: dict) -> int:
        """Append one segment record and atomically rewrite the manifest."""
        self._manifest["segments"].append(segment)
        self._manifest["version"] = self.version + 1
        segment["version"] = self._manifest["version"]
        manifest_path = self.directory / _MANIFEST
        tmp = manifest_path.with_name(manifest_path.name + ".tmp")
        tmp.write_text(json.dumps(self._manifest, indent=2) + "\n")
        tmp.replace(manifest_path)
        self._dataset_cache = None
        return self._manifest["version"]

    def append_objects(self, type_name: str, features=None, *,
                       count: int | None = None) -> int:
        """Append new objects of one type; returns the new log version.

        Feature-carrying types take a ``(k, d)`` feature block (``d`` must
        match the base width); featureless types take ``count=k`` instead.
        New objects are appended after every existing object of the type —
        the prefix property an incremental refresh relies on holds by
        construction.
        """
        entry = self._type_entry(type_name)
        if entry["n_features"] is not None:
            if features is None:
                raise ValidationError(
                    f"type {type_name!r} carries features; append_objects "
                    f"needs a (k, {entry['n_features']}) feature block")
            features = as_float_array(features,
                                      name=f"{type_name}.features", ndim=2)
            if features.shape[1] != entry["n_features"]:
                raise ValidationError(
                    f"appended features of type {type_name!r} have "
                    f"{features.shape[1]} columns, the log holds "
                    f"{entry['n_features']}")
            n_new = int(features.shape[0])
            if count is not None and int(count) != n_new:
                raise ValidationError(
                    f"count={count} does not match the {n_new} appended "
                    f"feature rows of type {type_name!r}")
        else:
            if features is not None:
                raise ValidationError(
                    f"type {type_name!r} is featureless; append with "
                    "count=k, not a feature block")
            if count is None:
                raise ValidationError(
                    f"appending to featureless type {type_name!r} needs "
                    "count=k")
            n_new = int(count)
        if n_new <= 0:
            raise ValidationError(
                f"append_objects needs at least one new object, got {n_new}")
        filename = None
        if features is not None:
            filename = (f"seg{self.version + 1:06d}."
                        f"{entry['label']}.features.npy")
            _write_bytes_atomic(self.directory / filename,
                                lambda h: np.save(h, features))
        return self._commit({"kind": "objects", "type": type_name,
                             "count": n_new, "features": filename})

    def append_edges(self, source: str, target: str, rows, cols,
                     values) -> int:
        """Append relation entries; returns the new log version.

        ``rows``/``cols`` are *local* per-type object indices (row ``i`` of
        the source type, column ``j`` of the target type, in the current
        grown layout); ``values`` are the non-negative co-occurrence
        weights added at those positions.  The pair must already have a
        relation in the base dataset — the log extends observed relations,
        it does not invent new pairs (a new pair changes the factorisation
        structure and needs a cold fit).  A reversed ``(target, source)``
        call is accepted and canonicalised.
        """
        self._type_entry(source)
        self._type_entry(target)
        entry = self._relation_entry(source, target)
        if entry is None:
            raise ValidationError(
                f"no relation between {source!r} and {target!r} in the "
                "log's base dataset; the log only extends relations present "
                "at create() — fit a new model to add relation pairs")
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        values = np.asarray(values, dtype=np.float64).ravel()
        if not (rows.size == cols.size == values.size):
            raise ValidationError(
                f"rows/cols/values lengths differ "
                f"({rows.size}/{cols.size}/{values.size})")
        if rows.size == 0:
            raise ValidationError("append_edges needs at least one entry")
        if np.any(values < 0):
            raise ValidationError(
                f"relation values must be non-negative "
                f"(R[{source},{target}])")
        if (source, target) != (entry["source"], entry["target"]):
            rows, cols = cols, rows  # canonicalise to the stored orientation
        sizes = self.sizes
        n_source = sizes[entry["source"]]
        n_target = sizes[entry["target"]]
        if np.any(rows < 0) or np.any(rows >= n_source):
            raise ValidationError(
                f"edge rows out of range for type {entry['source']!r} "
                f"(current size {n_source})")
        if np.any(cols < 0) or np.any(cols >= n_target):
            raise ValidationError(
                f"edge cols out of range for type {entry['target']!r} "
                f"(current size {n_target})")
        label_s = self._type_entry(entry["source"])["label"]
        label_t = self._type_entry(entry["target"])["label"]
        filename = f"seg{self.version + 1:06d}.{label_s}__{label_t}.edges.npz"
        _write_bytes_atomic(
            self.directory / filename,
            lambda h: np.savez(h, rows=rows, cols=cols, values=values))
        return self._commit({"kind": "edges", "source": entry["source"],
                             "target": entry["target"], "file": filename,
                             "n": int(values.size)})

    # ------------------------------------------------------------------ deltas
    def delta_since(self, version: int) -> GrowthDelta:
        """Growth between log ``version`` (exclusive) and the current head."""
        version = int(version)
        if not 0 <= version <= self.version:
            raise ValidationError(
                f"delta_since version must be in [0, {self.version}], "
                f"got {version}")
        grown = {name: 0 for name in self.type_names}
        new_edges: dict[tuple[str, str], int] = {
            (entry["source"], entry["target"]): 0
            for entry in self._manifest["relations"]}
        for segment in self._manifest["segments"]:
            if segment["version"] <= version:
                continue
            if segment["kind"] == "objects":
                grown[segment["type"]] += int(segment["count"])
            else:
                key = (segment["source"], segment["target"])
                new_edges[key] += int(segment["n"])
        return GrowthDelta(since=version, version=self.version,
                           grown=grown, new_edges=new_edges)

    # ----------------------------------------------------------- materialising
    def _features_for(self, entry: dict) -> np.ndarray | None:
        """Concatenated features of one type, loading only new segments."""
        name = entry["name"]
        if entry["n_features"] is None:
            return None
        parts = self._feature_parts.get(name)
        if parts is None:
            base_file = self._manifest["base_features"][name]
            parts = [np.load(self.directory / base_file)]
            self._feature_parts[name] = parts
            self._feature_scanned[name] = 0
        segments = self._manifest["segments"]
        for segment in segments[self._feature_scanned[name]:]:
            if (segment["kind"] == "objects" and segment["type"] == name
                    and segment["features"]):
                parts.append(np.load(self.directory / segment["features"]))
        self._feature_scanned[name] = len(segments)
        cached = self._feature_concat.get(name)
        if cached is not None and cached[0] == len(parts):
            return cached[1]
        concat = parts[0] if len(parts) == 1 else np.vstack(parts)
        self._feature_concat[name] = (len(parts), concat)
        return concat

    def _relation_matrix(self, entry: dict, sizes: dict[str, int]):
        """Assemble one relation at the current sizes (cached per version)."""
        key = (entry["source"], entry["target"])
        cached = self._relation_cache.get(key)
        if cached is not None and cached[0] == self.version:
            return cached[1]
        n_source = sizes[entry["source"]]
        n_target = sizes[entry["target"]]
        segments = [segment for segment in self._manifest["segments"]
                    if segment["kind"] == "edges"
                    and (segment["source"], segment["target"]) == key]
        path = self.directory / entry["file"]
        if entry["sparse"]:
            base = sp.coo_array(sp.load_npz(path))
            rows = [np.asarray(base.row, dtype=np.int64)]
            cols = [np.asarray(base.col, dtype=np.int64)]
            data = [np.asarray(base.data, dtype=np.float64)]
            for segment in segments:
                with np.load(self.directory / segment["file"]) as arrays:
                    rows.append(np.asarray(arrays["rows"], dtype=np.int64))
                    cols.append(np.asarray(arrays["cols"], dtype=np.int64))
                    data.append(np.asarray(arrays["values"],
                                           dtype=np.float64))
            matrix = sp.coo_array(
                (np.concatenate(data),
                 (np.concatenate(rows), np.concatenate(cols))),
                shape=(n_source, n_target)).tocsr()
            matrix.sum_duplicates()
        else:
            base = np.load(path)
            matrix = np.zeros((n_source, n_target))
            matrix[: base.shape[0], : base.shape[1]] = base
            for segment in segments:
                with np.load(self.directory / segment["file"]) as arrays:
                    np.add.at(matrix,
                              (np.asarray(arrays["rows"], dtype=np.int64),
                               np.asarray(arrays["cols"], dtype=np.int64)),
                              np.asarray(arrays["values"], dtype=np.float64))
        self._relation_cache[key] = (self.version, matrix)
        return matrix

    def dataset(self) -> MultiTypeRelationalData:
        """Materialise the current dataset (base + every appended segment).

        Cached per version: repeated calls between appends return the same
        object, and a call after an append loads only the new segments'
        arrays on top of the cached feature parts.
        """
        if (self._dataset_cache is not None
                and self._dataset_cache[0] == self.version):
            return self._dataset_cache[1]
        sizes = self.sizes
        types = []
        for entry in self._manifest["types"]:
            types.append(ObjectType(entry["name"],
                                    n_objects=sizes[entry["name"]],
                                    n_clusters=int(entry["n_clusters"]),
                                    features=self._features_for(entry)))
        relations = []
        for entry in self._manifest["relations"]:
            relations.append(Relation(entry["source"], entry["target"],
                                      self._relation_matrix(entry, sizes),
                                      weight=float(entry.get("weight", 1.0))))
        data = MultiTypeRelationalData(types, relations)
        self._dataset_cache = (self.version, data)
        return data
