"""Lazy model views: an ``RHCHMEModel`` facade over a sharded reader.

A streaming refresh wants the eager-model API (``refresh_model`` takes an
:class:`~repro.serve.artifact.RHCHMEModel`) without the eager-model cost of
loading every array up front.  :func:`open_model_view` opens a sharded
artifact through :class:`~repro.serve.shards.ShardedModelReader` and wraps
it in a model whose ``features``/``membership``/``labels`` mappings fetch
arrays from the reader on first access — on the ``per-type-mmap`` layout
that means a refresh touching one dirty type reads (and optionally
promotes) only that type's arrays, while the clean types' features never
leave the page cache they were never read into.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

import numpy as np

from ..serve.artifact import RHCHMEModel, SCHEMA_VERSION
from ..serve.shards import ShardedModelReader

__all__ = ["ModelView", "open_model_view"]


class _LazyArrays(Mapping):
    """Read-only mapping fetching arrays from a reader on first access."""

    def __init__(self, names: list[str],
                 fetch: Callable[[str], np.ndarray]) -> None:
        self._names = list(names)
        self._fetch = fetch
        self._cache: dict[str, np.ndarray] = {}

    def __getitem__(self, name: str) -> np.ndarray:
        if name not in self._names:
            raise KeyError(name)
        array = self._cache.get(name)
        if array is None:
            array = self._fetch(name)
            self._cache[name] = array
        return array

    def __contains__(self, name: object) -> bool:
        return name in self._names

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)


@dataclass
class ModelView:
    """A lazily-backed :class:`RHCHMEModel` plus the reader behind it.

    ``model`` has the full eager-model API; its array mappings pull from
    ``reader`` on first access.  Close the view (it is a context manager)
    when done — the model facade stops being usable once its backing maps
    are released, exactly like a file object.
    """

    model: RHCHMEModel
    reader: ShardedModelReader

    def cache_info(self) -> dict:
        """Byte-level residency accounting (see ``ShardedModelReader``)."""
        return self.reader.cache_info()

    def close(self) -> None:
        """Release the backing reader (memory maps included)."""
        self.reader.close()

    def __enter__(self) -> "ModelView":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def open_model_view(path, *, promote=(), mmap: bool = True) -> ModelView:
    """Open a sharded artifact as a lazily-backed eager-model facade.

    Parameters
    ----------
    path:
        The artifact handle; must be sharded (``per-type`` or
        ``per-type-mmap``).
    promote:
        Type names whose arrays should be promoted to in-memory copies up
        front (the dirty types of an impending refresh) — promoted arrays
        survive the artifact being rewritten underneath the view.  Only
        meaningful on the mmap layout; a no-op otherwise.
    mmap:
        Forwarded to :class:`ShardedModelReader`: ``False`` reads arrays
        eagerly per access instead of memory-mapping them.
    """
    reader = ShardedModelReader(path, mmap=mmap)
    for name in promote:
        reader.promote(name)
    type_names = reader.type_names
    feature_names = [info.name for info in reader.types
                     if info.n_features is not None]
    sidecar = reader.info()
    model = RHCHMEModel(
        config=reader.config,
        types=reader.types,
        features=_LazyArrays(feature_names, reader.features),
        membership=_LazyArrays(type_names, reader.membership),
        labels=_LazyArrays(type_names, reader.labels),
        association=reader.association,
        error_matrix=reader.error_matrix,
        backend=sidecar.get("backend", "dense"),
        schema_version=int(sidecar.get("schema_version", SCHEMA_VERSION)),
        library_version=str(sidecar.get("library_version", "unknown")),
        diagnostics=reader.diagnostics)
    return ModelView(model=model, reader=reader)
