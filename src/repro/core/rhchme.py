"""The RHCHME estimator — Algorithm 2 of the paper, on the blocked core.

The estimator ties the pieces together:

1. split the dataset's relations into per-pair blocks ``R_tu`` (no global
   stacked R is ever assembled inside the fit);
2. build the heterogeneous manifold ensemble as per-type Laplacian blocks
   ``L_t`` (Eq. 12 — L is block diagonal by construction, so the stacked
   form is never materialised either);
3. initialise the per-type membership blocks ``G_t`` (k-means on relational
   profiles) and ``E_R`` (zeros);
4. iterate the blockwise S / G / E_R updates until the objective stops
   decreasing, fanning the independent per-type / per-pair tasks across the
   ``n_jobs`` worker pool;
5. return per-type hard labels, the factor matrices and the full iteration
   trace (objective decomposition, per-update wall-clock accounting, plus
   optional FScore/NMI against ground truth).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
import time

import numpy as np

from ..exceptions import NotFittedError, ValidationError
from ..obs import Span, activate_span, current_span
from ..linalg.parts import split_parts
from ..linalg.rowsparse import RowSparseMatrix
from ..manifold.ensemble import HeterogeneousManifoldEnsemble
from ..metrics.fscore import clustering_fscore
from ..metrics.nmi import normalized_mutual_information
from ..relational.dataset import MultiTypeRelationalData
from .config import RHCHMEConfig
from .convergence import TraceRecorder
from .objective import evaluate_objective_blocks
from .parallel import TypeWorkPool
from .schedule import DeltaSchedule, DirtySet
from .state import FactorizationState, initialize_state, warm_start_state
from .updates import (active_relation_pairs, update_association_blocks,
                      update_error_matrix_blocks, update_membership_blocks)

__all__ = ["RHCHME", "RHCHMEResult"]


@contextmanager
def _span_scope(parent, name: str, **attributes):
    """Open a child span, activate it for the block, finish it on exit.

    A no-op yielding ``None`` when ``parent`` is ``None`` (fit tracing is
    gated on ``diagnostics=True``), so the solver body reads identically
    either way.
    """
    if parent is None:
        yield None
        return
    span = parent.child(name, **attributes)
    try:
        with activate_span(span):
            yield span
    finally:
        span.finish()


@dataclass
class RHCHMEResult:
    """Outcome of one RHCHME fit.

    Attributes
    ----------
    labels:
        Mapping from type name to the hard cluster labels of that type.
    state:
        Final factorisation state (per-type G blocks, S, E_R and block
        structure).
    trace:
        Iteration history (objective terms and optional metrics per
        iteration, plus per-update wall-clock buckets).
    converged:
        Whether the relative objective decrease dropped below the tolerance
        before ``max_iter`` was reached.
    n_iterations:
        Number of update iterations performed.
    fit_seconds:
        Wall-clock time of the fit (including ensemble construction).
    extras:
        Fit metadata; ``extras["update_seconds"]`` breaks the iteration
        loop's wall clock down by update family (``s_update`` /
        ``g_update`` / ``e_update`` / ``objective``).
    """

    labels: dict[str, np.ndarray]
    state: FactorizationState
    trace: TraceRecorder
    converged: bool
    n_iterations: int
    fit_seconds: float
    ensemble_seconds: float = 0.0
    extras: dict = field(default_factory=dict)

    def to_model(self, data: MultiTypeRelationalData,
                 config: RHCHMEConfig) -> "RHCHMEModel":
        """Convert this fit outcome into a servable, persistable artifact.

        Captures the per-type training features, the factorisation state
        (membership blocks, S, E_R), the hard labels and the configuration
        into an immutable :class:`repro.serve.RHCHMEModel` that supports
        ``save``/``load`` round-trips and out-of-sample batch prediction.
        """
        from ..serve.artifact import RHCHMEModel
        return RHCHMEModel.from_fit(self, data, config)


class RHCHME:
    """Robust High-order Co-clustering via Heterogeneous Manifold Ensemble.

    Parameters
    ----------
    config:
        A :class:`~repro.core.config.RHCHMEConfig`; keyword overrides can be
        passed directly for convenience (``RHCHME(lam=500, beta=10)``).

    Examples
    --------
    >>> from repro.data import make_dataset
    >>> from repro.core import RHCHME
    >>> data = make_dataset("multi5-small", random_state=0)
    >>> model = RHCHME(max_iter=15, random_state=0)
    >>> result = model.fit(data)
    >>> sorted(result.labels)
    ['concepts', 'documents', 'terms']
    """

    def __init__(self, config: RHCHMEConfig | None = None, **overrides) -> None:
        if config is None:
            config = RHCHMEConfig(**overrides)
        elif overrides:
            config = config.with_overrides(**overrides)
        self.config = config
        self.result_: RHCHMEResult | None = None

    # ------------------------------------------------------------------ fit
    def fit(self, data: MultiTypeRelationalData, *,
            warm_start: FactorizationState | dict | None = None,
            dirty: DirtySet | None = None) -> RHCHMEResult:
        """Run Algorithm 2 on a multi-type relational dataset.

        Parameters
        ----------
        data:
            The multi-type relational dataset to co-cluster.
        warm_start:
            Optional informed initial iterate instead of the cold k-means
            initialisation: either a full
            :class:`~repro.core.state.FactorizationState` whose block
            structure matches ``data``, or a mapping from type name to a
            non-negative ``(n_objects, n_clusters)`` membership block (see
            :func:`~repro.core.state.warm_start_state`).  The incremental
            refresh path of :mod:`repro.runtime` uses this to refit a grown
            dataset from a previously fitted model's blocks in a fraction
            of the cold iterations.
        dirty:
            Optional :class:`~repro.core.schedule.DirtySet` declaring which
            types' data changed; requires ``warm_start``.  Clean ``G_t``
            blocks are frozen at their warm-start values, clean pairs skip
            their S/E_R kernels, clean Laplacians are never built, and the
            objective reuses cached terms for frozen blocks — turning the
            refit's per-iteration cost into ``O(dirty neighbourhood)``.
            ``dirty.full_sweep_every=k`` runs every k-th iteration
            unrestricted.  ``None`` (default) is the full refit,
            bit-identical to the behaviour without delta scheduling.
        """
        config = self.config
        start = time.perf_counter()

        dirty_indices: frozenset[int] | None = None
        if dirty is not None:
            if not isinstance(dirty, DirtySet):
                raise ValidationError(
                    f"dirty must be a DirtySet or None, got "
                    f"{type(dirty).__name__}")
            if warm_start is None:
                raise ValidationError(
                    "dirty-scheduled fits require warm_start=: clean blocks "
                    "are frozen at their warm-start values, so there is "
                    "nothing to freeze in a cold fit")
            dirty_indices = dirty.resolve(data.type_names)

        ensemble_start = time.perf_counter()
        ensemble = HeterogeneousManifoldEnsemble(
            alpha=config.alpha,
            gamma=config.gamma,
            p=config.p,
            weighting=config.weighting,
            laplacian_kind=config.laplacian_kind,
            subspace_max_iter=config.subspace_max_iter,
            subspace_tol=config.subspace_tol,
            use_subspace=config.use_subspace_member and config.alpha > 0,
            use_pnn=config.use_pnn_member,
            subspace_topk=config.subspace_topk,
            backend=config.backend,
            random_state=config.random_state,
        )
        # Without sweeps only dirty types ever run a G update, so only
        # their Laplacian blocks are built; sweep iterations need them all.
        build_types = None
        if dirty is not None and dirty.full_sweep_every <= 0:
            build_types = dirty_indices
        L_blocks = ensemble.build_blocks(data, types=build_types)
        backend = ensemble.resolved_backend_
        ensemble_seconds = time.perf_counter() - ensemble_start

        engine = None
        if backend == "torch":
            # Lazy import: the torch engine (and torch itself) only loads
            # when a fit actually resolves to it.
            from ..linalg.torch_engine import TorchSolverEngine
            engine = TorchSolverEngine(device=config.torch_device)

        # The relations follow the backend the ensemble resolved, so the
        # whole fit — graph side and R-space — shares one representation:
        # CSR relation blocks, row-sparse E_R and factored G_t S_tu G_uᵀ
        # products under "sparse", plain arrays under "dense".  Only the
        # per-pair blocks exist; the stacked (n, n) R is never assembled.
        # The torch engine runs with dense-backend semantics (dense R
        # blocks moved to the device once, dense E_R), so it fetches the
        # dense carrier.
        R_pairs = data.relation_blocks(normalize=config.normalize_relations,
                                       backend="dense" if engine is not None
                                       else backend)

        # L is fixed for the whole fit; split each type's block into
        # (L_t⁺, L_t⁻) once instead of re-splitting inside every membership
        # update.  Types the delta schedule never updates carry no block.
        L_parts = [None if block is None else split_parts(block)
                   for block in L_blocks]
        if engine is not None:
            # L and its splits are loop-invariant: one host→device transfer
            # per fit, after which every L± @ G product runs device-side.
            engine.register_laplacians(L_blocks, L_parts)
        if warm_start is None:
            state = initialize_state(data, R_pairs, init=config.init,
                                     smoothing=config.init_smoothing,
                                     random_state=config.random_state)
        else:
            state = self._coerce_warm_start(warm_start, data)
            if backend == "sparse" and isinstance(state.E_R, np.ndarray) \
                    and not np.any(state.E_R):
                # Warm starts built without a backend in sight (e.g. a
                # refresh of a use_error_matrix=False model) default E_R to
                # dense zeros; under the sparse backend that block would
                # drag O(n²) memory and per-iteration work through the
                # whole refit for nothing — represent it row-sparse like a
                # cold sparse initialisation does.
                state.E_R = RowSparseMatrix.zeros(state.E_R.shape)
            if engine is not None and isinstance(state.E_R, RowSparseMatrix):
                # The inverse coercion: a warm start carried over from a
                # sparse-backend fit stores E_R row-sparse, but the torch
                # engine speaks dense-backend semantics.
                state.E_R = state.E_R.to_dense()

        # The ordered pairs the updates must visit: every observed relation
        # (both orientations) plus any block a warm-start E_R carries mass
        # on.  Activity is closed under the update rules, so this is
        # computed once per fit.
        pairs = active_relation_pairs(R_pairs, state.E_R, state.object_spec)

        schedule = None
        objective_cache = None
        if dirty is not None:
            schedule = DeltaSchedule(dirty, data.type_names, pairs,
                                     track_errors=config.use_error_matrix)
            objective_cache = {}

        monitor = None
        fit_span = None
        if config.diagnostics:
            if schedule is None:
                # One eigensolve per type up front (L is fixed for the
                # whole fit), then O(n) churn per recorded iterate — see
                # repro.diagnostics.spectral for the cost contract.  A
                # delta-scheduled fit skips the monitor: clean Laplacians
                # are deliberately never built, and eigensolving them here
                # would defeat the schedule's whole point.
                from ..diagnostics.spectral import SpectralMonitor
                monitor = SpectralMonitor([t.name for t in data.types],
                                          L_blocks)
            # Diagnostics also buys the hierarchical fit trace: one span
            # tree per fit (per-iteration -> per-family -> per-kernel),
            # persisted with the spectral summary in the artifact sidecar.
            fit_span = Span("fit", backend=str(backend),
                            n_jobs=int(config.n_jobs),
                            executor=str(config.executor),
                            max_iter=int(config.max_iter),
                            n_types=len(data.types),
                            warm_start=warm_start is not None,
                            start=start)

        trace = TraceRecorder()
        converged = False
        iteration = 0
        with TypeWorkPool(config.n_jobs, kind=config.executor) as pool:
            # This S solve doubles as iteration 1's S step: the state does
            # not change between recording the initial objective and the
            # first loop pass, so re-solving there would recompute the
            # identical matrix (one full wasted S solve per fit).
            setup_sweep = schedule is not None and schedule.sweep(1)
            with _span_scope(fit_span, "setup"):
                state.S = self._timed(
                    trace, "s_update", update_association_blocks,
                    R_pairs, state, pairs=pairs, pool=pool,
                    dirty_pairs=(schedule.dirty_pairs
                                 if schedule is not None and not setup_sweep
                                 else None),
                    S_prev=state.S if schedule is not None else None,
                    engine=engine)
                self._record(trace, data, R_pairs, L_blocks, state, pairs,
                             pool, monitor=monitor, schedule=schedule,
                             sweep=setup_sweep, cache=objective_cache,
                             engine=engine)

            for iteration in range(1, config.max_iter + 1):
                sweep = schedule is not None and schedule.sweep(iteration)
                restrict = schedule is not None and not sweep
                with _span_scope(fit_span, "iteration", iteration=iteration):
                    if iteration > 1:
                        state.S = self._timed(
                            trace, "s_update", update_association_blocks,
                            R_pairs, state, pairs=pairs, pool=pool,
                            dirty_pairs=(schedule.dirty_pairs if restrict
                                         else None),
                            S_prev=(state.S if schedule is not None
                                    else None),
                            engine=engine)
                    state.G_blocks = self._timed(
                        trace, "g_update", update_membership_blocks,
                        R_pairs, L_parts, state,
                        lam=config.lam, pairs=pairs, pool=pool,
                        dirty_types=(schedule.dirty_types if restrict
                                     else None),
                        engine=engine)
                    if config.use_error_matrix:
                        state.E_R = self._timed(
                            trace, "e_update", update_error_matrix_blocks,
                            R_pairs, state,
                            beta=config.beta,
                            zeta=config.zeta,
                            row_tol=config.error_row_tol,
                            pairs=pairs, pool=pool,
                            dirty_types=(schedule.error_types if restrict
                                         else None),
                            E_prev=(state.E_R if schedule is not None
                                    else None),
                            engine=engine)
                    state.iteration = iteration
                    self._record(trace, data, R_pairs, L_blocks, state, pairs,
                                 pool, monitor=monitor, schedule=schedule,
                                 sweep=sweep, cache=objective_cache,
                                 engine=engine)
                decrease = trace.last_relative_decrease()
                if 0.0 <= decrease < config.tol:
                    converged = True
                    break

        labels = {object_type.name: state.labels_for_type(index)
                  for index, object_type in enumerate(data.types)}
        result = RHCHMEResult(labels=labels, state=state, trace=trace,
                              converged=converged, n_iterations=iteration,
                              fit_seconds=time.perf_counter() - start,
                              ensemble_seconds=ensemble_seconds,
                              extras={"config": config.describe(),
                                      "backend": backend,
                                      "n_jobs": config.n_jobs,
                                      "executor": config.executor,
                                      "update_seconds": trace.timings,
                                      "warm_start": warm_start is not None})
        if engine is not None:
            result.extras["device"] = engine.device
        if schedule is not None:
            result.extras["dirty"] = schedule.describe()
        if monitor is not None:
            result.extras["diagnostics"] = monitor.summary(trace)
        if fit_span is not None:
            fit_span.annotate(converged=converged,
                              n_iterations=int(iteration))
            fit_span.finish()
            trace.span_tree = fit_span
            result.extras.setdefault("diagnostics", {})["trace"] = \
                fit_span.to_dict()
        self.result_ = result
        return result

    @staticmethod
    def _timed(trace: TraceRecorder, bucket: str, fn, *args, **kwargs):
        """Run one update, charging its wall clock to a trace bucket.

        When a fit span is active (diagnostics on), the update family
        additionally becomes a child span, activated for the duration so
        the blockwise kernels under it can attach their own children.
        """
        parent = current_span()
        span = None if parent is None else parent.child(bucket)
        start = time.perf_counter()
        with activate_span(span):
            result = fn(*args, **kwargs)
        elapsed = time.perf_counter() - start
        if span is not None:
            span.finish()
        trace.add_timing(bucket, elapsed)
        return result

    @staticmethod
    def _coerce_warm_start(warm_start, data: MultiTypeRelationalData
                           ) -> FactorizationState:
        """Validate a warm start against ``data`` and return a private copy."""
        if isinstance(warm_start, FactorizationState):
            if (warm_start.object_spec != data.object_block_spec()
                    or warm_start.cluster_spec != data.cluster_block_spec()):
                raise ValidationError(
                    f"warm-start state (objects {warm_start.object_spec.sizes}, "
                    f"clusters {warm_start.cluster_spec.sizes}) does not match "
                    f"the dataset ({data.describe()})")
            return warm_start.copy()
        try:
            blocks = dict(warm_start)
        except (TypeError, ValueError) as exc:
            raise ValidationError(
                "warm_start must be a FactorizationState or a mapping from "
                f"type name to membership block, got {type(warm_start).__name__}"
            ) from exc
        return warm_start_state(data, blocks)

    def fit_predict(self, data: MultiTypeRelationalData,
                    type_name: str | None = None) -> np.ndarray:
        """Fit and return the labels of one type (default: the first type)."""
        result = self.fit(data)
        if type_name is None:
            type_name = data.type_names[0]
        return result.labels[type_name]

    def export_model(self, data: MultiTypeRelationalData) -> "RHCHMEModel":
        """Return the fitted model as a servable artifact (see ``repro.serve``)."""
        if self.result_ is None:
            raise NotFittedError("RHCHME has not been fitted yet")
        return self.result_.to_model(data, self.config)

    # -------------------------------------------------------------- internal
    def _record(self, trace: TraceRecorder, data: MultiTypeRelationalData,
                R_pairs, L_blocks, state: FactorizationState, pairs,
                pool, monitor=None, schedule=None, sweep: bool = False,
                cache=None, engine=None) -> None:
        """Record the objective breakdown and optional metrics for one iterate."""
        config = self.config
        breakdown = self._timed(trace, "objective", evaluate_objective_blocks,
                                R_pairs, state, L_blocks, lam=config.lam,
                                beta=config.beta, pairs=pairs, pool=pool,
                                schedule=schedule, sweep=sweep, cache=cache,
                                engine=engine)
        metrics: dict[str, float] = {}
        if monitor is not None:
            metrics.update(monitor.observe(state))
        if config.track_metrics_every and (
                state.iteration % config.track_metrics_every == 0):
            for index, object_type in enumerate(data.types):
                if not object_type.has_labels:
                    continue
                predicted = state.labels_for_type(index)
                metrics[f"fscore/{object_type.name}"] = clustering_fscore(
                    object_type.labels, predicted)
                metrics[f"nmi/{object_type.name}"] = normalized_mutual_information(
                    object_type.labels, predicted)
        trace.record(state.iteration, breakdown.total,
                     terms={
                         "reconstruction": breakdown.reconstruction,
                         "error_sparsity": breakdown.error_sparsity,
                         "graph_smoothness": breakdown.graph_smoothness,
                     },
                     metrics=metrics)

    # ------------------------------------------------------------ properties
    @property
    def labels_(self) -> dict[str, np.ndarray]:
        """Labels of the last fit (raises if the model has not been fitted)."""
        if self.result_ is None:
            raise NotFittedError("RHCHME has not been fitted yet")
        return self.result_.labels
