"""Iteration history bookkeeping for the HOCC solvers.

Records the objective decomposition and (optionally) FScore/NMI against
ground truth at every iteration.  The recorded traces are what the
Figure 3 reproduction (FScore/NMI versus iteration count) plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

__all__ = ["IterationRecord", "TraceRecorder"]


@dataclass(frozen=True)
class IterationRecord:
    """Snapshot of one optimisation iteration.

    Attributes
    ----------
    iteration:
        Iteration counter (0 = initial state before any update).
    objective:
        Total objective value.
    terms:
        Named contribution of each objective term.
    metrics:
        Optional evaluation metrics (e.g. per-type FScore/NMI) at this iterate.
    """

    iteration: int
    objective: float
    terms: dict[str, float] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)


class TraceRecorder:
    """Accumulates :class:`IterationRecord` entries during optimisation.

    Besides the per-iteration objective records, the recorder keeps a
    per-phase wall-clock account (:meth:`add_timing` / :attr:`timings`):
    the solver charges each S / G / E_R update and each objective
    evaluation to its named bucket, so a benchmark regression can be
    localised to one update family without re-profiling the fit.

    Under ``diagnostics=True`` the solver additionally attaches a
    hierarchical fit trace (:attr:`span_tree`, a completed
    :class:`repro.obs.Span` root): the flat buckets answer *how much*
    each update family cost in total, the span tree answers *where* —
    per iteration, per family, per kernel task under ``n_jobs``.
    """

    def __init__(self) -> None:
        self._records: list[IterationRecord] = []
        self._timings: dict[str, float] = {}
        self._timing_counts: dict[str, int] = {}
        #: The fit's hierarchical span tree (``None`` unless the solver
        #: ran with diagnostics enabled).
        self.span_tree = None

    def record(self, iteration: int, objective: float,
               terms: Mapping[str, float] | None = None,
               metrics: Mapping[str, float] | None = None) -> IterationRecord:
        """Append a record and return it."""
        entry = IterationRecord(iteration=int(iteration), objective=float(objective),
                                terms=dict(terms or {}), metrics=dict(metrics or {}))
        self._records.append(entry)
        return entry

    def add_timing(self, name: str, seconds: float) -> None:
        """Charge ``seconds`` of wall clock to the named phase bucket."""
        self._timings[name] = self._timings.get(name, 0.0) + float(seconds)
        self._timing_counts[name] = self._timing_counts.get(name, 0) + 1

    @property
    def timings(self) -> dict[str, float]:
        """Accumulated wall-clock seconds per phase (copy)."""
        return dict(self._timings)

    @property
    def timing_counts(self) -> dict[str, int]:
        """How many times each phase was charged (copy)."""
        return dict(self._timing_counts)

    @property
    def records(self) -> list[IterationRecord]:
        """All records in iteration order."""
        return list(self._records)

    @property
    def objectives(self) -> np.ndarray:
        """Array of objective values per recorded iteration."""
        return np.array([r.objective for r in self._records], dtype=np.float64)

    def metric_series(self, name: str) -> np.ndarray:
        """Array of one metric across iterations (NaN where not recorded)."""
        return np.array([r.metrics.get(name, np.nan) for r in self._records],
                        dtype=np.float64)

    def terms_series(self, name: str) -> np.ndarray:
        """Array of one objective term across iterations (NaN where absent)."""
        return np.array([r.terms.get(name, np.nan) for r in self._records],
                        dtype=np.float64)

    def last_relative_decrease(self) -> float:
        """Relative objective decrease between the last two records.

        Returns infinity when fewer than two records exist so the caller's
        convergence check never triggers prematurely.
        """
        if len(self._records) < 2:
            return float("inf")
        previous = self._records[-2].objective
        current = self._records[-1].objective
        scale = max(abs(previous), 1e-12)
        return (previous - current) / scale

    def __len__(self) -> int:
        return len(self._records)
