"""Worker-pool fan-out for the blocked solver kernels.

The blocked representation of Algorithm 2 decomposes every update into
independent per-type or per-pair tasks: given the other factors fixed, the
G update of one type never reads another type's block, and the S / E_R /
objective contributions of one ``(t, u)`` relation pair never read another
pair's.  :class:`TypeWorkPool` maps such task lists across workers.

Two executor kinds share the same task decomposition:

* ``kind="thread"`` (default) — numpy and scipy release the GIL inside
  their matmul/reduction kernels, so plain threads give real parallelism
  without pickling any matrix;
* ``kind="process"`` — a spawn-context process pool for BLAS-saturated
  boxes, where the BLAS library already multithreads each kernel and extra
  Python threads only contend for the same cores.  Tasks and their operand
  arrays are pickled to the workers, so this pays a serialisation cost per
  task and only wins when the kernels are large enough to amortise it.
  The spawn context (never fork) keeps OpenBLAS/Accelerate thread state
  safe on every platform.

``n_jobs=1`` (the default) bypasses the executor entirely: the serial path
is a plain loop with zero scheduling overhead.  Every path returns results
in task order, so the numbers are identical for every ``n_jobs`` and both
executor kinds — the solver's kernels are deterministic functions of their
operands.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["TypeWorkPool", "resolve_n_jobs", "EXECUTOR_KINDS"]

_Item = TypeVar("_Item")
_Result = TypeVar("_Result")

#: Valid values of the ``executor`` knob.
EXECUTOR_KINDS = ("thread", "process")


def resolve_n_jobs(n_jobs: int) -> int:
    """Concrete worker count for an ``n_jobs`` knob (``-1`` = all CPUs)."""
    if n_jobs == -1:
        return max(os.cpu_count() or 1, 1)
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    return int(n_jobs)


class TypeWorkPool:
    """Ordered map over independent blockwise tasks, serial or pooled.

    Usable as a context manager; the serial variant holds no resources and
    the pooled variants shut their executor down on exit.  One pool is
    created per ``RHCHME.fit`` and shared by every update of the iteration
    loop, so worker start-up costs are paid once per fit, not per kernel.

    With ``kind="process"`` the mapped callables and their items must be
    picklable — the blocked kernels satisfy this by shipping module-level
    task functions with plain array/tuple items.
    """

    def __init__(self, n_jobs: int = 1, *, kind: str = "thread") -> None:
        if kind not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor kind {kind!r}; expected one of "
                f"{list(EXECUTOR_KINDS)}")
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.kind = kind
        self._executor: ThreadPoolExecutor | ProcessPoolExecutor | None = None
        if self.n_jobs > 1:
            if kind == "process":
                self._executor = ProcessPoolExecutor(
                    max_workers=self.n_jobs,
                    mp_context=multiprocessing.get_context("spawn"))
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.n_jobs,
                    thread_name_prefix="rhchme-block")

    @property
    def is_process(self) -> bool:
        """True when tasks run in worker processes (callables must pickle)."""
        return self.kind == "process" and self._executor is not None

    def map(self, fn: Callable[[_Item], _Result],
            items: Iterable[_Item]) -> list[_Result]:
        """Apply ``fn`` to every item, in order, and return all results.

        Exceptions propagate to the caller exactly as in the serial loop
        (the first failing task's exception is re-raised).
        """
        items = list(items)
        if self._executor is None or len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._executor.map(fn, items))

    def starmap(self, fn: Callable[..., _Result],
                items: Iterable[Sequence]) -> list[_Result]:
        """Like :meth:`map` with argument tuples unpacked into ``fn``.

        The unpacking lambda is not picklable; process pools run starmap
        through :meth:`map`'s serial fallback only for 0/1-item lists, so
        prefer :meth:`map` with a module-level callable under
        ``kind="process"``.
        """
        return self.map(lambda args: fn(*args), items)

    def close(self) -> None:
        """Shut the executor down (idempotent; serial pools are a no-op)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "TypeWorkPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
