"""Thread-pool fan-out for the blocked solver kernels.

The blocked representation of Algorithm 2 decomposes every update into
independent per-type or per-pair tasks: given the other factors fixed, the
G update of one type never reads another type's block, and the S / E_R /
objective contributions of one ``(t, u)`` relation pair never read another
pair's.  :class:`TypeWorkPool` maps such task lists across worker threads —
numpy and scipy release the GIL inside their matmul/reduction kernels, so
plain threads give real parallelism without pickling any matrix.

``n_jobs=1`` (the default) bypasses the executor entirely: the serial path
is a plain loop with zero scheduling overhead, and the parallel path is an
opt-in for machines with spare cores.  Either path returns results in task
order, so the numbers are identical for every ``n_jobs``.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["TypeWorkPool", "resolve_n_jobs"]

_Item = TypeVar("_Item")
_Result = TypeVar("_Result")


def resolve_n_jobs(n_jobs: int) -> int:
    """Concrete worker count for an ``n_jobs`` knob (``-1`` = all CPUs)."""
    if n_jobs == -1:
        return max(os.cpu_count() or 1, 1)
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    return int(n_jobs)


class TypeWorkPool:
    """Ordered map over independent blockwise tasks, serial or threaded.

    Usable as a context manager; the serial variant holds no resources and
    the threaded variant shuts its executor down on exit.  One pool is
    created per ``RHCHME.fit`` and shared by every update of the iteration
    loop, so thread start-up costs are paid once per fit, not per kernel.
    """

    def __init__(self, n_jobs: int = 1) -> None:
        self.n_jobs = resolve_n_jobs(n_jobs)
        self._executor: ThreadPoolExecutor | None = None
        if self.n_jobs > 1:
            self._executor = ThreadPoolExecutor(
                max_workers=self.n_jobs,
                thread_name_prefix="rhchme-block")

    def map(self, fn: Callable[[_Item], _Result],
            items: Iterable[_Item]) -> list[_Result]:
        """Apply ``fn`` to every item, in order, and return all results.

        Exceptions propagate to the caller exactly as in the serial loop
        (the first failing task's exception is re-raised).
        """
        items = list(items)
        if self._executor is None or len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._executor.map(fn, items))

    def starmap(self, fn: Callable[..., _Result],
                items: Iterable[Sequence]) -> list[_Result]:
        """Like :meth:`map` with argument tuples unpacked into ``fn``."""
        return self.map(lambda args: fn(*args), items)

    def close(self) -> None:
        """Shut the executor down (idempotent; serial pools are a no-op)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "TypeWorkPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
