"""Evaluation of the RHCHME objective (Eq. 15) and its decomposition.

Keeping the objective evaluation separate from the update rules allows the
tests to assert the monotone-decrease property proved in the paper's
Theorem 1 and lets the convergence recorder log the contribution of each
term (reconstruction, sparsity, graph smoothness).

The evaluation is representation-agnostic: ``R`` may be dense or scipy
sparse and ``E_R`` dense or row-sparse.  Under the sparse representations
the reconstruction term ``‖R − G S Gᵀ − E_R‖²_F`` is expanded into pairwise
Frobenius inner products (see :func:`repro.core.rspace.reconstruction_error`)
so the dense ``G S Gᵀ`` product is never materialised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..linalg.norms import frobenius_norm, l21_norm, trace_quadratic
from ..linalg.rowsparse import RowSparseMatrix
from . import rspace

__all__ = ["ObjectiveBreakdown", "evaluate_objective"]


@dataclass(frozen=True)
class ObjectiveBreakdown:
    """Value of each term of the RHCHME objective at one iterate.

    Attributes
    ----------
    reconstruction:
        ``‖R − G S Gᵀ − E_R‖²_F``.
    error_sparsity:
        ``β ‖E_R‖_{2,1}``.
    graph_smoothness:
        ``λ tr(Gᵀ L G)``.
    """

    reconstruction: float
    error_sparsity: float
    graph_smoothness: float

    @property
    def total(self) -> float:
        """The full objective J4 (Eq. 15)."""
        return self.reconstruction + self.error_sparsity + self.graph_smoothness


def evaluate_objective(R, G: np.ndarray, S: np.ndarray,
                       E_R, L, *, lam: float,
                       beta: float) -> ObjectiveBreakdown:
    """Evaluate the three terms of Eq. 15 at the given factors.

    ``L`` may be dense or scipy sparse; the smoothness term only needs the
    product ``L @ G`` (see :func:`repro.linalg.norms.trace_quadratic`), so a
    sparse ensemble Laplacian is never densified.  Likewise ``R`` may be
    dense or CSR and ``E_R`` dense or a
    :class:`~repro.linalg.rowsparse.RowSparseMatrix`; any sparse operand
    routes the reconstruction term through the factored expansion instead
    of the dense residual.
    """
    if sp.issparse(R) or isinstance(E_R, RowSparseMatrix):
        reconstruction = rspace.reconstruction_error(R, G, S, E_R)
    else:
        residual = R - G @ S @ G.T - E_R
        reconstruction = frobenius_norm(residual) ** 2
    error_sparsity = beta * l21_norm(E_R)
    graph_smoothness = lam * trace_quadratic(G, L)
    return ObjectiveBreakdown(reconstruction=float(reconstruction),
                              error_sparsity=float(error_sparsity),
                              graph_smoothness=float(graph_smoothness))
