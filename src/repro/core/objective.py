"""Evaluation of the RHCHME objective (Eq. 15) and its decomposition.

Keeping the objective evaluation separate from the update rules allows the
tests to assert the monotone-decrease property proved in the paper's
Theorem 1 and lets the convergence recorder log the contribution of each
term (reconstruction, sparsity, graph smoothness).

The evaluation is representation-agnostic: ``R`` may be dense or scipy
sparse and ``E_R`` dense or row-sparse.  Under the sparse representations
the reconstruction term ``‖R − G S Gᵀ − E_R‖²_F`` is expanded into pairwise
Frobenius inner products (see :func:`repro.core.rspace.reconstruction_error`)
so the dense ``G S Gᵀ`` product is never materialised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..linalg.norms import frobenius_norm, l21_norm, trace_quadratic
from ..linalg.rowsparse import RowSparseMatrix
from . import rspace

__all__ = ["ObjectiveBreakdown", "evaluate_objective",
           "evaluate_objective_blocks"]


@dataclass(frozen=True)
class ObjectiveBreakdown:
    """Value of each term of the RHCHME objective at one iterate.

    Attributes
    ----------
    reconstruction:
        ``‖R − G S Gᵀ − E_R‖²_F``.
    error_sparsity:
        ``β ‖E_R‖_{2,1}``.
    graph_smoothness:
        ``λ tr(Gᵀ L G)``.
    """

    reconstruction: float
    error_sparsity: float
    graph_smoothness: float

    @property
    def total(self) -> float:
        """The full objective J4 (Eq. 15)."""
        return self.reconstruction + self.error_sparsity + self.graph_smoothness


def evaluate_objective(R, G: np.ndarray, S: np.ndarray,
                       E_R, L, *, lam: float,
                       beta: float) -> ObjectiveBreakdown:
    """Evaluate the three terms of Eq. 15 at the given factors.

    ``L`` may be dense or scipy sparse; the smoothness term only needs the
    product ``L @ G`` (see :func:`repro.linalg.norms.trace_quadratic`), so a
    sparse ensemble Laplacian is never densified.  Likewise ``R`` may be
    dense or CSR and ``E_R`` dense or a
    :class:`~repro.linalg.rowsparse.RowSparseMatrix`; any sparse operand
    routes the reconstruction term through the factored expansion instead
    of the dense residual.
    """
    if sp.issparse(R) or isinstance(E_R, RowSparseMatrix):
        reconstruction = rspace.reconstruction_error(R, G, S, E_R)
    else:
        residual = R - G @ S @ G.T - E_R
        reconstruction = frobenius_norm(residual) ** 2
    error_sparsity = beta * l21_norm(E_R)
    graph_smoothness = lam * trace_quadratic(G, L)
    return ObjectiveBreakdown(reconstruction=float(reconstruction),
                              error_sparsity=float(error_sparsity),
                              graph_smoothness=float(graph_smoothness))


# Module-level objective task kernels (picklable for process pools; see
# repro.core.updates for the convention).  Items are plain operand tuples.


def _pair_error_task(item) -> float:
    """``‖R_tu − G_t S_tu G_uᵀ − E_tu‖²_F`` of one relation pair."""
    R_tu, G_t, S_tu, G_u, E_tu = item
    return rspace.pair_reconstruction_error(R_tu, G_t, S_tu, G_u, E_tu)


def _smoothness_task(item) -> float:
    """``tr(G_tᵀ L_t G_t)`` of one type."""
    G_t, L_t = item
    return trace_quadratic(G_t, L_t)


def _type_l21(E_R, object_spec, t: int) -> float:
    """The L2,1 norm contribution of one row type's E_R rows."""
    if E_R is None:
        return 0.0
    rows = object_spec.slice(t)
    if isinstance(E_R, RowSparseMatrix):
        return float(l21_norm(E_R.block(rows, slice(0, E_R.shape[1]))))
    return float(l21_norm(np.asarray(E_R)[rows]))


def evaluate_objective_blocks(R_pairs, state, L_blocks, *, lam: float,
                              beta: float, pairs=None, pool=None,
                              schedule=None, sweep: bool = False,
                              cache=None, engine=None) -> ObjectiveBreakdown:
    """Blockwise evaluation of Eq. 15 — no global matrix is ever assembled.

    Every term decomposes over the block structure: the reconstruction is a
    sum of per-pair residual norms ``‖R_tu − G_t S_tu G_uᵀ − E_tu‖²_F``
    (the diagonal blocks are structural zeros), the smoothness a sum of
    per-type traces ``tr(G_tᵀ L_t G_t)``, and the L2,1 term reads the
    global E_R representation directly.  Pair and type tasks are
    independent and fan out across ``pool``.

    Parameters
    ----------
    R_pairs:
        Mapping from ordered type-index pairs to relation blocks.
    state:
        A blocked :class:`~repro.core.state.FactorizationState`.
    L_blocks:
        Per-type ensemble Laplacian blocks (dense or CSR).  A
        delta-scheduled fit passes ``None`` for types it never smooths
        over (clean types without sweeps) — their constant smoothness
        contribution is omitted from the trace.
    pairs:
        Active ordered pairs (defaults to the keys of ``R_pairs``).
    schedule, sweep, cache:
        Delta-evaluation mode: with a
        :class:`~repro.core.schedule.DeltaSchedule` and a (mutable) term
        cache, only the terms the schedule marks as moving — or that the
        cache has never seen — are recomputed; frozen blocks' terms are
        summed from the cache.  ``sweep=True`` refreshes every cached
        term.  Either argument ``None`` runs the full evaluation exactly
        as before.
    engine:
        Optional :class:`~repro.linalg.torch_engine.TorchSolverEngine`;
        routes the per-pair residual norms and per-type traces through the
        device instead of the pool.
    """
    from .updates import _error_block, _map  # local: avoids an import cycle

    if pairs is None:
        pairs = sorted(R_pairs)
    G = state.G_blocks
    S = state.S
    object_spec = state.object_spec
    cluster_spec = state.cluster_spec

    def pair_item(pair):
        t, u = pair
        S_tu = S[cluster_spec.slice(t), cluster_spec.slice(u)]
        E_tu = _error_block(state.E_R, object_spec, t, u)
        return R_pairs.get(pair), G[t], S_tu, G[u], E_tu

    def evaluate_terms(eval_pairs, eval_types):
        """Per-pair reconstruction and per-type smoothness term values."""
        if engine is not None:
            return ([engine.pair_reconstruction_error(*pair_item(pair))
                     for pair in eval_pairs],
                    [engine.smoothness(t, G[t], L_blocks[t])
                     for t in eval_types])
        pair_values = _map(pool, _pair_error_task,
                           [pair_item(pair) for pair in eval_pairs],
                           labels=eval_pairs, name="one_pair")
        type_values = _map(pool, _smoothness_task,
                           [(G[t], L_blocks[t]) for t in eval_types],
                           labels=eval_types, name="one_type")
        return pair_values, type_values

    if schedule is None or cache is None:
        pair_values, type_values = evaluate_terms(
            list(pairs), list(range(object_spec.n_types)))
        reconstruction = float(sum(pair_values))
        smoothness = float(sum(type_values))
        error_sparsity = beta * l21_norm(state.E_R)
        return ObjectiveBreakdown(reconstruction=reconstruction,
                                  error_sparsity=float(error_sparsity),
                                  graph_smoothness=lam * smoothness)

    # Delta evaluation: recompute the moving (or never-seen) terms, sum
    # the frozen ones from the cache.
    moving_pairs = schedule.objective_pairs
    smooth_over = schedule.laplacian_types
    eval_pairs = [pair for pair in pairs
                  if sweep or pair in moving_pairs
                  or ("pair", pair) not in cache]
    eval_types = [t for t in smooth_over
                  if sweep or t in schedule.dirty_types
                  or ("smooth", t) not in cache]
    pair_values, type_values = evaluate_terms(eval_pairs, eval_types)
    for pair, value in zip(eval_pairs, pair_values):
        cache[("pair", pair)] = float(value)
    for t, value in zip(eval_types, type_values):
        cache[("smooth", t)] = float(value)
    reconstruction = float(sum(cache[("pair", pair)] for pair in pairs))
    smoothness = float(sum(cache[("smooth", t)] for t in smooth_over))
    source_types = {pair[0] for pair in pairs}
    if sweep or schedule.error_types >= source_types:
        # No row type with E_R mass is frozen (stored rows only exist on
        # source types of active pairs) — the one-shot global L2,1
        # reduction is both cheaper and bit-identical to the unscheduled
        # evaluation.
        error_sparsity = float(beta * l21_norm(state.E_R))
    else:
        for t in range(object_spec.n_types):
            if t in schedule.error_types or ("l21", t) not in cache:
                cache[("l21", t)] = _type_l21(state.E_R, object_spec, t)
        error_sparsity = float(beta * sum(cache[("l21", t)]
                                          for t in range(object_spec.n_types)))
    return ObjectiveBreakdown(reconstruction=reconstruction,
                              error_sparsity=error_sparsity,
                              graph_smoothness=lam * smoothness)
