"""Evaluation of the RHCHME objective (Eq. 15) and its decomposition.

Keeping the objective evaluation separate from the update rules allows the
tests to assert the monotone-decrease property proved in the paper's
Theorem 1 and lets the convergence recorder log the contribution of each
term (reconstruction, sparsity, graph smoothness).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..linalg.norms import frobenius_norm, l21_norm, trace_quadratic

__all__ = ["ObjectiveBreakdown", "evaluate_objective"]


@dataclass(frozen=True)
class ObjectiveBreakdown:
    """Value of each term of the RHCHME objective at one iterate.

    Attributes
    ----------
    reconstruction:
        ``‖R − G S Gᵀ − E_R‖²_F``.
    error_sparsity:
        ``β ‖E_R‖_{2,1}``.
    graph_smoothness:
        ``λ tr(Gᵀ L G)``.
    """

    reconstruction: float
    error_sparsity: float
    graph_smoothness: float

    @property
    def total(self) -> float:
        """The full objective J4 (Eq. 15)."""
        return self.reconstruction + self.error_sparsity + self.graph_smoothness


def evaluate_objective(R: np.ndarray, G: np.ndarray, S: np.ndarray,
                       E_R: np.ndarray, L, *, lam: float,
                       beta: float) -> ObjectiveBreakdown:
    """Evaluate the three terms of Eq. 15 at the given factors.

    ``L`` may be dense or scipy sparse; the smoothness term only needs the
    product ``L @ G`` (see :func:`repro.linalg.norms.trace_quadratic`), so a
    sparse ensemble Laplacian is never densified.
    """
    residual = R - G @ S @ G.T - E_R
    reconstruction = frobenius_norm(residual) ** 2
    error_sparsity = beta * l21_norm(E_R)
    graph_smoothness = lam * trace_quadratic(G, L)
    return ObjectiveBreakdown(reconstruction=float(reconstruction),
                              error_sparsity=float(error_sparsity),
                              graph_smoothness=float(graph_smoothness))
