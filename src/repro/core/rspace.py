"""Factored R-space computations for the sparse compute backend.

Every R-space quantity of Algorithm 2 — the association update (Eq. 18), the
membership numerators (Eq. 21), the error-matrix shrinkage (Eq. 25–27) and
the reconstruction term of the objective (Eq. 15) — involves the product
``G S Gᵀ``, which is dense even when the relation matrix ``R`` is sparse.
The dense backend materialises it; the kernels here never do.  Instead the
product stays factored as ``M Gᵀ`` with ``M = G S`` and is only ever

* multiplied by a skinny dense matrix (``G S Gᵀ G = M (Gᵀ G)``),
* evaluated at the sparse pattern of ``R`` (``(G S Gᵀ)ᵢⱼ = Mᵢ · Gⱼ`` for the
  ``nnz`` stored ``(i, j)`` pairs), or
* reduced through Frobenius/trace identities in the ``c × c`` cluster space
  (``‖G S Gᵀ‖²_F = tr(Sᵀ P S P)`` with ``P = Gᵀ G``).

That caps the per-iteration R-space cost at ``O(nnz·c + n·c²)`` time and
``O(nnz + n·c)`` memory instead of ``O(n²·c)`` / ``O(n²)`` — the same
complexity collapse the sparse graph pipeline already achieved for the
Laplacian side.  The error matrix ``E_R`` participates through the
row-sparse representation of :class:`repro.linalg.rowsparse.RowSparseMatrix`
(its surviving rows are dense, but there are only as many of them as there
are corrupted samples).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..linalg.rowsparse import RowSparseMatrix

__all__ = [
    "factored_product",
    "pattern_inner",
    "pattern_row_inner",
    "residual_row_norms",
    "residual_rows",
    "reconstruction_error",
    "project_relations",
    "association_core",
]

#: Row-count chunk for gather-heavy pattern evaluations; bounds the transient
#: ``O(nnz_chunk · c)`` gather buffers without measurably slowing the kernel.
_PATTERN_CHUNK = 262_144


def factored_product(G: np.ndarray, S: np.ndarray) -> np.ndarray:
    """The skinny factor ``M = G S`` of the reconstruction ``G S Gᵀ = M Gᵀ``."""
    return G @ S


def pattern_row_inner(R: sp.csr_array, M: np.ndarray,
                      G: np.ndarray) -> np.ndarray:
    """Per-row inner products ``Σⱼ Rᵢⱼ (G S Gᵀ)ᵢⱼ`` against R's pattern.

    Evaluates ``(G S Gᵀ)ᵢⱼ = Mᵢ · Gⱼ`` only at the ``nnz`` stored entries of
    ``R`` and reduces them per row — ``O(nnz · c)`` time, ``O(nnz)`` memory
    (chunked gathers keep the transient buffers bounded).
    """
    R = sp.csr_array(R)
    n_rows = R.shape[0]
    result = np.zeros(n_rows, dtype=np.float64)
    if R.nnz == 0:
        return result
    row_of_entry = np.repeat(np.arange(n_rows), np.diff(R.indptr))
    for start in range(0, R.nnz, _PATTERN_CHUNK):
        stop = min(start + _PATTERN_CHUNK, R.nnz)
        entries = R.data[start:stop] * np.einsum(
            "ij,ij->i", M[row_of_entry[start:stop]], G[R.indices[start:stop]])
        result += np.bincount(row_of_entry[start:stop], weights=entries,
                              minlength=n_rows)
    return result


def pattern_inner(R: sp.csr_array, M: np.ndarray, G: np.ndarray) -> float:
    """Frobenius inner product ``⟨R, G S Gᵀ⟩`` against R's sparse pattern."""
    return float(np.sum(pattern_row_inner(R, M, G)))


def _gram_inner(P: np.ndarray, S: np.ndarray) -> float:
    """``‖G S Gᵀ‖²_F = tr(Sᵀ P S P)`` with the gram matrix ``P = Gᵀ G``."""
    return float(np.sum((S.T @ P @ S) * P))


def residual_row_norms(R: sp.csr_array, G: np.ndarray, S: np.ndarray, *,
                       M: np.ndarray | None = None,
                       P: np.ndarray | None = None) -> np.ndarray:
    """Row L2 norms of the residual ``Q = R − G S Gᵀ`` without densifying.

    Expands ``‖Qᵢ‖²`` into ``‖Rᵢ‖² − 2 Σⱼ Rᵢⱼ (G S Gᵀ)ᵢⱼ + (M P Mᵀ)ᵢᵢ`` —
    first term from the CSR data, cross term from the sparse pattern, last
    from the ``c × c`` gram space.  Tiny negative values from cancellation
    are clipped before the square root.
    """
    R = sp.csr_array(R)
    if M is None:
        M = factored_product(G, S)
    if P is None:
        P = G.T @ G
    data_sq = R.data * R.data
    row_sq = np.add.reduceat(np.concatenate([data_sq, [0.0]]), R.indptr[:-1])
    row_sq[np.diff(R.indptr) == 0] = 0.0
    cross = pattern_row_inner(R, M, G)
    gram_diag = np.einsum("ij,ij->i", M @ P, M)
    return np.sqrt(np.maximum(row_sq - 2.0 * cross + gram_diag, 0.0))


def residual_rows(R: sp.csr_array, G: np.ndarray, S: np.ndarray,
                  rows: np.ndarray, *,
                  M: np.ndarray | None = None) -> np.ndarray:
    """Materialise the residual rows ``(R − G S Gᵀ)[rows]`` as a dense block.

    Cost is ``O(k · n · c)`` for ``k`` requested rows — this is the only
    place the sparse backend pays for dense rows, and only for the rows that
    survive the shrinkage.
    """
    R = sp.csr_array(R)
    if M is None:
        M = factored_product(G, S)
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size == 0:
        return np.empty((0, R.shape[1]), dtype=np.float64)
    return R[rows].toarray() - M[rows] @ G.T


def project_relations(R, E_R, G: np.ndarray) -> np.ndarray:
    """The skinny projection ``(R − E_R) G`` shared by the S and G updates.

    ``R`` may be dense or CSR; ``E_R`` may be dense, row-sparse or ``None``
    (treated as zero).  The result is always a dense ``(n, c)`` array and no
    ``(n, n)`` intermediate is formed for sparse operands.
    """
    RG = R @ G
    if sp.issparse(R):
        RG = np.asarray(RG)
    if E_R is None:
        return RG
    if isinstance(E_R, RowSparseMatrix):
        if E_R.rows.size:
            RG[E_R.rows] -= E_R.values @ G
        return RG
    return RG - E_R @ G


def association_core(R, E_R, G: np.ndarray) -> np.ndarray:
    """The ``c × c`` core ``Gᵀ (R − E_R) G`` of the closed-form S update."""
    return G.T @ project_relations(R, E_R, G)


def reconstruction_error(R, G: np.ndarray, S: np.ndarray, E_R) -> float:
    """``‖R − G S Gᵀ − E_R‖²_F`` without materialising any ``(n, n)`` array.

    Expands the square into pairwise Frobenius inner products: the pure-R
    and pure-E terms come from their own storage, the ``G S Gᵀ`` cross terms
    are evaluated at the sparse patterns, and ``‖G S Gᵀ‖²_F`` collapses into
    the cluster space.  ``E_R`` may be dense, row-sparse or ``None``.
    """
    R = sp.csr_array(R) if sp.issparse(R) else np.asarray(R, dtype=np.float64)
    sparse_R = sp.issparse(R)
    M = factored_product(G, S)
    P = G.T @ G

    if sparse_R:
        r_sq = float(np.sum(R.data * R.data))
        r_dot_gsgt = pattern_inner(R, M, G)
    else:
        r_sq = float(np.sum(R * R))
        r_dot_gsgt = float(np.sum((R @ G) * M))
    gsgt_sq = _gram_inner(P, S)
    total = r_sq - 2.0 * r_dot_gsgt + gsgt_sq

    if E_R is None:
        return float(max(total, 0.0))
    if isinstance(E_R, RowSparseMatrix):
        e_sq = E_R.frobenius_squared()
        r_dot_e = E_R.inner(R)
        e_dot_gsgt = float(np.sum((E_R.values @ G) * M[E_R.rows]))
    else:
        E_R = np.asarray(E_R, dtype=np.float64)
        e_sq = float(np.sum(E_R * E_R))
        if sparse_R:
            r_dot_e = float(R.multiply(E_R).sum())
        else:
            r_dot_e = float(np.sum(R * E_R))
        e_dot_gsgt = float(np.sum((E_R @ G) * M))
    total += e_sq - 2.0 * r_dot_e + 2.0 * e_dot_gsgt
    return float(max(total, 0.0))
