"""Factored R-space computations for the sparse compute backend.

Every R-space quantity of Algorithm 2 — the association update (Eq. 18), the
membership numerators (Eq. 21), the error-matrix shrinkage (Eq. 25–27) and
the reconstruction term of the objective (Eq. 15) — involves the product
``G S Gᵀ``, which is dense even when the relation matrix ``R`` is sparse.
The dense backend materialises it; the kernels here never do.  Instead the
product stays factored as ``M Gᵀ`` with ``M = G S`` and is only ever

* multiplied by a skinny dense matrix (``G S Gᵀ G = M (Gᵀ G)``),
* evaluated at the sparse pattern of ``R`` (``(G S Gᵀ)ᵢⱼ = Mᵢ · Gⱼ`` for the
  ``nnz`` stored ``(i, j)`` pairs), or
* reduced through Frobenius/trace identities in the ``c × c`` cluster space
  (``‖G S Gᵀ‖²_F = tr(Sᵀ P S P)`` with ``P = Gᵀ G``).

That caps the per-iteration R-space cost at ``O(nnz·c + n·c²)`` time and
``O(nnz + n·c)`` memory instead of ``O(n²·c)`` / ``O(n²)`` — the same
complexity collapse the sparse graph pipeline already achieved for the
Laplacian side.  The error matrix ``E_R`` participates through the
row-sparse representation of :class:`repro.linalg.rowsparse.RowSparseMatrix`
(its surviving rows are dense, but there are only as many of them as there
are corrupted samples).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..linalg.rowsparse import RowSparseMatrix

__all__ = [
    "factored_product",
    "pattern_inner",
    "pattern_row_inner",
    "residual_row_norms",
    "residual_rows",
    "reconstruction_error",
    "project_relations",
    "association_core",
    "pair_residual_sq_row_norms",
    "pair_residual_rows",
    "pair_reconstruction_error",
]

#: Row-count chunk for gather-heavy pattern evaluations; bounds the transient
#: ``O(nnz_chunk · c)`` gather buffers without measurably slowing the kernel.
_PATTERN_CHUNK = 262_144


def factored_product(G: np.ndarray, S: np.ndarray) -> np.ndarray:
    """The skinny factor ``M = G S`` of the reconstruction ``G S Gᵀ = M Gᵀ``."""
    return G @ S


def pattern_row_inner(R: sp.csr_array, M: np.ndarray,
                      G: np.ndarray) -> np.ndarray:
    """Per-row inner products ``Σⱼ Rᵢⱼ (G S Gᵀ)ᵢⱼ`` against R's pattern.

    Evaluates ``(G S Gᵀ)ᵢⱼ = Mᵢ · Gⱼ`` only at the ``nnz`` stored entries of
    ``R`` and reduces them per row — ``O(nnz · c)`` time, ``O(nnz)`` memory
    (chunked gathers keep the transient buffers bounded).
    """
    R = sp.csr_array(R)
    n_rows = R.shape[0]
    result = np.zeros(n_rows, dtype=np.float64)
    if R.nnz == 0:
        return result
    row_of_entry = np.repeat(np.arange(n_rows), np.diff(R.indptr))
    for start in range(0, R.nnz, _PATTERN_CHUNK):
        stop = min(start + _PATTERN_CHUNK, R.nnz)
        entries = R.data[start:stop] * np.einsum(
            "ij,ij->i", M[row_of_entry[start:stop]], G[R.indices[start:stop]])
        result += np.bincount(row_of_entry[start:stop], weights=entries,
                              minlength=n_rows)
    return result


def pattern_inner(R: sp.csr_array, M: np.ndarray, G: np.ndarray) -> float:
    """Frobenius inner product ``⟨R, G S Gᵀ⟩`` against R's sparse pattern."""
    return float(np.sum(pattern_row_inner(R, M, G)))


def _gram_inner(P: np.ndarray, S: np.ndarray) -> float:
    """``‖G S Gᵀ‖²_F = tr(Sᵀ P S P)`` with the gram matrix ``P = Gᵀ G``."""
    return float(np.sum((S.T @ P @ S) * P))


def residual_row_norms(R: sp.csr_array, G: np.ndarray, S: np.ndarray, *,
                       M: np.ndarray | None = None,
                       P: np.ndarray | None = None) -> np.ndarray:
    """Row L2 norms of the residual ``Q = R − G S Gᵀ`` without densifying.

    Expands ``‖Qᵢ‖²`` into ``‖Rᵢ‖² − 2 Σⱼ Rᵢⱼ (G S Gᵀ)ᵢⱼ + (M P Mᵀ)ᵢᵢ`` —
    first term from the CSR data, cross term from the sparse pattern, last
    from the ``c × c`` gram space.  Tiny negative values from cancellation
    are clipped before the square root.
    """
    R = sp.csr_array(R)
    if M is None:
        M = factored_product(G, S)
    if P is None:
        P = G.T @ G
    data_sq = R.data * R.data
    row_sq = np.add.reduceat(np.concatenate([data_sq, [0.0]]), R.indptr[:-1])
    row_sq[np.diff(R.indptr) == 0] = 0.0
    cross = pattern_row_inner(R, M, G)
    gram_diag = np.einsum("ij,ij->i", M @ P, M)
    return np.sqrt(np.maximum(row_sq - 2.0 * cross + gram_diag, 0.0))


def residual_rows(R: sp.csr_array, G: np.ndarray, S: np.ndarray,
                  rows: np.ndarray, *,
                  M: np.ndarray | None = None) -> np.ndarray:
    """Materialise the residual rows ``(R − G S Gᵀ)[rows]`` as a dense block.

    Cost is ``O(k · n · c)`` for ``k`` requested rows — this is the only
    place the sparse backend pays for dense rows, and only for the rows that
    survive the shrinkage.
    """
    R = sp.csr_array(R)
    if M is None:
        M = factored_product(G, S)
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size == 0:
        return np.empty((0, R.shape[1]), dtype=np.float64)
    return R[rows].toarray() - M[rows] @ G.T


def project_relations(R, E_R, G: np.ndarray) -> np.ndarray:
    """The skinny projection ``(R − E_R) G`` shared by the S and G updates.

    ``R`` may be dense, CSR or ``None`` (a structurally absent relation
    block, treated as zero); ``E_R`` may be dense, row-sparse or ``None``.
    The result is always a dense ``(n, c)`` array and no ``(n, n)``
    intermediate is formed for sparse operands.  The operands need not be
    square: the blockwise solver calls this per relation pair with
    ``R_{tu}`` and ``G_u``.
    """
    if R is None:
        if E_R is None:
            raise ValueError("project_relations needs at least one operand")
        RG = np.zeros((E_R.shape[0], G.shape[1]), dtype=np.float64)
    else:
        RG = R @ G
        if sp.issparse(R):
            RG = np.asarray(RG)
    if E_R is None:
        return RG
    if isinstance(E_R, RowSparseMatrix):
        if E_R.rows.size:
            RG[E_R.rows] -= E_R.values @ G
        return RG
    return RG - E_R @ G


def association_core(R, E_R, G: np.ndarray) -> np.ndarray:
    """The ``c × c`` core ``Gᵀ (R − E_R) G`` of the closed-form S update."""
    return G.T @ project_relations(R, E_R, G)


# --------------------------------------------------------------- pair kernels
#
# The blocked solver never assembles the global R, E_R or G S Gᵀ: every
# R-space quantity decomposes over the ``(t, u)`` relation pairs, with the
# pair's reconstruction ``G_t S_{tu} G_uᵀ`` kept factored as ``M G_uᵀ``
# (``M = G_t S_{tu}``).  The kernels below are the per-pair counterparts of
# the square kernels above; ``R_tu`` may be dense, CSR or ``None`` (an
# absent relation block).


def pair_residual_sq_row_norms(R_tu, G_t: np.ndarray, S_tu: np.ndarray,
                               G_u: np.ndarray, *,
                               M: np.ndarray | None = None,
                               P_u: np.ndarray | None = None) -> np.ndarray:
    """Squared row norms of the pair residual ``R_tu − G_t S_tu G_uᵀ``.

    Returned unsummed and unsquare-rooted so the error-matrix update can
    accumulate them across a type's relation pairs before taking the row
    norm of the type's full residual rows.  Never densifies a CSR ``R_tu``.
    """
    if M is None:
        M = G_t @ S_tu
    if P_u is None:
        P_u = G_u.T @ G_u
    gram_diag = np.einsum("ij,ij->i", M @ P_u, M)
    if R_tu is None:
        return gram_diag
    if sp.issparse(R_tu):
        R_tu = sp.csr_array(R_tu)
        data_sq = R_tu.data * R_tu.data
        row_sq = np.add.reduceat(np.concatenate([data_sq, [0.0]]),
                                 R_tu.indptr[:-1])
        row_sq[np.diff(R_tu.indptr) == 0] = 0.0
        cross = pattern_row_inner(R_tu, M, G_u)
        return row_sq - 2.0 * cross + gram_diag
    residual = R_tu - M @ G_u.T
    return np.einsum("ij,ij->i", residual, residual)


def pair_residual_rows(R_tu, G_t: np.ndarray, S_tu: np.ndarray,
                       G_u: np.ndarray, rows: np.ndarray, *,
                       M: np.ndarray | None = None) -> np.ndarray:
    """Materialise the pair-residual rows ``(R_tu − G_t S_tu G_uᵀ)[rows]``."""
    if M is None:
        M = G_t @ S_tu
    rows = np.asarray(rows, dtype=np.int64)
    n_cols = G_u.shape[0]
    if rows.size == 0:
        return np.empty((0, n_cols), dtype=np.float64)
    reconstruction = M[rows] @ G_u.T
    if R_tu is None:
        return -reconstruction
    if sp.issparse(R_tu):
        return sp.csr_array(R_tu)[rows].toarray() - reconstruction
    return R_tu[rows] - reconstruction


def pair_reconstruction_error(R_tu, G_t: np.ndarray, S_tu: np.ndarray,
                              G_u: np.ndarray, E_tu) -> float:
    """``‖R_tu − G_t S_tu G_uᵀ − E_tu‖²_F`` for one relation pair.

    Expands the square into pairwise Frobenius inner products whenever any
    operand is sparse, exactly like :func:`reconstruction_error` does for
    the global matrices; with all-dense operands the residual is formed
    directly.  ``E_tu`` may be dense, row-sparse or ``None``.
    """
    sparse_R = sp.issparse(R_tu)
    if not sparse_R and R_tu is not None and not isinstance(E_tu, RowSparseMatrix):
        M = G_t @ S_tu
        residual = R_tu - M @ G_u.T
        if E_tu is not None:
            residual = residual - E_tu
        return float(np.sum(residual * residual))

    M = G_t @ S_tu
    P_u = G_u.T @ G_u
    gsgt_sq = float(np.sum((M @ P_u) * M))
    if R_tu is None:
        total = gsgt_sq
    elif sparse_R:
        R_tu = sp.csr_array(R_tu)
        total = (float(np.sum(R_tu.data * R_tu.data))
                 - 2.0 * pattern_inner(R_tu, M, G_u) + gsgt_sq)
    else:
        total = (float(np.sum(R_tu * R_tu))
                 - 2.0 * float(np.sum((R_tu @ G_u) * M)) + gsgt_sq)

    if E_tu is None:
        return float(max(total, 0.0))
    if isinstance(E_tu, RowSparseMatrix):
        e_sq = E_tu.frobenius_squared()
        r_dot_e = 0.0 if R_tu is None else E_tu.inner(R_tu)
        e_dot_gsgt = float(np.sum((E_tu.values @ G_u) * M[E_tu.rows]))
    else:
        E_tu = np.asarray(E_tu, dtype=np.float64)
        e_sq = float(np.sum(E_tu * E_tu))
        if R_tu is None:
            r_dot_e = 0.0
        elif sparse_R:
            r_dot_e = float(R_tu.multiply(E_tu).sum())
        else:
            r_dot_e = float(np.sum(R_tu * E_tu))
        e_dot_gsgt = float(np.sum((E_tu @ G_u) * M))
    total += e_sq - 2.0 * r_dot_e + 2.0 * e_dot_gsgt
    return float(max(total, 0.0))


def reconstruction_error(R, G: np.ndarray, S: np.ndarray, E_R) -> float:
    """``‖R − G S Gᵀ − E_R‖²_F`` without materialising any ``(n, n)`` array.

    Expands the square into pairwise Frobenius inner products: the pure-R
    and pure-E terms come from their own storage, the ``G S Gᵀ`` cross terms
    are evaluated at the sparse patterns, and ``‖G S Gᵀ‖²_F`` collapses into
    the cluster space.  ``E_R`` may be dense, row-sparse or ``None``.
    """
    R = sp.csr_array(R) if sp.issparse(R) else np.asarray(R, dtype=np.float64)
    sparse_R = sp.issparse(R)
    M = factored_product(G, S)
    P = G.T @ G

    if sparse_R:
        r_sq = float(np.sum(R.data * R.data))
        r_dot_gsgt = pattern_inner(R, M, G)
    else:
        r_sq = float(np.sum(R * R))
        r_dot_gsgt = float(np.sum((R @ G) * M))
    gsgt_sq = _gram_inner(P, S)
    total = r_sq - 2.0 * r_dot_gsgt + gsgt_sq

    if E_R is None:
        return float(max(total, 0.0))
    if isinstance(E_R, RowSparseMatrix):
        e_sq = E_R.frobenius_squared()
        r_dot_e = E_R.inner(R)
        e_dot_gsgt = float(np.sum((E_R.values @ G) * M[E_R.rows]))
    else:
        E_R = np.asarray(E_R, dtype=np.float64)
        e_sq = float(np.sum(E_R * E_R))
        if sparse_R:
            r_dot_e = float(R.multiply(E_R).sum())
        else:
            r_dot_e = float(np.sum(R * E_R))
        e_dot_gsgt = float(np.sum((E_R @ G) * M))
    total += e_sq - 2.0 * r_dot_e + 2.0 * e_dot_gsgt
    return float(max(total, 0.0))
