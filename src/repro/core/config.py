"""Configuration object for the RHCHME estimator.

Collects every tunable of Algorithm 2 and of the heterogeneous manifold
ensemble in one validated dataclass so that experiment harnesses can sweep
parameters declaratively (the paper's Figure 2 sweeps λ, γ, α and β).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from .._validation import check_positive_float, check_positive_int
from ..graph.weights import WeightingScheme
from ..linalg.backend import check_backend
from .parallel import EXECUTOR_KINDS

__all__ = ["RHCHMEConfig"]


@dataclass(frozen=True)
class RHCHMEConfig:
    """Hyper-parameters of RHCHME.

    Parameters
    ----------
    lam:
        Weight λ of the graph regulariser ``tr(Gᵀ L G)``; the paper finds a
        fairly large value (≈250) works best.
    gamma:
        Noise-tolerance weight γ of the multiple-subspace objective (Eq. 9);
        stable region [10, 50] in the paper.
    alpha:
        Ensemble trade-off α between the subspace Laplacian and the p-NN
        Laplacian (Eq. 12); stable region [0.25, 2].
    beta:
        Weight β of the L2,1 penalty on the sparse error matrix (Eq. 15);
        the paper reports 50 as the sweet spot.
    p:
        Neighbour size of the p-NN graph (paper: 5).
    weighting:
        Edge weighting scheme of the p-NN member (paper: cosine).
    laplacian_kind:
        Laplacian normalisation used for both ensemble members.
    max_iter:
        Maximum multiplicative-update iterations of Algorithm 2.
    tol:
        Relative objective-decrease tolerance for convergence.
    use_error_matrix:
        Ablation switch: disable the sparse error matrix E_R (reduces the
        objective to a graph-regularised SNMTF with ℓ1-normalised G).
    use_subspace_member, use_pnn_member:
        Ablation switches for the two ensemble members.
    normalize_relations:
        Scale each inter-type block of R to unit Frobenius norm.
    init:
        ``"kmeans"`` (paper default) or ``"random"`` initialisation of G.
    init_smoothing:
        Positive mass added to the one-hot k-means initialisation so the
        multiplicative updates can move every entry.
    subspace_max_iter, subspace_tol:
        SPG budget of the subspace representation solver.
    random_state:
        Seed shared by k-means initialisation and the subspace solver.
    track_metrics_every:
        Record FScore/NMI against ground truth every this many iterations
        when labels are available (0 disables tracking); used to reproduce
        the convergence curves of Figure 3.
    zeta:
        Small perturbation regularising the L2,1 reweighting when a residual
        row is exactly zero (Section III.D.3).
    backend:
        Compute backend for the graph pipeline: ``"dense"`` materialises the
        affinities and the ensemble Laplacian as numpy arrays (seed
        behaviour), ``"sparse"`` keeps them as scipy CSR matrices end to end
        (≤ 2p non-zeros per p-NN row, no ``O(n²)`` intermediates), and
        ``"auto"`` (default) selects by dataset size — see
        :func:`repro.linalg.backend.resolve_backend` — except that it stays
        dense while the subspace member is active with ``subspace_topk``
        unset, whose affinity is then dense in substance.  ``"torch"`` runs
        the blocked solver kernels through the optional
        :mod:`repro.linalg.torch_engine` (CPU or CUDA; raises a clear
        :class:`ImportError` with an install hint when torch is missing),
        and ``"auto"`` prefers it above the size threshold when torch sees
        a CUDA device.  All backends produce the same labels and objective
        trace up to floating-point noise (cross-engine parity is
        test-enforced at 1e-6).
    error_row_tol:
        Relative survival threshold of the row-sparse error matrix under the
        sparse backend: after the ``(β D + I)⁻¹`` shrinkage (Eq. 27), rows of
        ``E_R`` whose L2 norm is at most ``error_row_tol`` times the RMS row
        norm of ``R`` are treated as exactly zero and never materialised.
        The default ``1e-8`` only drops numerically dead rows (exact up to
        floating point — dense/sparse parity is test-enforced); raising it
        to ``1e-3``–``1e-2`` keeps only genuinely corrupted samples' rows,
        which is what bounds E_R memory at ``O(k·n)`` for ``k`` corrupted
        objects and makes the sparse R-space fit ``O(nnz)`` end to end.
        The dense backend applies the same rule (zeroing instead of
        skipping), so both backends optimise the same objective.
    subspace_topk:
        Optional top-k thresholding of the (inherently dense) subspace-member
        affinity: keep only the k strongest similarities per row, united
        symmetrically like the p-NN edges of Eq. 3.  This bounds the subspace
        member at ``2k`` non-zeros per row so ``backend="sparse"`` (and the
        ``"auto"`` choice) is no longer forced dense when
        ``use_subspace_member=True``.  ``None`` (default) keeps the exact
        dense affinity; ``k >= n - 1`` is exact as well (only a zero row
        minimum can be dropped), so parity degrades gracefully.
    n_jobs:
        Worker threads for the blocked solver core.  The per-type G updates
        and the per-pair S / E_R / objective terms are independent given the
        other factors, so they fan out across a thread pool (numpy/scipy
        release the GIL inside the underlying kernels).  ``1`` (default)
        runs serially with zero pool overhead; ``-1`` uses every available
        CPU.  The value never changes the optimisation — only which thread
        computes each block — so results are identical for every setting.
    executor:
        How ``n_jobs`` workers execute the blocked tasks: ``"thread"``
        (default) uses a thread pool (numpy/scipy release the GIL inside
        their kernels), ``"process"`` a spawn-context process pool for
        BLAS-saturated machines where extra threads only contend for cores.
        Results are identical for both kinds (test-enforced); like
        ``n_jobs`` this is a run-time knob and is not persisted in
        artifacts.
    torch_device:
        Device of the ``"torch"`` backend's engine: ``"auto"`` (default)
        picks CUDA when visible and CPU otherwise; ``"cpu"`` and
        ``"cuda"``/``"cuda:k"`` force a device (erroring at fit time if
        CUDA is requested but absent).  Ignored by the numpy backends; a
        run-time knob, not persisted in artifacts.
    diagnostics:
        Record fit-time health diagnostics (see
        :class:`repro.diagnostics.SpectralMonitor`): per-type spectral
        metrics of the ensemble Laplacian blocks plus per-iteration
        membership-churn trajectories, carried in the fit result's
        ``extras["diagnostics"]`` and persisted into the artifact
        sidecar.  Off by default; never changes the optimisation.  Like
        ``n_jobs`` this is a run-time knob, not a model parameter, and is
        not persisted in artifacts.
    """

    lam: float = 250.0
    gamma: float = 25.0
    alpha: float = 1.0
    beta: float = 50.0
    p: int = 5
    weighting: WeightingScheme | str = WeightingScheme.COSINE
    laplacian_kind: str = "unnormalized"
    max_iter: int = 100
    tol: float = 1e-5
    use_error_matrix: bool = True
    use_subspace_member: bool = True
    use_pnn_member: bool = True
    normalize_relations: bool = True
    init: str = "kmeans"
    init_smoothing: float = 0.2
    subspace_max_iter: int = 150
    subspace_tol: float = 1e-4
    random_state: int | None = None
    track_metrics_every: int = 1
    zeta: float = 1e-10
    backend: str = "auto"
    error_row_tol: float = 1e-8
    subspace_topk: int | None = None
    n_jobs: int = 1
    executor: str = "thread"
    torch_device: str = "auto"
    diagnostics: bool = False

    def __post_init__(self) -> None:
        check_positive_float(self.lam, name="lam", minimum=0.0, inclusive=True)
        check_positive_float(self.gamma, name="gamma")
        check_positive_float(self.alpha, name="alpha", minimum=0.0, inclusive=True)
        check_positive_float(self.beta, name="beta", minimum=0.0, inclusive=True)
        check_positive_int(self.p, name="p")
        check_positive_int(self.max_iter, name="max_iter")
        check_positive_float(self.tol, name="tol")
        check_positive_float(self.zeta, name="zeta")
        check_positive_float(self.init_smoothing, name="init_smoothing",
                             minimum=0.0, inclusive=True)
        if self.init not in {"kmeans", "random"}:
            raise ValueError(f"init must be 'kmeans' or 'random', got {self.init!r}")
        if self.track_metrics_every < 0:
            raise ValueError("track_metrics_every must be >= 0")
        check_backend(self.backend)
        check_positive_float(self.error_row_tol, name="error_row_tol",
                             minimum=0.0, inclusive=True)
        if self.error_row_tol >= 1.0:
            raise ValueError(
                f"error_row_tol is relative to R's RMS row norm and must be "
                f"< 1, got {self.error_row_tol}")
        if self.subspace_topk is not None:
            check_positive_int(self.subspace_topk, name="subspace_topk")
        if not isinstance(self.n_jobs, int) or isinstance(self.n_jobs, bool) \
                or (self.n_jobs < 1 and self.n_jobs != -1):
            raise ValueError(
                f"n_jobs must be a positive int or -1 (all CPUs), got "
                f"{self.n_jobs!r}")
        if self.executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"executor must be one of {list(EXECUTOR_KINDS)}, got "
                f"{self.executor!r}")
        device = self.torch_device
        if not (device in ("auto", "cpu") or
                (isinstance(device, str) and device.startswith("cuda"))):
            raise ValueError(
                f"torch_device must be 'auto', 'cpu' or 'cuda[:k]', got "
                f"{device!r}")
        if not isinstance(self.diagnostics, bool):
            raise ValueError(
                f"diagnostics must be a bool, got {self.diagnostics!r}")
        object.__setattr__(self, "weighting", WeightingScheme.coerce(self.weighting))

    def with_overrides(self, **overrides: Any) -> "RHCHMEConfig":
        """Return a copy with the given fields replaced (validated again)."""
        return replace(self, **overrides)

    def describe(self) -> dict[str, Any]:
        """Plain dictionary of the main tunables for experiment reports."""
        return {
            "lambda": self.lam,
            "gamma": self.gamma,
            "alpha": self.alpha,
            "beta": self.beta,
            "p": self.p,
            "weighting": self.weighting.value,
            "max_iter": self.max_iter,
            "init": self.init,
            "backend": self.backend,
        }
