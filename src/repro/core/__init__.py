"""RHCHME — the paper's primary contribution.

Robust High-order Co-clustering via Heterogeneous Manifold Ensemble solves

    min_{G ≥ 0, G 1_c = 1_n}  ‖R − G S Gᵀ − E_R‖²_F + β ‖E_R‖_{2,1}
                              + λ tr(Gᵀ L G)                       (Eq. 15)

by alternating closed-form / multiplicative updates for the association
matrix S (Eq. 18), the cluster membership matrix G (Eq. 21 + row-ℓ1
normalisation), and the sample-wise sparse error matrix E_R (Eq. 27), with
``L`` the heterogeneous manifold ensemble of Eq. 12.

The solver core is *blocked*: G lives as per-type membership blocks, L as
per-type Laplacian blocks, R and E_R as per-pair cross-type blocks, and the
updates run as per-type / per-pair kernels (optionally threaded across a
``RHCHMEConfig(n_jobs=...)`` worker pool).  The global stacked matrices are
compatibility adapters, never hot-path storage.

* :mod:`repro.core.config` — :class:`RHCHMEConfig`, every tunable in one place.
* :mod:`repro.core.objective` — objective evaluation and its decomposition
  (global and blockwise).
* :mod:`repro.core.updates` — the three update rules (global and blockwise).
* :mod:`repro.core.rspace` — factored sparse-backend kernels for every
  R-space quantity (the ``G S Gᵀ`` product is never materialised),
  including the per-pair kernels of the blocked core.
* :mod:`repro.core.state` — blocked factorisation state and initialisation.
* :mod:`repro.core.schedule` — delta scheduling (:class:`DirtySet`): which
  blocks an incremental refit recomputes and which stay frozen.
* :mod:`repro.core.parallel` — the per-type/per-pair thread pool.
* :mod:`repro.core.convergence` — iteration history bookkeeping.
* :mod:`repro.core.rhchme` — the :class:`RHCHME` estimator (Algorithm 2).
"""

from .config import RHCHMEConfig
from .convergence import IterationRecord, TraceRecorder
from .objective import ObjectiveBreakdown, evaluate_objective, evaluate_objective_blocks
from .parallel import TypeWorkPool
from .rhchme import RHCHME, RHCHMEResult
from .schedule import DeltaSchedule, DirtySet
from .state import FactorizationState, initialize_state
from .updates import (update_association, update_association_blocks,
                      update_error_matrix, update_error_matrix_blocks,
                      update_membership, update_membership_blocks)

__all__ = [
    "DeltaSchedule",
    "DirtySet",
    "FactorizationState",
    "IterationRecord",
    "ObjectiveBreakdown",
    "RHCHME",
    "RHCHMEConfig",
    "RHCHMEResult",
    "TraceRecorder",
    "TypeWorkPool",
    "evaluate_objective",
    "evaluate_objective_blocks",
    "initialize_state",
    "update_association",
    "update_association_blocks",
    "update_error_matrix",
    "update_error_matrix_blocks",
    "update_membership",
    "update_membership_blocks",
]
