"""Factorisation state (G, S, E_R) and its initialisation.

Algorithm 2 of the paper initialises the cluster membership matrix G with
k-means on each type's relational profile (its rows of R), the association
matrix S from the first S-update, and the sparse error matrix E_R with zeros.
The state object also records the block structure so per-type blocks of G
can be extracted for label assignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np
import scipy.sparse as sp

from .._validation import (as_float_array, check_non_negative,
                           check_positive_float, check_random_state)
from ..cluster.assignments import labels_to_membership
from ..cluster.kmeans import KMeans
from ..exceptions import ShapeError, ValidationError
from ..linalg.blocks import BlockSpec, block_diagonal
from ..linalg.normalize import row_normalize_l1
from ..linalg.rowsparse import RowSparseMatrix
from ..relational.dataset import MultiTypeRelationalData

__all__ = ["FactorizationState", "initialize_state",
           "initialize_membership_blocks", "warm_start_state"]


@dataclass
class FactorizationState:
    """Mutable state of the alternating optimisation.

    Attributes
    ----------
    G:
        ``(n, c)`` block-diagonal cluster membership matrix (rows ℓ1-normalised).
    S:
        ``(c, c)`` association matrix.
    E_R:
        ``(n, n)`` sample-wise sparse error matrix — a dense array under the
        dense backend, a :class:`~repro.linalg.rowsparse.RowSparseMatrix`
        (only the rows surviving the L2,1 shrinkage are materialised) under
        the sparse backend.
    object_spec, cluster_spec:
        Block partitions of objects and clusters by type.
    """

    G: np.ndarray
    S: np.ndarray
    E_R: np.ndarray | RowSparseMatrix
    object_spec: BlockSpec
    cluster_spec: BlockSpec
    iteration: int = 0
    extras: dict = field(default_factory=dict)

    def membership_block(self, type_index: int) -> np.ndarray:
        """Return the G block (objects × clusters) of one type."""
        return self.G[self.object_spec.slice(type_index),
                      self.cluster_spec.slice(type_index)]

    def labels_for_type(self, type_index: int) -> np.ndarray:
        """Hard labels of one type (argmax over its own cluster columns)."""
        block = self.membership_block(type_index)
        return np.argmax(block, axis=1).astype(np.int64)

    def copy(self) -> "FactorizationState":
        """Deep copy of the numeric state (block specs are immutable)."""
        return FactorizationState(G=self.G.copy(), S=self.S.copy(),
                                  E_R=self.E_R.copy(),
                                  object_spec=self.object_spec,
                                  cluster_spec=self.cluster_spec,
                                  iteration=self.iteration,
                                  extras=dict(self.extras))


def initialize_membership_blocks(data: MultiTypeRelationalData, R, *,
                                 init: str = "kmeans", smoothing: float = 0.2,
                                 random_state=None) -> list[np.ndarray]:
    """Initialise each type's membership block.

    ``init="kmeans"`` clusters each type by k-means on its rows of the
    inter-type matrix R (its relational profile), which is how the paper's
    Algorithm 2 obtains G0.  ``init="random"`` draws uniform positive blocks.
    Both variants end with strictly positive, row-ℓ1-normalised blocks so the
    multiplicative updates are well defined.  ``R`` may be dense or CSR;
    sparse profiles are densified one type at a time for the k-means pass.
    """
    rng = check_random_state(random_state)
    object_spec = data.object_block_spec()
    blocks: list[np.ndarray] = []
    for index, object_type in enumerate(data.types):
        n_objects, n_clusters = object_type.n_objects, object_type.n_clusters
        if init == "random":
            block = rng.uniform(0.1, 1.0, size=(n_objects, n_clusters))
        else:
            profile = R[object_spec.slice(index), :]
            if sp.issparse(profile):
                # k-means runs on the dense per-type slice so both backends
                # cluster bit-identical profiles; the ``(n_k, n)`` transient
                # exists only during initialisation (use ``init="random"`` or
                # a warm start for a strictly O(nnz) memory profile).
                profile = profile.toarray()
            seed = int(rng.integers(0, 2**31 - 1))
            if n_clusters >= n_objects:
                labels = np.arange(n_objects) % n_clusters
            else:
                labels = KMeans(n_clusters, n_init=3, max_iter=50,
                                random_state=seed).fit_predict(profile)
            block = labels_to_membership(labels, n_clusters,
                                         smoothing=max(smoothing, 1e-3),
                                         random_state=rng)
        blocks.append(row_normalize_l1(block))
    return blocks


def warm_start_state(data: MultiTypeRelationalData,
                     blocks: Mapping[str, np.ndarray], *,
                     association: np.ndarray | None = None,
                     error_matrix: np.ndarray | None = None,
                     smoothing: float = 0.05) -> FactorizationState:
    """Build a factorisation state from per-type membership blocks.

    This is the warm-start entry point of the fitter: a caller that already
    holds (approximate) membership blocks for every type — typically the
    blocks of a previously fitted model, extended with rows for newly
    arrived objects — assembles them into an initial state so
    :meth:`repro.core.RHCHME.fit` refines an informed iterate instead of a
    cold k-means initialisation.

    Parameters
    ----------
    data:
        The dataset about to be fitted; block shapes are validated against
        its types.
    blocks:
        Mapping from type name to a non-negative
        ``(n_objects, n_clusters)`` membership block.  Every type of
        ``data`` must be present.
    association, error_matrix:
        Optional warm starts for ``S`` and ``E_R`` (zeros when omitted;
        ``S`` is recomputed from ``G`` at the start of the fit anyway).
        ``E_R`` may be a dense array or a
        :class:`~repro.linalg.rowsparse.RowSparseMatrix`; when omitted the
        all-zero E_R is represented row-sparse (no stored rows), so a
        warm start never allocates an ``O(n²)`` zero block — the first
        error-matrix update of the fit re-establishes the backend's
        representation either way.
    smoothing:
        Fraction of uniform mass mixed into each row after ℓ1
        normalisation.  The multiplicative updates cannot move an entry off
        an exact zero, so a small floor keeps every cluster reachable for
        the new objects; ``0`` disables the mixing.
    """
    smoothing = check_positive_float(smoothing, name="smoothing",
                                     minimum=0.0, inclusive=True)
    if smoothing >= 1.0:
        raise ValidationError(f"smoothing must be < 1, got {smoothing}")
    object_spec = data.object_block_spec()
    cluster_spec = data.cluster_block_spec()
    prepared: list[np.ndarray] = []
    for object_type in data.types:
        if object_type.name not in blocks:
            raise ValidationError(
                f"warm start is missing a membership block for type "
                f"{object_type.name!r}; got blocks for {sorted(blocks)}")
        block = as_float_array(blocks[object_type.name],
                               name=f"blocks[{object_type.name!r}]", ndim=2)
        expected = (object_type.n_objects, object_type.n_clusters)
        if block.shape != expected:
            raise ShapeError(
                f"warm-start block for type {object_type.name!r} has shape "
                f"{block.shape}, expected {expected}")
        check_non_negative(block, name=f"blocks[{object_type.name!r}]")
        block = row_normalize_l1(block)
        if smoothing > 0.0:
            block = ((1.0 - smoothing) * block
                     + smoothing / object_type.n_clusters)
        prepared.append(block)
    n_objects = object_spec.total
    n_clusters = cluster_spec.total
    if association is None:
        association = np.zeros((n_clusters, n_clusters))
    else:
        association = as_float_array(association, name="association", ndim=2)
        if association.shape != (n_clusters, n_clusters):
            raise ShapeError(
                f"association has shape {association.shape}, expected "
                f"{(n_clusters, n_clusters)}")
        association = association.copy()
    if error_matrix is None:
        error_matrix = RowSparseMatrix.zeros((n_objects, n_objects))
    elif isinstance(error_matrix, RowSparseMatrix):
        if error_matrix.shape != (n_objects, n_objects):
            raise ShapeError(
                f"error_matrix has shape {error_matrix.shape}, expected "
                f"{(n_objects, n_objects)}")
        error_matrix = error_matrix.copy()
    else:
        error_matrix = as_float_array(error_matrix, name="error_matrix", ndim=2)
        if error_matrix.shape != (n_objects, n_objects):
            raise ShapeError(
                f"error_matrix has shape {error_matrix.shape}, expected "
                f"{(n_objects, n_objects)}")
        error_matrix = error_matrix.copy()
    return FactorizationState(G=block_diagonal(prepared), S=association,
                              E_R=error_matrix, object_spec=object_spec,
                              cluster_spec=cluster_spec)


def initialize_state(data: MultiTypeRelationalData, R, *,
                     init: str = "kmeans", smoothing: float = 0.2,
                     random_state=None) -> FactorizationState:
    """Build the initial factorisation state for Algorithm 2.

    The error matrix starts at zero in the representation matching ``R``:
    a dense array for a dense ``R``, an empty (no stored rows)
    :class:`~repro.linalg.rowsparse.RowSparseMatrix` for a CSR ``R`` — the
    sparse backend never allocates the ``O(n²)`` zero block.
    """
    object_spec = data.object_block_spec()
    cluster_spec = data.cluster_block_spec()
    blocks = initialize_membership_blocks(data, R, init=init, smoothing=smoothing,
                                          random_state=random_state)
    G = block_diagonal(blocks)
    n_objects = object_spec.total
    n_clusters = cluster_spec.total
    S = np.zeros((n_clusters, n_clusters))
    E_R = (RowSparseMatrix.zeros((n_objects, n_objects)) if sp.issparse(R)
           else np.zeros((n_objects, n_objects)))
    return FactorizationState(G=G, S=S, E_R=E_R, object_spec=object_spec,
                              cluster_spec=cluster_spec)
