"""Factorisation state (per-type G blocks, S, E_R) and its initialisation.

Algorithm 2 of the paper initialises the cluster membership matrix G with
k-means on each type's relational profile (its rows of R), the association
matrix S from the first S-update, and the sparse error matrix E_R with zeros.

The state is stored *blocked*: G lives as one ``(n_t, c_t)`` membership
block per object type (``G_blocks``), never as the globally stacked
``(n, c)`` matrix — the global form is block diagonal by construction, so
the stacked representation inflates memory and every update's work by the
number of types while the off-diagonal zeros carry no information.  The
:attr:`FactorizationState.G` property assembles (and its setter splits) the
global matrix on demand, so baselines and tests that reason about the
stacked form keep working; the solver's hot path only ever touches the
blocks.  ``S`` stays a single ``(c, c)`` array (it is tiny — cluster space)
and ``E_R`` keeps its global dense / row-sparse representation, which the
blockwise kernels slice into per-pair views for free.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np
import scipy.sparse as sp

from .._validation import (as_float_array, check_non_negative,
                           check_positive_float, check_random_state)
from ..cluster.assignments import labels_to_membership
from ..cluster.kmeans import KMeans
from ..exceptions import ShapeError, ValidationError
from ..linalg.blocks import BlockSpec, block_diagonal, extract_factor_blocks
from ..linalg.normalize import row_normalize_l1
from ..linalg.rowsparse import RowSparseMatrix
from ..relational.dataset import MultiTypeRelationalData

__all__ = ["FactorizationState", "initialize_state",
           "initialize_membership_blocks", "warm_start_state"]


class FactorizationState:
    """Mutable state of the alternating optimisation.

    Attributes
    ----------
    G_blocks:
        Per-type membership blocks ``G_t`` of shape ``(n_t, c_t)`` (rows
        ℓ1-normalised) — the authoritative storage of G.
    S:
        ``(c, c)`` association matrix (zero diagonal blocks).
    E_R:
        ``(n, n)`` sample-wise sparse error matrix — a dense array under the
        dense backend, a :class:`~repro.linalg.rowsparse.RowSparseMatrix`
        (only the rows surviving the L2,1 shrinkage are materialised) under
        the sparse backend.
    object_spec, cluster_spec:
        Block partitions of objects and clusters by type.

    Construct with either ``G_blocks`` (the native form) or a globally
    stacked ``G`` (split into blocks on entry; entries outside the diagonal
    blocks are structural zeros and are discarded).  Reading :attr:`G`
    assembles a fresh stacked matrix; assigning to it splits the assignment
    back into blocks — note that *in-place* mutation of the assembled array
    therefore does not write through to the state.
    """

    def __init__(self, G: np.ndarray | None = None,
                 S: np.ndarray | None = None,
                 E_R: np.ndarray | RowSparseMatrix | None = None,
                 object_spec: BlockSpec | None = None,
                 cluster_spec: BlockSpec | None = None,
                 iteration: int = 0,
                 extras: dict | None = None, *,
                 G_blocks: Sequence[np.ndarray] | None = None) -> None:
        if object_spec is None or cluster_spec is None:
            raise ValidationError(
                "FactorizationState needs both an object_spec and a cluster_spec")
        self.object_spec = object_spec
        self.cluster_spec = cluster_spec
        if G_blocks is not None:
            blocks = [np.asarray(block, dtype=np.float64) for block in G_blocks]
            expected = list(zip(object_spec.sizes, cluster_spec.sizes))
            if [block.shape for block in blocks] != expected:
                raise ShapeError(
                    f"G_blocks have shapes {[b.shape for b in blocks]}, "
                    f"expected {expected}")
            self.G_blocks = blocks
        elif G is not None:
            self.G_blocks = extract_factor_blocks(G, object_spec, cluster_spec)
        else:
            raise ValidationError(
                "FactorizationState needs either G or G_blocks")
        self.S = S
        self.E_R = E_R
        self.iteration = iteration
        self.extras = dict(extras) if extras else {}

    # ------------------------------------------------------- global adapters
    @property
    def G(self) -> np.ndarray:
        """The globally stacked block-diagonal ``(n, c)`` membership matrix.

        Assembled fresh on every read — a compatibility adapter for code
        that reasons about the stacked form, not a hot-path accessor.
        """
        return block_diagonal(self.G_blocks)

    @G.setter
    def G(self, value: np.ndarray) -> None:
        self.G_blocks = extract_factor_blocks(value, self.object_spec,
                                              self.cluster_spec)

    def membership_block(self, type_index: int) -> np.ndarray:
        """Return the G block (objects × clusters) of one type."""
        if not 0 <= type_index < len(self.G_blocks):
            raise IndexError(
                f"type index {type_index} out of range [0, {len(self.G_blocks)})")
        return self.G_blocks[type_index]

    def labels_for_type(self, type_index: int) -> np.ndarray:
        """Hard labels of one type (argmax over its own cluster columns)."""
        block = self.membership_block(type_index)
        return np.argmax(block, axis=1).astype(np.int64)

    def copy(self) -> "FactorizationState":
        """Deep copy of the numeric state (block specs are immutable)."""
        return FactorizationState(
            G_blocks=[block.copy() for block in self.G_blocks],
            S=None if self.S is None else self.S.copy(),
            E_R=None if self.E_R is None else self.E_R.copy(),
            object_spec=self.object_spec,
            cluster_spec=self.cluster_spec,
            iteration=self.iteration,
            extras=dict(self.extras))


def _relational_profile(R, object_spec: BlockSpec, index: int):
    """Type ``index``'s rows of R (its relational profile), dense or CSR.

    ``R`` is either a global ``(n, n)`` matrix or a mapping of per-pair
    relation blocks keyed by ordered type-index pairs (the blocked solver's
    representation); in the blocked case the profile is stitched from the
    type's row blocks without ever assembling the global matrix.
    """
    if not isinstance(R, Mapping):
        return R[object_spec.slice(index), :]
    use_sparse = any(sp.issparse(block) for block in R.values())
    pieces = []
    for other in range(object_spec.n_types):
        block = R.get((index, other))
        if block is None:
            shape = (object_spec.sizes[index], object_spec.sizes[other])
            pieces.append(sp.csr_array(shape, dtype=np.float64) if use_sparse
                          else np.zeros(shape))
        else:
            pieces.append(block)
    if use_sparse:
        return sp.csr_array(sp.hstack(pieces, format="csr"))
    return np.hstack(pieces)


def _relations_are_sparse(R) -> bool:
    """Whether ``R`` (global matrix or pair-block mapping) is CSR-backed."""
    if isinstance(R, Mapping):
        return any(sp.issparse(block) for block in R.values())
    return sp.issparse(R)


def initialize_membership_blocks(data: MultiTypeRelationalData, R, *,
                                 init: str = "kmeans", smoothing: float = 0.2,
                                 random_state=None) -> list[np.ndarray]:
    """Initialise each type's membership block.

    ``init="kmeans"`` clusters each type by k-means on its rows of the
    inter-type matrix R (its relational profile), which is how the paper's
    Algorithm 2 obtains G0.  ``init="random"`` draws uniform positive blocks.
    Both variants end with strictly positive, row-ℓ1-normalised blocks so the
    multiplicative updates are well defined.  ``R`` may be a dense array, a
    CSR matrix or a mapping of per-pair relation blocks; sparse profiles are
    clustered directly in CSR form (:class:`~repro.cluster.kmeans.KMeans`
    evaluates distances through the ``‖x‖² − 2 x·c + ‖c‖²`` expansion), so
    the initialisation stays ``O(nnz)`` — no per-type dense transient.
    """
    rng = check_random_state(random_state)
    object_spec = data.object_block_spec()
    blocks: list[np.ndarray] = []
    for index, object_type in enumerate(data.types):
        n_objects, n_clusters = object_type.n_objects, object_type.n_clusters
        if init == "random":
            block = rng.uniform(0.1, 1.0, size=(n_objects, n_clusters))
        else:
            profile = _relational_profile(R, object_spec, index)
            seed = int(rng.integers(0, 2**31 - 1))
            if n_clusters >= n_objects:
                labels = np.arange(n_objects) % n_clusters
            else:
                labels = KMeans(n_clusters, n_init=3, max_iter=50,
                                random_state=seed).fit_predict(profile)
            block = labels_to_membership(labels, n_clusters,
                                         smoothing=max(smoothing, 1e-3),
                                         random_state=rng)
        blocks.append(row_normalize_l1(block))
    return blocks


def warm_start_state(data: MultiTypeRelationalData,
                     blocks: Mapping[str, np.ndarray], *,
                     association: np.ndarray | None = None,
                     error_matrix: np.ndarray | None = None,
                     smoothing: float = 0.05,
                     smooth_types=None) -> FactorizationState:
    """Build a factorisation state from per-type membership blocks.

    This is the warm-start entry point of the fitter: a caller that already
    holds (approximate) membership blocks for every type — typically the
    blocks of a previously fitted model, extended with rows for newly
    arrived objects — assembles them into an initial state so
    :meth:`repro.core.RHCHME.fit` refines an informed iterate instead of a
    cold k-means initialisation.  The blocks are adopted as the state's
    native per-type storage; no global matrix is stacked.

    Parameters
    ----------
    data:
        The dataset about to be fitted; block shapes are validated against
        its types.
    blocks:
        Mapping from type name to a non-negative
        ``(n_objects, n_clusters)`` membership block.  Every type of
        ``data`` must be present.
    association, error_matrix:
        Optional warm starts for ``S`` and ``E_R`` (zeros when omitted;
        ``S`` is recomputed from ``G`` at the start of the fit anyway).
        ``E_R`` may be a dense array or a
        :class:`~repro.linalg.rowsparse.RowSparseMatrix`; when omitted the
        all-zero E_R is represented row-sparse (no stored rows), so a
        warm start never allocates an ``O(n²)`` zero block — the first
        error-matrix update of the fit re-establishes the backend's
        representation either way.
    smoothing:
        Fraction of uniform mass mixed into each row after ℓ1
        normalisation.  The multiplicative updates cannot move an entry off
        an exact zero, so a small floor keeps every cluster reachable for
        the new objects; ``0`` disables the mixing.
    smooth_types:
        Optional iterable of type names to restrict the smoothing mix to.
        A delta-scheduled refresh passes its dirty types here: frozen
        clean blocks keep their fitted values exactly (re-normalised
        only), while the blocks that will actually be re-optimised get
        the uniform floor.  ``None`` (default) smooths every type.
    """
    smoothing = check_positive_float(smoothing, name="smoothing",
                                     minimum=0.0, inclusive=True)
    if smoothing >= 1.0:
        raise ValidationError(f"smoothing must be < 1, got {smoothing}")
    object_spec = data.object_block_spec()
    cluster_spec = data.cluster_block_spec()
    smooth_names = None
    if smooth_types is not None:
        smooth_names = {str(name) for name in smooth_types}
        unknown = sorted(smooth_names - set(data.type_names))
        if unknown:
            raise ValidationError(
                f"smooth_types names unknown object types {unknown}; the "
                f"dataset has {list(data.type_names)}")
    prepared: list[np.ndarray] = []
    for object_type in data.types:
        if object_type.name not in blocks:
            raise ValidationError(
                f"warm start is missing a membership block for type "
                f"{object_type.name!r}; got blocks for {sorted(blocks)}")
        block = as_float_array(blocks[object_type.name],
                               name=f"blocks[{object_type.name!r}]", ndim=2)
        expected = (object_type.n_objects, object_type.n_clusters)
        if block.shape != expected:
            raise ShapeError(
                f"warm-start block for type {object_type.name!r} has shape "
                f"{block.shape}, expected {expected}")
        check_non_negative(block, name=f"blocks[{object_type.name!r}]")
        block = row_normalize_l1(block)
        if smoothing > 0.0 and (smooth_names is None
                                or object_type.name in smooth_names):
            block = ((1.0 - smoothing) * block
                     + smoothing / object_type.n_clusters)
        prepared.append(block)
    n_objects = object_spec.total
    n_clusters = cluster_spec.total
    if association is None:
        association = np.zeros((n_clusters, n_clusters))
    else:
        association = as_float_array(association, name="association", ndim=2)
        if association.shape != (n_clusters, n_clusters):
            raise ShapeError(
                f"association has shape {association.shape}, expected "
                f"{(n_clusters, n_clusters)}")
        association = association.copy()
    if error_matrix is None:
        error_matrix = RowSparseMatrix.zeros((n_objects, n_objects))
    elif isinstance(error_matrix, RowSparseMatrix):
        if error_matrix.shape != (n_objects, n_objects):
            raise ShapeError(
                f"error_matrix has shape {error_matrix.shape}, expected "
                f"{(n_objects, n_objects)}")
        error_matrix = error_matrix.copy()
    else:
        error_matrix = as_float_array(error_matrix, name="error_matrix", ndim=2)
        if error_matrix.shape != (n_objects, n_objects):
            raise ShapeError(
                f"error_matrix has shape {error_matrix.shape}, expected "
                f"{(n_objects, n_objects)}")
        error_matrix = error_matrix.copy()
    return FactorizationState(G_blocks=prepared, S=association,
                              E_R=error_matrix, object_spec=object_spec,
                              cluster_spec=cluster_spec)


def initialize_state(data: MultiTypeRelationalData, R, *,
                     init: str = "kmeans", smoothing: float = 0.2,
                     random_state=None) -> FactorizationState:
    """Build the initial factorisation state for Algorithm 2.

    ``R`` may be a global inter-type matrix (dense or CSR) or the blocked
    solver's mapping of per-pair relation blocks.  The error matrix starts
    at zero in the representation matching ``R``: a dense array for dense
    relations, an empty (no stored rows)
    :class:`~repro.linalg.rowsparse.RowSparseMatrix` for CSR relations —
    the sparse backend never allocates the ``O(n²)`` zero block.
    """
    object_spec = data.object_block_spec()
    cluster_spec = data.cluster_block_spec()
    blocks = initialize_membership_blocks(data, R, init=init, smoothing=smoothing,
                                          random_state=random_state)
    n_objects = object_spec.total
    n_clusters = cluster_spec.total
    S = np.zeros((n_clusters, n_clusters))
    E_R = (RowSparseMatrix.zeros((n_objects, n_objects))
           if _relations_are_sparse(R)
           else np.zeros((n_objects, n_objects)))
    return FactorizationState(G_blocks=blocks, S=S, E_R=E_R,
                              object_spec=object_spec,
                              cluster_spec=cluster_spec)
