"""Delta scheduling of the blocked solver — which blocks a refit recomputes.

The blocked core (PR 5) decomposed Algorithm 2 into independent per-type
and per-pair kernels; growth made that a *scheduling* problem: when only
one of T types received new objects, the other types' ``G_t`` blocks, the
pairs among them and their ``E_R`` rows are already at (or within noise
of) their fixed point, so recomputing them every iteration buys nothing.

:class:`DirtySet` is the caller-facing declaration — the *names* of the
object types whose data changed (new rows appended, relations touched,
drift detected).  :class:`DeltaSchedule` resolves it against a concrete
fit (type order plus the active relation pairs) into the index sets the
kernels consume:

``dirty_types``
    Types whose ``G_t`` block is re-optimised.  Every other block is
    frozen at its warm-start value — ``update_membership_blocks`` never
    touches it.
``dirty_pairs``
    Ordered active pairs with at least one dirty endpoint.  Only these
    recompute their ``S_tu`` block (clean blocks carry over from the
    warm-start association) and their reconstruction term.
``error_types``
    Row types whose ``E_R`` rows must be recomputed: a row's L2,1 norm
    spans *all* of its cross-type blocks, so any type with at least one
    dirty pair re-solves its whole row block; fully clean row types
    splice their previous rows through unchanged.

Freezing clean blocks turns the refit's per-iteration cost from
``O(all types + all pairs)`` into ``O(dirty neighbourhood)``.  The
trade-off is explicit: frozen blocks stop tracking the moving factors of
their dirty neighbours within the refresh, which is exactly the
approximation a periodic ``full_sweep_every`` iteration repairs — on a
sweep iteration every kernel runs unrestricted, pulling the whole state
back onto the joint optimisation path.

``dirty=None`` remains the correctness escape hatch throughout the
stack: without a schedule every code path is byte-for-byte the full
refit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import ValidationError

__all__ = ["DirtySet", "DeltaSchedule"]


@dataclass(frozen=True)
class DirtySet:
    """Declaration of which object types' data changed since the last fit.

    Attributes
    ----------
    types:
        Names of the dirty object types.  May be empty — an empty dirty
        set makes the refit a (cheap) no-op that re-records the objective
        and converges immediately.
    full_sweep_every:
        Every k-th iteration runs unrestricted (all types, all pairs),
        bounding the drift frozen blocks can accumulate against their
        moving neighbours.  ``0`` (default) never sweeps.
    """

    types: frozenset[str] = field(default_factory=frozenset)
    full_sweep_every: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "types",
                           frozenset(str(name) for name in self.types))
        if self.full_sweep_every < 0:
            raise ValidationError(
                f"full_sweep_every must be >= 0, got {self.full_sweep_every}")

    # ------------------------------------------------------------ builders
    @classmethod
    def from_growth(cls, grown, *, full_sweep_every: int = 0) -> "DirtySet":
        """Dirty set from a per-type growth delta (``{name: n_new}``)."""
        return cls(types=frozenset(name for name, count in dict(grown).items()
                                   if count > 0),
                   full_sweep_every=full_sweep_every)

    @classmethod
    def from_drift(cls, scores, *, threshold: float,
                   full_sweep_every: int = 0) -> "DirtySet":
        """Dirty set from per-type drift scores (``{name: score}``).

        Types whose score is ``None`` or below ``threshold`` stay clean.
        """
        dirty = frozenset(name for name, score in dict(scores).items()
                          if score is not None and score >= threshold)
        return cls(types=dirty, full_sweep_every=full_sweep_every)

    # ------------------------------------------------------------- algebra
    def __or__(self, other: "DirtySet") -> "DirtySet":
        if not isinstance(other, DirtySet):
            return NotImplemented
        return DirtySet(types=self.types | other.types,
                        full_sweep_every=max(self.full_sweep_every,
                                             other.full_sweep_every))

    @property
    def is_empty(self) -> bool:
        return not self.types

    def resolve(self, type_names) -> frozenset[int]:
        """Map the dirty names onto a fit's type order (validating them)."""
        order = {name: index for index, name in enumerate(type_names)}
        unknown = sorted(self.types - set(order))
        if unknown:
            raise ValidationError(
                f"dirty set names unknown object types {unknown}; the "
                f"dataset has {list(type_names)}")
        return frozenset(order[name] for name in self.types)

    def describe(self) -> dict:
        """JSON-safe summary recorded in fit extras and refresh telemetry."""
        return {"types": sorted(self.types),
                "full_sweep_every": int(self.full_sweep_every)}


class DeltaSchedule:
    """A :class:`DirtySet` resolved against one fit's concrete structure.

    Parameters
    ----------
    dirty:
        The caller's dirty-type declaration.
    type_names:
        The dataset's type order (index space of the blocked kernels).
    pairs:
        The fit's active ordered relation pairs (the output of
        :func:`repro.core.updates.active_relation_pairs`).
    """

    def __init__(self, dirty: DirtySet, type_names, pairs, *,
                 track_errors: bool = True) -> None:
        self.dirty = dirty
        self.type_names = [str(name) for name in type_names]
        self.n_types = len(self.type_names)
        self.dirty_types = dirty.resolve(self.type_names)
        self.dirty_pairs = frozenset(
            pair for pair in pairs
            if pair[0] in self.dirty_types or pair[1] in self.dirty_types)
        # A row type's L2,1 norm couples all of its cross-type blocks, so
        # one dirty pair dirties the type's entire E_R row block.  With
        # the error matrix ablated (``use_error_matrix=False``) E_R is
        # identically zero and never updated, so the coupling is vacuous:
        # tracking it would re-evaluate every objective pair that merely
        # shares a row type with the dirty neighbourhood.
        self.error_types = (frozenset(pair[0] for pair in self.dirty_pairs)
                            if track_errors else frozenset())
        self.full_sweep_every = int(dirty.full_sweep_every)

    # ----------------------------------------------------------- iteration
    def sweep(self, iteration: int) -> bool:
        """Whether ``iteration`` is an unrestricted full-sweep iteration."""
        return (self.full_sweep_every > 0
                and iteration % self.full_sweep_every == 0)

    @property
    def laplacian_types(self) -> tuple[int, ...]:
        """Types whose Laplacian block the fit builds (and smooths over).

        Without sweeps only dirty types ever run a G update, so only their
        ``L_t`` blocks are built — the clean types' smoothness terms are a
        constant the trace simply omits.  With sweeps every block is
        needed.
        """
        if self.full_sweep_every > 0:
            return tuple(range(self.n_types))
        return tuple(sorted(self.dirty_types))

    @property
    def objective_pairs(self) -> frozenset:
        """Pairs whose reconstruction term changes between iterations.

        A pair's term moves when its ``S_tu``/``G`` factors move (a dirty
        endpoint) or when its ``E_tu`` rows were re-shrunk (a row type
        with any dirty pair re-solves its whole row block).
        """
        return self.dirty_pairs | frozenset(
            (t, u) for t in self.error_types
            for u in range(self.n_types)
            if t != u)

    def describe(self) -> dict:
        """JSON-safe schedule summary (fit extras)."""
        return {
            "dirty": self.dirty.describe(),
            "dirty_types": sorted(self.type_names[t]
                                  for t in self.dirty_types),
            "error_types": sorted(self.type_names[t]
                                  for t in self.error_types),
            "n_dirty_pairs": len(self.dirty_pairs),
            "full_sweep_every": self.full_sweep_every,
        }
