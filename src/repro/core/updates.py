"""Update rules of Algorithm 2 (Eq. 18, Eq. 21–22, Eq. 25–27).

The objective is minimised by alternating three subproblem solutions while
the other variables are held fixed:

* ``S`` — closed form ``(GᵀG)⁻¹ Gᵀ (R − E_R) G (GᵀG)⁻¹`` (Eq. 18).
* ``G`` — a multiplicative update derived from the KKT conditions (Eq. 21),
  using positive/negative part splits of L, A and B to keep G non-negative,
  followed by row-ℓ1 normalisation (Eq. 22).
* ``E_R`` — the L2,1-regularised least squares solution
  ``(β D + I)⁻¹ (R − G S Gᵀ)`` (Eq. 27) with the diagonal reweighting matrix
  D of Eq. 25, computed row-wise because ``β D + I`` is diagonal.
"""

from __future__ import annotations

import numpy as np

from ..linalg.normalize import row_normalize_l1
from ..linalg.parts import split_parts
from ..linalg.safe import safe_divide, safe_inverse
from .state import FactorizationState

__all__ = [
    "update_association",
    "update_membership",
    "update_error_matrix",
    "l21_reweighting_diagonal",
    "apply_block_structure",
]

_EPS = 1e-12


def apply_block_structure(G: np.ndarray, state: FactorizationState) -> np.ndarray:
    """Zero every entry of G outside its type's own cluster columns.

    The factorisation requires G to stay block diagonal (each object can only
    belong to clusters of its own type); the multiplicative update preserves
    zeros, but re-imposing the mask explicitly protects against numerical
    leakage and against initialisations that violate it.
    """
    masked = np.zeros_like(G)
    for type_index in range(state.object_spec.n_types):
        rows = state.object_spec.slice(type_index)
        cols = state.cluster_spec.slice(type_index)
        masked[rows, cols] = G[rows, cols]
    return masked


def update_association(R: np.ndarray, state: FactorizationState) -> np.ndarray:
    """Closed-form S update (Eq. 18) with a ridge-regularised (GᵀG)⁻¹."""
    G, E_R = state.G, state.E_R
    gram_inverse = safe_inverse(G.T @ G)
    S = gram_inverse @ G.T @ (R - E_R) @ G @ gram_inverse
    # The association matrix of the paper has zero diagonal blocks (cluster
    # associations only exist across types); impose that structure to match.
    masked = S.copy()
    for type_index in range(state.cluster_spec.n_types):
        block = state.cluster_spec.slice(type_index)
        masked[block, block] = 0.0
    return masked


def update_membership(R: np.ndarray, L, state: FactorizationState,
                      *, lam: float, parts=None) -> np.ndarray:
    """Multiplicative G update (Eq. 21) followed by row-ℓ1 normalisation (Eq. 22).

    ``L`` may be a dense array or a scipy sparse matrix: the positive/negative
    split of a sparse Laplacian stays sparse and both ``L⁺ @ G`` and
    ``L⁻ @ G`` are skinny dense products, so the sparse backend never
    materialises an ``(n, n)`` dense intermediate here.

    ``parts`` optionally supplies a precomputed ``(L⁺, L⁻)`` pair.  L is
    loop-invariant across the fit iterations, so callers iterating this
    update (Algorithm 2) should split once and pass it in rather than paying
    the O(n²) (dense) or O(nnz) (sparse) split every iteration.
    """
    G, S, E_R = state.G, state.S, state.E_R
    A = (R - E_R) @ G @ S.T
    B = S.T @ (G.T @ G) @ S
    L_pos, L_neg = parts if parts is not None else split_parts(L)
    A_pos, A_neg = split_parts(A)
    B_pos, B_neg = split_parts(B)
    # With a sparse L these two products are the only place L is touched and
    # they produce dense (n, c) arrays directly.
    numerator = lam * (L_neg @ G) + A_pos + G @ B_neg
    denominator = lam * (L_pos @ G) + A_neg + G @ B_pos
    ratio = safe_divide(numerator, denominator, eps=_EPS)
    updated = G * np.sqrt(ratio)
    updated = apply_block_structure(updated, state)
    # Row-ℓ1 normalisation keeps each object's memberships on the simplex and
    # prevents the trivial single-cluster solution (Section III.C).
    return row_normalize_l1(updated)


def l21_reweighting_diagonal(residual: np.ndarray, *, zeta: float = 1e-10) -> np.ndarray:
    """Diagonal of the L2,1 reweighting matrix D (Eq. 25).

    ``D_ii = 1 / (2 ‖q_i‖₂)`` where ``q_i`` is the i-th row of the residual
    ``Q = R − G S Gᵀ``; rows with zero norm are regularised with the small
    perturbation ζ as described under Eq. 27.
    """
    row_norms = np.sqrt(np.sum(residual * residual, axis=1) + zeta)
    return 1.0 / (2.0 * row_norms)


def update_error_matrix(R: np.ndarray, state: FactorizationState, *, beta: float,
                        zeta: float = 1e-10) -> np.ndarray:
    """Sparse error matrix update (Eq. 27).

    ``E_R = (β D + I)⁻¹ (R − G S Gᵀ)`` where ``β D + I`` is diagonal, so the
    inverse is an element-wise row scaling: rows of the residual with small
    norm are shrunk strongly (treated as noise-free) while rows with large
    norm — the corrupted samples — absorb most of their residual into E_R.
    """
    G, S = state.G, state.S
    residual = R - G @ S @ G.T
    diag = l21_reweighting_diagonal(residual, zeta=zeta)
    scale = 1.0 / (beta * diag + 1.0)
    return residual * scale[:, None]
