"""Update rules of Algorithm 2 (Eq. 18, Eq. 21–22, Eq. 25–27).

The objective is minimised by alternating three subproblem solutions while
the other variables are held fixed:

* ``S`` — closed form ``(GᵀG)⁺ Gᵀ (R − E_R) G (GᵀG)⁺`` (Eq. 18), with the
  gram inverse routed through the guarded pseudo-inverse of
  :func:`repro.linalg.safe.gram_pinv` so an emptied cluster (a zero column
  of G, hence a singular gram) zeroes its association row instead of
  blowing the fit up.
* ``G`` — a multiplicative update derived from the KKT conditions (Eq. 21),
  using positive/negative part splits of L, A and B to keep G non-negative,
  followed by row-ℓ1 normalisation (Eq. 22).
* ``E_R`` — the L2,1-regularised least squares solution
  ``(β D + I)⁻¹ (R − G S Gᵀ)`` (Eq. 27) with the diagonal reweighting matrix
  D of Eq. 25, computed row-wise because ``β D + I`` is diagonal.

Every rule accepts the relation matrix ``R`` as a dense array or a scipy
CSR matrix and the error matrix ``E_R`` as a dense array or a
:class:`repro.linalg.rowsparse.RowSparseMatrix`.  Under the sparse
representations the residual ``R − G S Gᵀ`` is never densified: the
``G S Gᵀ`` product stays factored and is only evaluated against the sparse
pattern of ``R``/``E_R`` (see :mod:`repro.core.rspace`), and the E_R update
returns a row-sparse matrix holding only the rows whose L2 norm survives
the ``(β D + I)⁻¹`` shrinkage.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..linalg.normalize import row_normalize_l1
from ..linalg.norms import frobenius_norm, row_l2_norms
from ..linalg.parts import split_parts
from ..linalg.rowsparse import RowSparseMatrix
from ..linalg.safe import gram_pinv, safe_divide
from . import rspace
from .state import FactorizationState

__all__ = [
    "update_association",
    "update_membership",
    "update_error_matrix",
    "l21_reweighting_diagonal",
    "apply_block_structure",
]

_EPS = 1e-12


def apply_block_structure(G: np.ndarray, state: FactorizationState) -> np.ndarray:
    """Zero every entry of G outside its type's own cluster columns.

    The factorisation requires G to stay block diagonal (each object can only
    belong to clusters of its own type); the multiplicative update preserves
    zeros, but re-imposing the mask explicitly protects against numerical
    leakage and against initialisations that violate it.
    """
    masked = np.zeros_like(G)
    for type_index in range(state.object_spec.n_types):
        rows = state.object_spec.slice(type_index)
        cols = state.cluster_spec.slice(type_index)
        masked[rows, cols] = G[rows, cols]
    return masked


def update_association(R, state: FactorizationState) -> np.ndarray:
    """Closed-form S update (Eq. 18) through a guarded gram pseudo-inverse.

    ``R`` may be dense or CSR and ``E_R`` dense or row-sparse; the core
    ``Gᵀ (R − E_R) G`` is assembled from skinny products either way.  The
    pseudo-inverse zeroes the gram's null directions, so a cluster that
    emptied mid-iteration (zero G column → singular GᵀG) receives zero
    association mass instead of ``O(1/ridge)`` garbage.
    """
    G, E_R = state.G, state.E_R
    gram_inverse = gram_pinv(G.T @ G)
    core = rspace.association_core(R, E_R, G)
    S = gram_inverse @ core @ gram_inverse
    # The association matrix of the paper has zero diagonal blocks (cluster
    # associations only exist across types); impose that structure to match.
    masked = S.copy()
    for type_index in range(state.cluster_spec.n_types):
        block = state.cluster_spec.slice(type_index)
        masked[block, block] = 0.0
    return masked


def update_membership(R, L, state: FactorizationState,
                      *, lam: float, parts=None) -> np.ndarray:
    """Multiplicative G update (Eq. 21) followed by row-ℓ1 normalisation (Eq. 22).

    ``L`` may be a dense array or a scipy sparse matrix: the positive/negative
    split of a sparse Laplacian stays sparse and both ``L⁺ @ G`` and
    ``L⁻ @ G`` are skinny dense products, so the sparse backend never
    materialises an ``(n, n)`` dense intermediate here.  The same holds for
    the relation side: with a CSR ``R`` and a row-sparse ``E_R`` the
    numerator term ``(R − E_R) G Sᵀ`` is built from ``O(nnz·c)`` products.

    ``parts`` optionally supplies a precomputed ``(L⁺, L⁻)`` pair.  L is
    loop-invariant across the fit iterations, so callers iterating this
    update (Algorithm 2) should split once and pass it in rather than paying
    the O(n²) (dense) or O(nnz) (sparse) split every iteration.
    """
    G, S, E_R = state.G, state.S, state.E_R
    A = rspace.project_relations(R, E_R, G) @ S.T
    B = S.T @ (G.T @ G) @ S
    L_pos, L_neg = parts if parts is not None else split_parts(L)
    A_pos, A_neg = split_parts(A)
    B_pos, B_neg = split_parts(B)
    # With a sparse L these two products are the only place L is touched and
    # they produce dense (n, c) arrays directly.
    numerator = lam * (L_neg @ G) + A_pos + G @ B_neg
    denominator = lam * (L_pos @ G) + A_neg + G @ B_pos
    ratio = safe_divide(numerator, denominator, eps=_EPS)
    updated = G * np.sqrt(ratio)
    updated = apply_block_structure(updated, state)
    # Row-ℓ1 normalisation keeps each object's memberships on the simplex and
    # prevents the trivial single-cluster solution (Section III.C).
    return row_normalize_l1(updated)


def l21_reweighting_diagonal(residual, *, zeta: float = 1e-10) -> np.ndarray:
    """Diagonal of the L2,1 reweighting matrix D (Eq. 25).

    ``D_ii = 1 / (2 ‖q_i‖₂)`` where ``q_i`` is the i-th row of the residual
    ``Q = R − G S Gᵀ``; rows with zero norm are regularised with the small
    perturbation ζ as described under Eq. 27.  ``residual`` may be a full
    matrix (any representation) or a precomputed vector of row norms.  The
    denominator is floored at machine epsilon scale so all-zero residual
    rows stay finite even with ``zeta=0`` — without the floor they turn
    into ``inf`` diagonals whose downstream products NaN out under
    ``beta > 0``.
    """
    if isinstance(residual, np.ndarray) and residual.ndim == 1:
        row_norms_sq = residual * residual
    else:
        norms = row_l2_norms(residual)
        row_norms_sq = norms * norms
    row_norms = np.sqrt(row_norms_sq + zeta)
    return 1.0 / np.maximum(2.0 * row_norms, _EPS)


def _shrinkage_scale(row_norms: np.ndarray, *, beta: float,
                     zeta: float) -> np.ndarray:
    """Row scaling ``(β D + I)⁻¹`` of Eq. 27 from residual row norms."""
    diag = l21_reweighting_diagonal(row_norms, zeta=zeta)
    return 1.0 / (beta * diag + 1.0)


def _row_survival_floor(R, row_tol: float) -> float:
    """Absolute shrunk-row-norm floor implied by the relative ``row_tol``.

    Anchored to the RMS row norm of ``R`` (the natural scale of the
    residual): a row whose shrunk L2 norm is at most ``row_tol`` times a
    typical R row carries no signal worth a dense row.
    """
    if row_tol <= 0.0:
        return 0.0
    return row_tol * frobenius_norm(R) / np.sqrt(max(R.shape[0], 1))


def update_error_matrix(R, state: FactorizationState, *, beta: float,
                        zeta: float = 1e-10, row_tol: float = 0.0):
    """Sample-wise sparse error matrix update (Eq. 27).

    ``E_R = (β D + I)⁻¹ (R − G S Gᵀ)`` where ``β D + I`` is diagonal, so the
    inverse is an element-wise row scaling: rows of the residual with small
    norm are shrunk strongly (treated as noise-free) while rows with large
    norm — the corrupted samples — absorb most of their residual into E_R.

    With a dense ``R`` the result is dense (rows whose shrunk norm falls at
    or below the ``row_tol`` floor are zeroed).  With a CSR ``R`` the
    residual is never densified: its row norms come from the factored
    expansion of :func:`repro.core.rspace.residual_row_norms` and only the
    surviving rows are materialised, returned as a
    :class:`~repro.linalg.rowsparse.RowSparseMatrix`.

    Parameters
    ----------
    row_tol:
        Relative survival threshold: rows whose *shrunk* L2 norm is at most
        ``row_tol`` times the RMS row norm of ``R`` are treated as exactly
        zero.  ``0`` (default) keeps every row with a strictly positive
        shrunk norm — exact up to floating point.
    """
    G, S = state.G, state.S
    floor = _row_survival_floor(R, row_tol)
    if sp.issparse(R):
        M = rspace.factored_product(G, S)
        norms = rspace.residual_row_norms(R, G, S, M=M)
        scale = _shrinkage_scale(norms, beta=beta, zeta=zeta)
        rows = np.flatnonzero(scale * norms > floor)
        values = scale[rows, None] * rspace.residual_rows(R, G, S, rows, M=M)
        return RowSparseMatrix(rows, values, R.shape)
    residual = R - G @ S @ G.T
    norms = row_l2_norms(residual)
    scale = _shrinkage_scale(norms, beta=beta, zeta=zeta)
    scale[scale * norms <= floor] = 0.0
    return residual * scale[:, None]
