"""Update rules of Algorithm 2 (Eq. 18, Eq. 21–22, Eq. 25–27).

The objective is minimised by alternating three subproblem solutions while
the other variables are held fixed:

* ``S`` — closed form ``(GᵀG)⁺ Gᵀ (R − E_R) G (GᵀG)⁺`` (Eq. 18), with the
  gram inverse routed through the guarded pseudo-inverse of
  :func:`repro.linalg.safe.gram_pinv` so an emptied cluster (a zero column
  of G, hence a singular gram) zeroes its association row instead of
  blowing the fit up.
* ``G`` — a multiplicative update derived from the KKT conditions (Eq. 21),
  using positive/negative part splits of L, A and B to keep G non-negative,
  followed by row-ℓ1 normalisation (Eq. 22).
* ``E_R`` — the L2,1-regularised least squares solution
  ``(β D + I)⁻¹ (R − G S Gᵀ)`` (Eq. 27) with the diagonal reweighting matrix
  D of Eq. 25, computed row-wise because ``β D + I`` is diagonal.

Every rule accepts the relation matrix ``R`` as a dense array or a scipy
CSR matrix and the error matrix ``E_R`` as a dense array or a
:class:`repro.linalg.rowsparse.RowSparseMatrix`.  Under the sparse
representations the residual ``R − G S Gᵀ`` is never densified: the
``G S Gᵀ`` product stays factored and is only evaluated against the sparse
pattern of ``R``/``E_R`` (see :mod:`repro.core.rspace`), and the E_R update
returns a row-sparse matrix holding only the rows whose L2 norm survives
the ``(β D + I)⁻¹`` shrinkage.
"""

from __future__ import annotations

import time

import numpy as np
import scipy.sparse as sp

from ..linalg.batched import batched_pinv_sandwich
from ..linalg.normalize import row_normalize_l1
from ..linalg.norms import frobenius_norm, row_l2_norms
from ..linalg.parts import split_parts
from ..linalg.rowsparse import RowSparseMatrix
from ..linalg.safe import gram_pinv, safe_divide
from ..obs import current_span
from . import rspace
from .state import FactorizationState

__all__ = [
    "update_association",
    "update_membership",
    "update_error_matrix",
    "update_association_blocks",
    "update_membership_blocks",
    "update_error_matrix_blocks",
    "active_relation_pairs",
    "l21_reweighting_diagonal",
    "apply_block_structure",
]

_EPS = 1e-12


def apply_block_structure(G: np.ndarray, state: FactorizationState) -> np.ndarray:
    """Zero every entry of G outside its type's own cluster columns.

    The factorisation requires G to stay block diagonal (each object can only
    belong to clusters of its own type); the multiplicative update preserves
    zeros, but re-imposing the mask explicitly protects against numerical
    leakage and against initialisations that violate it.
    """
    masked = np.zeros_like(G)
    for type_index in range(state.object_spec.n_types):
        rows = state.object_spec.slice(type_index)
        cols = state.cluster_spec.slice(type_index)
        masked[rows, cols] = G[rows, cols]
    return masked


def update_association(R, state: FactorizationState) -> np.ndarray:
    """Closed-form S update (Eq. 18) through a guarded gram pseudo-inverse.

    ``R`` may be dense or CSR and ``E_R`` dense or row-sparse; the core
    ``Gᵀ (R − E_R) G`` is assembled from skinny products either way.  The
    pseudo-inverse zeroes the gram's null directions, so a cluster that
    emptied mid-iteration (zero G column → singular GᵀG) receives zero
    association mass instead of ``O(1/ridge)`` garbage.
    """
    G, E_R = state.G, state.E_R
    gram_inverse = gram_pinv(G.T @ G)
    core = rspace.association_core(R, E_R, G)
    S = gram_inverse @ core @ gram_inverse
    # The association matrix of the paper has zero diagonal blocks (cluster
    # associations only exist across types); impose that structure to match.
    masked = S.copy()
    for type_index in range(state.cluster_spec.n_types):
        block = state.cluster_spec.slice(type_index)
        masked[block, block] = 0.0
    return masked


def update_membership(R, L, state: FactorizationState,
                      *, lam: float, parts=None) -> np.ndarray:
    """Multiplicative G update (Eq. 21) followed by row-ℓ1 normalisation (Eq. 22).

    ``L`` may be a dense array or a scipy sparse matrix: the positive/negative
    split of a sparse Laplacian stays sparse and both ``L⁺ @ G`` and
    ``L⁻ @ G`` are skinny dense products, so the sparse backend never
    materialises an ``(n, n)`` dense intermediate here.  The same holds for
    the relation side: with a CSR ``R`` and a row-sparse ``E_R`` the
    numerator term ``(R − E_R) G Sᵀ`` is built from ``O(nnz·c)`` products.

    ``parts`` optionally supplies a precomputed ``(L⁺, L⁻)`` pair.  L is
    loop-invariant across the fit iterations, so callers iterating this
    update (Algorithm 2) should split once and pass it in rather than paying
    the O(n²) (dense) or O(nnz) (sparse) split every iteration.
    """
    G, S, E_R = state.G, state.S, state.E_R
    A = rspace.project_relations(R, E_R, G) @ S.T
    B = S.T @ (G.T @ G) @ S
    L_pos, L_neg = parts if parts is not None else split_parts(L)
    A_pos, A_neg = split_parts(A)
    B_pos, B_neg = split_parts(B)
    # With a sparse L these two products are the only place L is touched and
    # they produce dense (n, c) arrays directly.
    numerator = lam * (L_neg @ G) + A_pos + G @ B_neg
    denominator = lam * (L_pos @ G) + A_neg + G @ B_pos
    ratio = safe_divide(numerator, denominator, eps=_EPS)
    updated = G * np.sqrt(ratio)
    updated = apply_block_structure(updated, state)
    # Row-ℓ1 normalisation keeps each object's memberships on the simplex and
    # prevents the trivial single-cluster solution (Section III.C).
    return row_normalize_l1(updated)


def l21_reweighting_diagonal(residual, *, zeta: float = 1e-10) -> np.ndarray:
    """Diagonal of the L2,1 reweighting matrix D (Eq. 25).

    ``D_ii = 1 / (2 ‖q_i‖₂)`` where ``q_i`` is the i-th row of the residual
    ``Q = R − G S Gᵀ``; rows with zero norm are regularised with the small
    perturbation ζ as described under Eq. 27.  ``residual`` may be a full
    matrix (any representation) or a precomputed vector of row norms.  The
    denominator is floored at machine epsilon scale so all-zero residual
    rows stay finite even with ``zeta=0`` — without the floor they turn
    into ``inf`` diagonals whose downstream products NaN out under
    ``beta > 0``.
    """
    if isinstance(residual, np.ndarray) and residual.ndim == 1:
        row_norms_sq = residual * residual
    else:
        norms = row_l2_norms(residual)
        row_norms_sq = norms * norms
    row_norms = np.sqrt(row_norms_sq + zeta)
    return 1.0 / np.maximum(2.0 * row_norms, _EPS)


def _shrinkage_scale(row_norms: np.ndarray, *, beta: float,
                     zeta: float) -> np.ndarray:
    """Row scaling ``(β D + I)⁻¹`` of Eq. 27 from residual row norms."""
    diag = l21_reweighting_diagonal(row_norms, zeta=zeta)
    return 1.0 / (beta * diag + 1.0)


def _row_survival_floor(R, row_tol: float) -> float:
    """Absolute shrunk-row-norm floor implied by the relative ``row_tol``.

    Anchored to the RMS row norm of ``R`` (the natural scale of the
    residual): a row whose shrunk L2 norm is at most ``row_tol`` times a
    typical R row carries no signal worth a dense row.
    """
    if row_tol <= 0.0:
        return 0.0
    return row_tol * frobenius_norm(R) / np.sqrt(max(R.shape[0], 1))


def update_error_matrix(R, state: FactorizationState, *, beta: float,
                        zeta: float = 1e-10, row_tol: float = 0.0):
    """Sample-wise sparse error matrix update (Eq. 27).

    ``E_R = (β D + I)⁻¹ (R − G S Gᵀ)`` where ``β D + I`` is diagonal, so the
    inverse is an element-wise row scaling: rows of the residual with small
    norm are shrunk strongly (treated as noise-free) while rows with large
    norm — the corrupted samples — absorb most of their residual into E_R.

    With a dense ``R`` the result is dense (rows whose shrunk norm falls at
    or below the ``row_tol`` floor are zeroed).  With a CSR ``R`` the
    residual is never densified: its row norms come from the factored
    expansion of :func:`repro.core.rspace.residual_row_norms` and only the
    surviving rows are materialised, returned as a
    :class:`~repro.linalg.rowsparse.RowSparseMatrix`.

    Parameters
    ----------
    row_tol:
        Relative survival threshold: rows whose *shrunk* L2 norm is at most
        ``row_tol`` times the RMS row norm of ``R`` are treated as exactly
        zero.  ``0`` (default) keeps every row with a strictly positive
        shrunk norm — exact up to floating point.
    """
    G, S = state.G, state.S
    floor = _row_survival_floor(R, row_tol)
    if sp.issparse(R):
        M = rspace.factored_product(G, S)
        norms = rspace.residual_row_norms(R, G, S, M=M)
        scale = _shrinkage_scale(norms, beta=beta, zeta=zeta)
        rows = np.flatnonzero(scale * norms > floor)
        values = scale[rows, None] * rspace.residual_rows(R, G, S, rows, M=M)
        return RowSparseMatrix(rows, values, R.shape)
    residual = R - G @ S @ G.T
    norms = row_l2_norms(residual)
    scale = _shrinkage_scale(norms, beta=beta, zeta=zeta)
    scale[scale * norms <= floor] = 0.0
    return residual * scale[:, None]


# ----------------------------------------------------------- blockwise kernels
#
# The blocked solver core works on the structure Algorithm 2 already has:
# G is block diagonal by type, S has zero diagonal blocks, R and E_R only
# live on cross-type blocks, and L only couples objects within a type.  The
# kernels below are the per-type / per-pair counterparts of the global
# update rules above — algebraically identical (the global updates reduce
# to them exactly because the off-block entries are structural zeros), but
# without the ``n_types×`` memory and work inflation of the stacked
# matrices, and with every independent task fan-out-able across a
# :class:`repro.core.parallel.TypeWorkPool`.


def _map(pool, fn, items, *, labels=None, name=None):
    """Ordered map through an optional :class:`TypeWorkPool` (serial if None).

    When a fit-trace span is active on the calling thread (the solver
    activates one per update family under ``diagnostics=True``), every
    kernel invocation is recorded as a completed child of it — with
    explicit timestamps, because the pool's worker threads do not inherit
    the caller's contextvar and :meth:`repro.obs.Span.record` is the
    thread-safe way in.  ``labels`` supplies the per-item span labels
    (defaulting to ``str(item)``; task items carry operand arrays, whose
    repr is not a label) and ``name`` the kernel span name.

    Under a process pool the recording wrapper is skipped — it closes over
    the parent span and would not pickle, and the span object could not be
    mutated from a worker process anyway.  Per-kernel child spans are a
    thread/serial-execution feature; the per-family spans are recorded by
    the solver either way.
    """
    items = list(items)
    parent = current_span()
    if parent is not None and not (
            pool is not None and getattr(pool, "is_process", False)):
        kernel = fn
        span_name = name if name is not None else getattr(kernel, "__name__",
                                                          "kernel")
        item_labels = ([str(label) for label in labels] if labels is not None
                       else [str(item) for item in items])

        def fn(tagged, _kernel=kernel, _name=span_name):
            label, item = tagged
            start = time.perf_counter()
            result = _kernel(item)
            parent.record(_name, start, time.perf_counter(), item=label)
            return result

        items = list(zip(item_labels, items))

    if pool is None:
        return [fn(item) for item in items]
    return pool.map(fn, items)


# Module-level task kernels: one per update family, taking a single plain
# tuple of operand arrays.  Keeping them at module scope (instead of the
# closures they once were) is what makes the blocked fan-out executable on
# a spawn-context *process* pool — the callable and its items must pickle —
# and it hands the torch engine the exact same per-task operands.


def _association_core_task(item):
    """Core ``G_tᵀ (R_tu − E_tu) G_u`` of one pair's S block (Eq. 18)."""
    G_t, R_tu, E_tu, G_u = item
    return G_t.T @ rspace.project_relations(R_tu, E_tu, G_u)


def _membership_type_task(item):
    """Multiplicative update of one type's membership block (Eq. 21–22)."""
    G_t, L_parts_t, a_terms, b_terms, lam = item
    A = np.zeros_like(G_t)
    for R_tu, E_tu, G_u, S_tu in a_terms:
        A += rspace.project_relations(R_tu, E_tu, G_u) @ S_tu.T
    B = np.zeros((G_t.shape[1], G_t.shape[1]))
    for S_ut, gram_u in b_terms:
        B += S_ut.T @ gram_u @ S_ut
    L_pos, L_neg = L_parts_t
    A_pos, A_neg = split_parts(A)
    B_pos, B_neg = split_parts(B)
    numerator = lam * (L_neg @ G_t) + A_pos + G_t @ B_neg
    denominator = lam * (L_pos @ G_t) + A_neg + G_t @ B_pos
    ratio = safe_divide(numerator, denominator, eps=_EPS)
    return row_normalize_l1(G_t * np.sqrt(ratio))


def _error_type_task(item):
    """Shrunk error rows of one row type (Eq. 25–27).

    ``terms`` lists ``(u, R_tu, S_tu, G_u)`` over the type's outgoing
    pairs.  Returns ``(global_rows, values)`` in sparse mode and a
    ``{u: scaled_block}`` mapping in dense mode — never writing shared
    state, so the task runs identically in a thread or a worker process.
    """
    (mode, G_t, terms, beta, zeta, floor, n_total, col_slices,
     row_offset) = item
    sparse = mode == "sparse"
    n_t = G_t.shape[0]
    if not terms:
        return (np.empty(0, dtype=np.int64),
                np.empty((0, n_total))) if sparse else {}
    if sparse:
        factored = {u: G_t @ S_tu for u, _, S_tu, _ in terms}
        sq = np.zeros(n_t)
        for u, R_tu, S_tu, G_u in terms:
            sq += rspace.pair_residual_sq_row_norms(R_tu, G_t, S_tu, G_u,
                                                    M=factored[u])
        norms = np.sqrt(np.maximum(sq, 0.0))
        scale = _shrinkage_scale(norms, beta=beta, zeta=zeta)
        rows = np.flatnonzero(scale * norms > floor)
        values = np.zeros((rows.size, n_total))
        for u, R_tu, S_tu, G_u in terms:
            values[:, col_slices[u]] = scale[rows, None] * (
                rspace.pair_residual_rows(R_tu, G_t, S_tu, G_u, rows,
                                          M=factored[u]))
        return rows + row_offset, values
    residuals = {}
    sq = np.zeros(n_t)
    for u, R_tu, S_tu, G_u in terms:
        reconstruction = (G_t @ S_tu) @ G_u.T
        if R_tu is None:
            residual = -reconstruction
        else:
            if sp.issparse(R_tu):
                R_tu = R_tu.toarray()
            residual = R_tu - reconstruction
        residuals[u] = residual
        sq += np.einsum("ij,ij->i", residual, residual)
    norms = np.sqrt(np.maximum(sq, 0.0))
    scale = _shrinkage_scale(norms, beta=beta, zeta=zeta)
    scale[scale * norms <= floor] = 0.0
    return {u: residual * scale[:, None] for u, residual in residuals.items()}


def _error_block(E_R, object_spec, t: int, u: int):
    """The ``(t, u)`` block of the global error matrix, as a view.

    ``None`` stays ``None``; a dense E_R yields an ndarray view, a
    row-sparse one a :class:`RowSparseMatrix` sharing the value storage.
    """
    if E_R is None:
        return None
    rows = object_spec.slice(t)
    cols = object_spec.slice(u)
    if isinstance(E_R, RowSparseMatrix):
        return E_R.block(rows, cols)
    return E_R[rows, cols]


def active_relation_pairs(R_pairs, E_R, object_spec) -> list[tuple[int, int]]:
    """Ordered type pairs the blocked updates must visit.

    A pair is active when a relation block exists or the (warm-start) error
    matrix carries mass on its block.  Activity is closed under the update
    rules — a pair with zero relation, zero error and zero association
    stays exactly zero through S, G and E_R updates — so the set is
    computed once per fit and reused every iteration.
    """
    active = set(R_pairs)
    if E_R is not None:
        for t in range(object_spec.n_types):
            for u in range(object_spec.n_types):
                if t == u or (t, u) in active:
                    continue
                block = _error_block(E_R, object_spec, t, u)
                if isinstance(block, RowSparseMatrix):
                    if block.rows.size and np.any(block.values):
                        active.add((t, u))
                elif np.any(block):
                    active.add((t, u))
    return sorted(active)


def update_association_blocks(R_pairs, state: FactorizationState, *,
                              pairs=None, pool=None, dirty_pairs=None,
                              S_prev=None, engine=None) -> np.ndarray:
    """Blockwise closed-form S update (Eq. 18).

    ``GᵀG`` is block diagonal, so its pseudo-inverse is the block diagonal
    of the per-type gram pseudo-inverses and the update decomposes per
    ordered pair: ``S_tu = (G_tᵀG_t)⁺ G_tᵀ (R_tu − E_tu) G_u (G_uᵀG_u)⁺``.
    The diagonal blocks of S are structurally zero — the paper's masking
    step disappears instead of being re-imposed.  ``R_pairs`` maps ordered
    type-index pairs to relation blocks (dense or CSR); pairs absent from
    both ``R_pairs`` and ``pairs`` contribute nothing.

    The per-pair cores fan out across ``pool``; the final ``(k_t, k_u)``
    pseudo-inverse sandwiches are grouped by shape and run as batched
    GEMMs (see :func:`repro.linalg.batched.batched_pinv_sandwich`)
    whenever two or more pairs share a core shape.  With ``engine`` set
    (a :class:`repro.linalg.torch_engine.TorchSolverEngine`) the cores
    and the batched sandwiches run as torch kernels on the engine's
    device instead; the gram pseudo-inverses stay on the host either way
    (tiny guarded eigensolves).

    Under a delta schedule ``dirty_pairs`` restricts the solve to the
    pairs whose factors moved; clean blocks carry over from ``S_prev``
    (the warm-start association), whose diagonal blocks are re-zeroed to
    keep the structural invariant regardless of what the caller stored
    there.  With ``dirty_pairs=None`` (the default) every active pair is
    solved into a fresh zero matrix — the pre-delta behaviour, unchanged.
    """
    if pairs is None:
        pairs = active_relation_pairs(R_pairs, state.E_R, state.object_spec)
    G = state.G_blocks
    cluster_spec = state.cluster_spec
    object_spec = state.object_spec
    if dirty_pairs is None:
        compute = list(pairs)
        pinvs = [gram_pinv(block.T @ block) for block in G]
    else:
        compute = [pair for pair in pairs if pair in dirty_pairs]
        needed = sorted({index for pair in compute for index in pair})
        pinvs = {index: gram_pinv(G[index].T @ G[index]) for index in needed}

    items = []
    for pair in compute:
        t, u = pair
        E_tu = _error_block(state.E_R, object_spec, t, u)
        items.append((G[t], R_pairs.get(pair), E_tu, G[u]))

    if engine is not None:
        blocks = engine.association_blocks(compute, items, pinvs)
    else:
        cores = dict(zip(compute, _map(pool, _association_core_task, items,
                                       labels=compute, name="one_pair")))
        blocks = batched_pinv_sandwich(compute, cores, pinvs)

    if dirty_pairs is None or S_prev is None:
        S = np.zeros((cluster_spec.total, cluster_spec.total))
    else:
        S = np.array(S_prev, dtype=np.float64, copy=True)
        for t in range(cluster_spec.n_types):
            block = cluster_spec.slice(t)
            S[block, block] = 0.0
    for t, u in compute:
        S[cluster_spec.slice(t), cluster_spec.slice(u)] = blocks[(t, u)]
    return S


def update_membership_blocks(R_pairs, L_parts, state: FactorizationState, *,
                             lam: float, pairs=None, pool=None,
                             dirty_types=None, engine=None) -> list[np.ndarray]:
    """Blockwise multiplicative G update (Eq. 21–22), one task per type.

    For type ``t`` the relevant rows of the global update's A and B terms
    are ``A_t = Σ_u (R_tu − E_tu) G_u S_tuᵀ`` and
    ``B_t = Σ_u S_utᵀ (G_uᵀ G_u) S_ut`` — only that type's rows/blocks are
    ever formed, and the block mask of the global rule is structural here.
    ``L_parts`` supplies the per-type ``(L_t⁺, L_t⁻)`` splits (loop-invariant,
    computed once per fit).  Types are independent given the other factors,
    so they thread across ``pool``; with ``engine`` set the per-type
    updates run as torch kernels on the engine's device (which holds the
    Laplacian splits resident across iterations).

    ``dirty_types`` (a set of type indices) restricts the update to those
    types; every clean type's block object is returned *as is* — frozen,
    never copied, its ``L_parts`` entry never touched (a delta-scheduled
    fit does not even build clean Laplacians).  ``None`` updates every
    type, exactly as before.
    """
    if pairs is None:
        pairs = active_relation_pairs(R_pairs, state.E_R, state.object_spec)
    G = state.G_blocks
    S = state.S
    cluster_spec = state.cluster_spec
    object_spec = state.object_spec
    by_source: dict[int, list[int]] = {}
    by_target: dict[int, list[int]] = {}
    for t, u in pairs:
        by_source.setdefault(t, []).append(u)
        by_target.setdefault(u, []).append(t)
    if dirty_types is None:
        todo = list(range(object_spec.n_types))
        grams = [block.T @ block for block in G]
    else:
        todo = sorted(dirty_types)
        needed = sorted({u for t in todo for u in by_target.get(t, ())})
        grams = {u: G[u].T @ G[u] for u in needed}

    def s_block(t: int, u: int) -> np.ndarray:
        return S[cluster_spec.slice(t), cluster_spec.slice(u)]

    def type_item(t: int):
        a_terms = [(R_pairs.get((t, u)),
                    _error_block(state.E_R, object_spec, t, u),
                    G[u], s_block(t, u)) for u in by_source.get(t, ())]
        b_terms = [(s_block(u, t), grams[u]) for u in by_target.get(t, ())]
        return G[t], L_parts[t], a_terms, b_terms

    if engine is not None:
        blocks = engine.membership_blocks(
            [(t, *type_item(t)) for t in todo], lam=lam)
    else:
        items = [(*type_item(t), lam) for t in todo]
        blocks = _map(pool, _membership_type_task, items, labels=todo,
                      name="one_type")
    if dirty_types is None:
        return list(blocks)
    updated = list(G)
    for t, block in zip(todo, blocks):
        updated[t] = block
    return updated


def _pair_frobenius_sq(R_pairs, pairs) -> float:
    """``‖R‖²_F`` accumulated from the ordered relation blocks."""
    total = 0.0
    for pair in pairs:
        block = R_pairs.get(pair)
        if block is not None:
            total += frobenius_norm(block) ** 2
    return total


def _carried_error_rows(E_prev, object_spec, t: int, n_total: int):
    """Type ``t``'s stored rows of the previous E_R, in global coordinates.

    The splice path of a delta-scheduled E update: clean row types carry
    their previous rows through unchanged instead of re-solving them.
    Returns ``(rows, values)`` with values of global width ``n_total``.
    """
    lo = object_spec.offsets[t]
    hi = lo + object_spec.sizes[t]
    if E_prev is None:
        return np.empty(0, dtype=np.int64), np.empty((0, n_total))
    if isinstance(E_prev, RowSparseMatrix):
        start = int(np.searchsorted(E_prev.rows, lo))
        stop = int(np.searchsorted(E_prev.rows, hi))
        return (np.asarray(E_prev.rows[start:stop], dtype=np.int64),
                np.asarray(E_prev.values[start:stop]))
    block = np.asarray(E_prev)[lo:hi]
    norms_sq = np.einsum("ij,ij->i", block, block)
    keep = np.flatnonzero(norms_sq > 0.0)
    return keep.astype(np.int64) + lo, block[keep]


def update_error_matrix_blocks(R_pairs, state: FactorizationState, *,
                               beta: float, zeta: float = 1e-10,
                               row_tol: float = 0.0, pairs=None,
                               pool=None, sparse: bool | None = None,
                               dirty_types=None, E_prev=None, engine=None):
    """Blockwise sample-wise sparse error matrix update (Eq. 25–27).

    The L2,1 row norm of object ``i`` of type ``t`` spans every cross-type
    block of its row, so the task unit is a *type*: accumulate the squared
    residual row norms over the type's relation pairs, shrink, and
    materialise only the surviving rows (sparse relations) or scale the
    type's residual blocks in place (dense).  The global residual
    ``R − G S Gᵀ`` is never assembled — per pair the reconstruction stays
    factored as ``(G_t S_tu) G_uᵀ``.

    Returns the global representation the rest of the pipeline speaks: a
    :class:`RowSparseMatrix` when the relations are CSR (or ``sparse=True``),
    a dense array otherwise.

    Under a delta schedule ``dirty_types`` restricts the re-solve to those
    row types; every clean row type splices its rows of ``E_prev`` (the
    previous iterate's error matrix) through unchanged.  ``None`` solves
    every type from scratch — the pre-delta behaviour, unchanged.

    With ``engine`` set the per-type residuals and row norms come from the
    torch device (dense representation — the engine forces ``sparse=False``)
    while the scalar shrinkage ``(β D + I)⁻¹`` runs on the host, shared
    verbatim with the numpy path.
    """
    if pairs is None:
        pairs = active_relation_pairs(R_pairs, state.E_R, state.object_spec)
    if engine is not None:
        sparse = False
    if sparse is None:
        # The relations' representation decides (matching the global rule's
        # dispatch on R); only a relation-free dataset falls back to the
        # current E_R representation.
        if R_pairs:
            sparse = any(sp.issparse(block) for block in R_pairs.values())
        else:
            sparse = isinstance(state.E_R, RowSparseMatrix)
    G = state.G_blocks
    S = state.S
    object_spec = state.object_spec
    cluster_spec = state.cluster_spec
    n_total = object_spec.total
    floor = 0.0
    if row_tol > 0.0:
        floor = row_tol * np.sqrt(_pair_frobenius_sq(R_pairs, pairs)
                                  / max(n_total, 1))
    by_source: dict[int, list[int]] = {}
    for t, u in pairs:
        by_source.setdefault(t, []).append(u)

    todo = (list(range(object_spec.n_types)) if dirty_types is None
            else sorted(dirty_types))
    if sparse:
        E_dense = None
    elif dirty_types is None or E_prev is None:
        E_dense = np.zeros((n_total, n_total))
    else:
        E_dense = (E_prev.to_dense() if isinstance(E_prev, RowSparseMatrix)
                   else np.array(E_prev, dtype=np.float64, copy=True))
        for t in todo:
            E_dense[object_spec.slice(t), :] = 0.0

    mode = "sparse" if sparse else "dense"

    def type_terms(t: int):
        return [(u, R_pairs.get((t, u)),
                 S[cluster_spec.slice(t), cluster_spec.slice(u)], G[u])
                for u in by_source.get(t, ())]

    if engine is not None:
        results = []
        for t in todo:
            terms = type_terms(t)
            if not terms:
                results.append({})
                continue
            residuals, sq = engine.error_residuals((G[t], terms))
            norms = np.sqrt(np.maximum(sq, 0.0))
            scale = _shrinkage_scale(norms, beta=beta, zeta=zeta)
            scale[scale * norms <= floor] = 0.0
            results.append({u: residual * scale[:, None]
                            for u, residual in residuals.items()})
    else:
        col_slices = {u: object_spec.slice(u)
                      for u in range(object_spec.n_types)}
        items = [(mode, G[t], type_terms(t), beta, zeta, floor, n_total,
                  col_slices, object_spec.offsets[t]) for t in todo]
        results = _map(pool, _error_type_task, items, labels=todo,
                       name="one_type")

    if not sparse:
        for t, blocks in zip(todo, results):
            t_rows = object_spec.slice(t)
            for u, block in blocks.items():
                E_dense[t_rows, object_spec.slice(u)] = block
        return E_dense
    if dirty_types is None:
        pieces = results
    else:
        # Recomputed rows land in their type's global row range and clean
        # types splice theirs from E_prev, so concatenating in type order
        # keeps the global row index strictly increasing.
        solved = dict(zip(todo, results))
        pieces = [solved.get(t) if t in solved
                  else _carried_error_rows(E_prev, object_spec, t, n_total)
                  for t in range(object_spec.n_types)]
    rows = np.concatenate([piece[0] for piece in pieces])
    values = (np.vstack([piece[1] for piece in pieces])
              if rows.size else np.empty((0, n_total)))
    return RowSparseMatrix(rows, values, (n_total, n_total))
