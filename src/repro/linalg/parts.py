"""Positive / negative part decomposition of matrices.

The multiplicative update rule for the cluster membership matrix G (Eq. 21 in
the paper) splits each matrix M into its element-wise positive part
``M⁺ = (|M| + M) / 2`` and negative part ``M⁻ = (|M| − M) / 2`` so that the
update keeps G non-negative.  Both parts are non-negative and satisfy
``M = M⁺ − M⁻``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["positive_part", "negative_part", "split_parts"]


def positive_part(matrix: np.ndarray) -> np.ndarray:
    """Return the element-wise positive part ``(|M| + M) / 2`` of ``matrix``."""
    matrix = np.asarray(matrix, dtype=np.float64)
    return (np.abs(matrix) + matrix) / 2.0


def negative_part(matrix: np.ndarray) -> np.ndarray:
    """Return the element-wise negative part ``(|M| − M) / 2`` of ``matrix``."""
    matrix = np.asarray(matrix, dtype=np.float64)
    return (np.abs(matrix) - matrix) / 2.0


def split_parts(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(M⁺, M⁻)`` such that ``M = M⁺ − M⁻`` with both parts ≥ 0."""
    matrix = np.asarray(matrix, dtype=np.float64)
    absolute = np.abs(matrix)
    return (absolute + matrix) / 2.0, (absolute - matrix) / 2.0
