"""Positive / negative part decomposition of matrices.

The multiplicative update rule for the cluster membership matrix G (Eq. 21 in
the paper) splits each matrix M into its element-wise positive part
``M⁺ = (|M| + M) / 2`` and negative part ``M⁻ = (|M| − M) / 2`` so that the
update keeps G non-negative.  Both parts are non-negative and satisfy
``M = M⁺ − M⁻``.

Every helper accepts scipy sparse input and returns sparse parts in that
case: the split of a sparse matrix is again sparse with the same (or fewer)
non-zeros, which is what lets the G update consume a sparse ensemble
Laplacian without densifying it.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["positive_part", "negative_part", "split_parts"]


def positive_part(matrix):
    """Return the element-wise positive part ``(|M| + M) / 2`` of ``matrix``."""
    if sp.issparse(matrix):
        return matrix.tocsr().astype(np.float64, copy=False).maximum(0.0)
    matrix = np.asarray(matrix, dtype=np.float64)
    return (np.abs(matrix) + matrix) / 2.0


def negative_part(matrix):
    """Return the element-wise negative part ``(|M| − M) / 2`` of ``matrix``."""
    if sp.issparse(matrix):
        return (-matrix.tocsr().astype(np.float64, copy=False)).maximum(0.0)
    matrix = np.asarray(matrix, dtype=np.float64)
    return (np.abs(matrix) - matrix) / 2.0


def split_parts(matrix):
    """Return ``(M⁺, M⁻)`` such that ``M = M⁺ − M⁻`` with both parts ≥ 0.

    Sparse input yields sparse CSR parts; dense input yields dense parts.
    """
    if sp.issparse(matrix):
        csr = matrix.tocsr().astype(np.float64, copy=False)
        return csr.maximum(0.0), (-csr).maximum(0.0)
    matrix = np.asarray(matrix, dtype=np.float64)
    absolute = np.abs(matrix)
    return (absolute + matrix) / 2.0, (absolute - matrix) / 2.0
