"""Shape-grouped batched GEMM layout shared by the numpy and torch engines.

The blocked S update (Eq. 18) decomposes into one small problem per ordered
relation pair: ``S_tu = (G_tᵀG_t)⁺ C_tu (G_uᵀG_u)⁺`` with the core
``C_tu = G_tᵀ (R_tu − E_tu) G_u``.  The cores are skinny-product outputs of
shape ``(k_t, k_u)`` — for realistic schemas many pairs share a shape, and a
Python loop of ``k × k`` GEMMs wastes its time on dispatch, not FLOPs.  The
helpers here group the per-pair problems by core shape and run each group as
one broadcasted ``matmul`` over a stacked ``(B, k_t, k_u)`` tensor; the
torch engine uses the same grouping with ``torch.bmm``, so both engines share
one kernel layout.

Only the ``(k × k) @ (k_t × k_u) @ (k × k)`` sandwich is batched.  The heavy
per-pair work — ``(R_tu − E_tu) G_u``, which depends on the relation block's
own ``(n_t, n_u)`` shape and representation (dense/CSR/row-sparse) — stays a
per-pair BLAS call, so the batched path is never slower than the loop it
replaces: it does the identical large GEMMs and strictly less Python
dispatch on the small ones.

The grouping is deterministic (first-seen order of the pair list) and
independent of ``n_jobs``/executor, and the singleton path evaluates the
sandwich with the same association order as the batched path
(``P_t (C P_u)``), so results do not depend on how many pairs happen to
share a shape.
"""

from __future__ import annotations

import numpy as np

__all__ = ["group_by_shape", "batched_pinv_sandwich"]


def group_by_shape(keys, shape_of):
    """Group ``keys`` by ``shape_of(key)``, preserving first-seen order.

    Returns a list of ``(shape, keys_with_that_shape)`` tuples; both the
    group order and the order within each group follow the input order, so
    the grouping is deterministic for a deterministic key list.
    """
    groups: dict[tuple, list] = {}
    for key in keys:
        groups.setdefault(tuple(shape_of(key)), []).append(key)
    return list(groups.items())


def batched_pinv_sandwich(pairs, cores, pinvs) -> dict:
    """``{(t, u): P_t @ C_tu @ P_u}`` with same-shape cores batched.

    Parameters
    ----------
    pairs:
        Ordered ``(t, u)`` type-index pairs to solve.
    cores:
        Mapping from pair to its ``(k_t, k_u)`` core ``C_tu``.
    pinvs:
        Per-type gram pseudo-inverses ``P_t = (G_tᵀG_t)⁺``, indexable by
        type index (list or dict).

    Groups the pairs by core shape; every group with two or more members
    runs as a single broadcasted ``np.matmul`` over ``(B, k_t, k_u)``
    stacks, singletons as plain 2-D matmuls with the same association
    order.
    """
    blocks: dict = {}
    for _, group in group_by_shape(pairs, lambda pair: cores[pair].shape):
        if len(group) == 1:
            pair = group[0]
            t, u = pair
            blocks[pair] = np.matmul(pinvs[t], np.matmul(cores[pair], pinvs[u]))
            continue
        core_stack = np.stack([cores[pair] for pair in group])
        left = np.stack([pinvs[pair[0]] for pair in group])
        right = np.stack([pinvs[pair[1]] for pair in group])
        solved = np.matmul(left, np.matmul(core_stack, right))
        for pair, block in zip(group, solved):
            blocks[pair] = block
    return blocks
