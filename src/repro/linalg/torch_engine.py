"""Torch tensor engine for the blocked RHCHME solver kernels.

``backend="torch"`` routes the per-iteration hot kernels of Algorithm 2 —
the per-pair association cores and their pseudo-inverse sandwiches (Eq. 18,
batched with ``torch.bmm`` over same-shape groups), the per-type
multiplicative membership updates with their Laplacian operator products
``L± @ G`` (Eq. 21–22), the per-type error residuals (Eq. 25–27) and the
objective terms (Eq. 15) — through torch, on CPU always and on CUDA when a
device is visible.  A p-NN affinity kernel (Eq. 3) is provided as well for
device-resident graph construction.

Everything outside the kernels stays numpy-facing.  The engine's contract
with the blocked orchestration in :mod:`repro.core.updates` /
:mod:`repro.core.objective` is numpy-in / numpy-out with *explicit*
host↔device transfer points:

* loop-invariant operands — the relation blocks ``R_tu`` and the per-type
  Laplacian splits ``(L_t⁺, L_t⁻)`` — are moved to the device once and
  cached (CSR Laplacians become coalesced sparse COO tensors, so ``L @ G``
  stays an ``O(nnz · c)`` sparse-dense product);
* per-iteration operands (``G_t``, ``S``, ``E_R`` blocks) cross at each
  kernel call — free on CPU (``torch.from_numpy`` shares memory) and the
  honest, bounded cost on CUDA (skinny ``(n, c)`` / ``(c, c)`` arrays);
* kernel outputs return as numpy arrays, so artifacts, serving and the
  delta-schedule bookkeeping never see a tensor.

All math is float64 and mirrors the numpy kernels' formulas exactly
(``safe_divide``'s denominator floor, the row-ℓ1 zero-row rule, the
positive/negative part splits), which is what the 1e-6 cross-engine parity
gates in ``tests/`` enforce.

Torch is an optional dependency: this module imports it lazily and every
entry point raises :class:`ImportError` with
:data:`repro.linalg.backend.TORCH_INSTALL_HINT` when it is missing.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .backend import TORCH_INSTALL_HINT, torch_available
from .batched import group_by_shape

__all__ = [
    "require_torch",
    "resolve_device",
    "pnn_affinity",
    "TorchSolverEngine",
]

_EPS = 1e-12  # mirrors the numpy kernels' safe_divide / row-ℓ1 floors


def require_torch():
    """Import and return torch, or raise ImportError with the install hint."""
    if not torch_available():
        raise ImportError(TORCH_INSTALL_HINT)
    import torch
    return torch


def resolve_device(device: str | None = "auto") -> str:
    """Concrete torch device string for a ``torch_device`` knob.

    ``"auto"`` (or ``None``) picks ``"cuda"`` when torch sees a CUDA device
    and ``"cpu"`` otherwise; ``"cpu"`` and ``"cuda"``/``"cuda:k"`` are
    validated against availability.
    """
    torch = require_torch()
    name = "auto" if device is None else str(device)
    if name == "auto":
        return "cuda" if torch.cuda.is_available() else "cpu"
    if name == "cpu":
        return name
    if name.startswith("cuda"):
        if not torch.cuda.is_available():
            raise RuntimeError(
                f"torch_device={name!r} requested but torch reports no CUDA "
                f"device; use torch_device='cpu' or 'auto'")
        return name
    raise ValueError(
        f"unknown torch device {name!r}; expected 'auto', 'cpu' or 'cuda[:k]'")


def pnn_affinity(X: np.ndarray, p: int = 5, scheme: str = "cosine", *,
                 sigma: float = 1.0, device: str | None = "auto") -> np.ndarray:
    """Symmetric p-NN affinity ``W^E`` (Eq. 3) as one torch kernel.

    Mirrors :func:`repro.graph.pnn.pnn_affinity`'s dense path: p nearest
    neighbours by Euclidean distance, the Eq. 3 union of both directions'
    edge lists, direction-independent weights (binary / heat kernel /
    non-negative cosine), symmetrised as ``(W + Wᵀ)/2`` with a zero
    diagonal.  Returns a numpy array — the Laplacian assembly downstream is
    representation-agnostic.
    """
    from ..graph.weights import WeightingScheme  # local: keeps imports acyclic
    torch = require_torch()
    scheme = WeightingScheme.coerce(scheme)
    dev = resolve_device(device)
    X = np.ascontiguousarray(np.asarray(X, dtype=np.float64))
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    n = X.shape[0]
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    if p >= n:
        p = max(n - 1, 1)
    Xt = torch.from_numpy(X).to(dev)
    distances = torch.cdist(Xt, Xt)
    distances.fill_diagonal_(float("inf"))
    neighbours = torch.topk(distances, p, dim=1, largest=False).indices
    mask = torch.zeros((n, n), dtype=torch.bool, device=dev)
    mask.scatter_(1, neighbours, True)
    mask = mask | mask.T
    mask.fill_diagonal_(False)
    if scheme is WeightingScheme.BINARY:
        weights = torch.ones((n, n), dtype=torch.float64, device=dev)
    elif scheme is WeightingScheme.HEAT_KERNEL:
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        # exp(-inf) = 0 on the diagonal; the mask zeroes it anyway.
        weights = torch.exp(-(distances ** 2) / sigma)
    else:  # cosine, clipped non-negative so the Laplacian stays well defined
        norms = torch.linalg.vector_norm(Xt, dim=1)
        safe = torch.where(norms > _EPS, norms, torch.ones_like(norms))
        similarity = (Xt @ Xt.T) / (safe[:, None] * safe[None, :])
        dead = norms <= _EPS
        similarity[dead, :] = 0.0
        similarity[:, dead] = 0.0
        weights = torch.clamp(torch.clamp(similarity, -1.0, 1.0), min=0.0)
    affinity = torch.where(mask, weights,
                           torch.zeros((), dtype=torch.float64, device=dev))
    affinity = (affinity + affinity.T) / 2.0
    affinity.fill_diagonal_(0.0)
    return affinity.cpu().numpy()


class TorchSolverEngine:
    """Device-resident implementations of the blocked solver kernels.

    One engine is created per ``RHCHME.fit`` (when the resolved backend is
    ``"torch"``) and receives exactly the same per-task operands the numpy
    kernels receive — the orchestration (delta schedules, splices, caches,
    trace recording) is shared, so the engine only owns the arithmetic.
    """

    def __init__(self, device: str | None = "auto") -> None:
        self.torch = require_torch()
        self.device = resolve_device(device)
        # Loop-invariant operands, keyed by object identity.  The cached
        # entry holds a reference to the source array, so the id cannot be
        # recycled while the cache is alive.
        self._constants: dict[int, tuple] = {}
        self._laplacians: dict[int, object] = {}
        self._laplacian_parts: dict[int, tuple] = {}

    # ------------------------------------------------------------- transfers
    def _tensor(self, array):
        """Move a numpy array (or view) to the device as float64."""
        host = np.ascontiguousarray(np.asarray(array, dtype=np.float64))
        return self.torch.from_numpy(host).to(self.device)

    def _constant(self, array):
        """Device tensor of a loop-invariant operand, cached by identity."""
        if array is None:
            return None
        hit = self._constants.get(id(array))
        if hit is not None and hit[0] is array:
            return hit[1]
        tensor = self._operator_tensor(array)
        self._constants[id(array)] = (array, tensor)
        return tensor

    def _operator_tensor(self, matrix):
        """Dense tensor, or coalesced sparse COO for a scipy sparse matrix."""
        torch = self.torch
        if sp.issparse(matrix):
            coo = matrix.tocoo()
            indices = torch.from_numpy(
                np.ascontiguousarray(np.vstack([coo.row, coo.col]),
                                     dtype=np.int64))
            values = torch.from_numpy(
                np.ascontiguousarray(coo.data, dtype=np.float64))
            return torch.sparse_coo_tensor(
                indices, values, size=coo.shape, dtype=torch.float64,
                device=self.device).coalesce()
        return self._tensor(matrix)

    def _matmul_operator(self, operator, dense):
        """``operator @ dense`` for a dense or sparse-COO operator tensor."""
        if operator.is_sparse:
            return self.torch.sparse.mm(operator, dense)
        return operator @ dense

    def register_laplacians(self, L_blocks, L_parts) -> None:
        """Move the per-type Laplacians and their ± splits to the device.

        Called once per fit — L is loop-invariant.  ``None`` entries (types
        a delta schedule never builds) are skipped.
        """
        self._laplacians = {
            t: self._operator_tensor(block)
            for t, block in enumerate(L_blocks) if block is not None}
        self._laplacian_parts = {
            t: (self._operator_tensor(parts[0]), self._operator_tensor(parts[1]))
            for t, parts in enumerate(L_parts) if parts is not None}

    # ------------------------------------------------------------ primitives
    def _project(self, R_tu, E_tu, G_u_tensor, n_rows: int):
        """Device counterpart of ``rspace.project_relations``: ``(R−E) G_u``."""
        torch = self.torch
        if R_tu is None:
            RG = torch.zeros((n_rows, G_u_tensor.shape[1]),
                             dtype=torch.float64, device=self.device)
        else:
            RG = self._matmul_operator(self._constant(R_tu), G_u_tensor)
        if E_tu is None:
            return RG
        if not isinstance(E_tu, np.ndarray):
            raise TypeError(
                f"the torch engine runs with dense-backend semantics and "
                f"expects a dense E_R block, got {type(E_tu).__name__}")
        return RG - self._tensor(E_tu) @ G_u_tensor

    @staticmethod
    def _split(tensor):
        """Positive/negative parts, mirroring ``linalg.parts.split_parts``."""
        return tensor.clamp(min=0.0), (-tensor).clamp(min=0.0)

    def _row_normalize_l1(self, tensor):
        """Row-ℓ1 normalisation with the numpy kernel's zero-row rule."""
        sums = tensor.abs().sum(dim=1, keepdim=True)
        scale = self.torch.where(sums > _EPS, sums, self.torch.ones_like(sums))
        return tensor / scale

    # --------------------------------------------------------------- kernels
    def association_blocks(self, compute, items, pinvs) -> dict:
        """Per-pair S blocks (Eq. 18) with batched ``torch.bmm`` sandwiches.

        ``items`` aligns with ``compute``: one ``(G_t, R_tu, E_tu, G_u)``
        operand tuple per pair.  ``pinvs`` are the per-type numpy gram
        pseudo-inverses (tiny ``(k, k)`` arrays; the guarded eigh-based
        pinv stays on the host for exact parity).  Cores are computed per
        pair — their heavy factor is the pair-shaped ``(R−E) G_u`` product —
        then every same-shape group of ``(k_t, k_u)`` cores runs its
        ``P_t C P_u`` sandwich as one ``torch.bmm`` batch.
        """
        torch = self.torch
        cores: dict = {}
        G_cache: dict[int, object] = {}
        for pair, (G_t, R_tu, E_tu, G_u) in zip(compute, items):
            t, u = pair
            G_u_tensor = G_cache.get(u)
            if G_u_tensor is None:
                G_u_tensor = G_cache[u] = self._tensor(G_u)
            G_t_tensor = G_cache.get(t)
            if G_t_tensor is None:
                G_t_tensor = G_cache[t] = self._tensor(G_t)
            n_rows = G_t.shape[0] if R_tu is None else R_tu.shape[0]
            proj = self._project(R_tu, E_tu, G_u_tensor, n_rows)
            cores[pair] = G_t_tensor.T @ proj
        pinv_cache: dict[int, object] = {}

        def pinv(index):
            tensor = pinv_cache.get(index)
            if tensor is None:
                tensor = pinv_cache[index] = self._tensor(pinvs[index])
            return tensor

        blocks: dict = {}
        for _, group in group_by_shape(compute,
                                       lambda pair: tuple(cores[pair].shape)):
            if len(group) == 1:
                pair = group[0]
                solved = pinv(pair[0]) @ (cores[pair] @ pinv(pair[1]))
                blocks[pair] = solved.cpu().numpy()
                continue
            core_stack = torch.stack([cores[pair] for pair in group])
            left = torch.stack([pinv(pair[0]) for pair in group])
            right = torch.stack([pinv(pair[1]) for pair in group])
            solved = torch.bmm(left, torch.bmm(core_stack, right))
            for pair, block in zip(group, solved):
                blocks[pair] = block.cpu().numpy()
        return blocks

    def membership_blocks(self, items, *, lam: float) -> list:
        """Per-type multiplicative G updates (Eq. 21–22) on the device.

        ``items`` carries one ``(t, G_t, L_parts_t, a_terms, b_terms)``
        tuple per dirty type, where ``a_terms`` lists
        ``(R_tu, E_tu, G_u, S_tu)`` over the type's outgoing pairs and
        ``b_terms`` lists ``(S_ut, gram_u)`` over its incoming ones.
        ``L_parts_t`` is the numpy split, used only when the type was not
        pre-registered via :meth:`register_laplacians`.
        """
        results = []
        for t, G_t, L_parts_t, a_terms, b_terms in items:
            block = self._tensor(G_t)
            A = self.torch.zeros_like(block)
            for R_tu, E_tu, G_u, S_tu in a_terms:
                G_u_tensor = self._tensor(G_u)
                proj = self._project(R_tu, E_tu, G_u_tensor, G_t.shape[0])
                A = A + proj @ self._tensor(S_tu).T
            c = block.shape[1]
            B = self.torch.zeros((c, c), dtype=self.torch.float64,
                                 device=self.device)
            for S_ut, gram_u in b_terms:
                S_ut_tensor = self._tensor(S_ut)
                B = B + S_ut_tensor.T @ self._tensor(gram_u) @ S_ut_tensor
            parts = self._laplacian_parts.get(t)
            if parts is None:
                parts = (self._operator_tensor(L_parts_t[0]),
                         self._operator_tensor(L_parts_t[1]))
            L_pos, L_neg = parts
            A_pos, A_neg = self._split(A)
            B_pos, B_neg = self._split(B)
            numerator = (lam * self._matmul_operator(L_neg, block)
                         + A_pos + block @ B_neg)
            denominator = (lam * self._matmul_operator(L_pos, block)
                           + A_neg + block @ B_pos)
            ratio = numerator / denominator.clamp(min=_EPS)
            updated = self._row_normalize_l1(block * ratio.sqrt())
            results.append(updated.cpu().numpy())
        return results

    def error_residuals(self, item):
        """Per-type residual blocks and squared row norms (Eq. 25–27 input).

        ``item`` is ``(G_t, terms)`` with ``terms`` listing
        ``(u, R_tu, S_tu, G_u)`` over the type's outgoing pairs.  Returns
        ``({u: residual_block}, sq_row_norms)`` as numpy arrays — the
        shrinkage ``(β D + I)⁻¹`` is elementwise on an ``(n_t,)`` vector
        and stays on the host, shared verbatim with the numpy path.
        """
        G_t, terms = item
        G_t_tensor = self._tensor(G_t)
        n_t = G_t.shape[0]
        sq = self.torch.zeros(n_t, dtype=self.torch.float64,
                              device=self.device)
        residuals = {}
        for u, R_tu, S_tu, G_u in terms:
            reconstruction = (G_t_tensor @ self._tensor(S_tu)) \
                @ self._tensor(G_u).T
            if R_tu is None:
                residual = -reconstruction
            else:
                R_tensor = self._constant(R_tu)
                if R_tensor.is_sparse:
                    R_tensor = R_tensor.to_dense()
                residual = R_tensor - reconstruction
            residuals[u] = residual
            sq = sq + (residual * residual).sum(dim=1)
        return ({u: residual.cpu().numpy()
                 for u, residual in residuals.items()},
                sq.cpu().numpy())

    def pair_reconstruction_error(self, R_tu, G_t, S_tu, G_u, E_tu) -> float:
        """``‖R_tu − G_t S_tu G_uᵀ − E_tu‖²_F`` for one pair, on the device."""
        M = self._tensor(G_t) @ self._tensor(S_tu)
        residual = -(M @ self._tensor(G_u).T)
        if R_tu is not None:
            R_tensor = self._constant(R_tu)
            if R_tensor.is_sparse:
                R_tensor = R_tensor.to_dense()
            residual = residual + R_tensor
        if E_tu is not None:
            if not isinstance(E_tu, np.ndarray):
                raise TypeError(
                    f"the torch engine expects a dense E_R block, got "
                    f"{type(E_tu).__name__}")
            residual = residual - self._tensor(E_tu)
        return float((residual * residual).sum().item())

    def smoothness(self, t: int, G_t, L_t) -> float:
        """``tr(G_tᵀ L_t G_t)`` with the registered device Laplacian."""
        block = self._tensor(G_t)
        operator = self._laplacians.get(t)
        if operator is None:
            operator = self._operator_tensor(L_t)
        LG = self._matmul_operator(operator, block)
        return float((LG * block).sum().item())
