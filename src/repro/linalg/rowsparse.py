"""Row-sparse matrices: few materialised rows, zeros everywhere else.

The L2,1-regularised error matrix ``E_R`` of RHCHME (Eq. 27) is *sample-wise*
sparse: the ``(β D + I)⁻¹`` shrinkage drives the rows of well-explained
objects towards zero while corrupted objects keep a whole (dense) row of
residual.  A general-purpose CSR matrix is the wrong container for that
shape — the surviving rows are dense, so per-entry indexing triples the
memory — and a dense array wastes ``O(n²)`` on zeros.
:class:`RowSparseMatrix` stores exactly what the structure has: the sorted
indices of the surviving rows and one dense ``(k, n)`` value block.

The class implements only the operations the RHCHME update loop and the
serving stack need (products with skinny dense matrices, row norms, inner
products with CSR operands), each without materialising the ``(n, n)``
dense form.  ``to_dense``/``__array__`` exist for interop and tests, not
for hot paths.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["RowSparseMatrix", "as_dense_matrix"]


class RowSparseMatrix:
    """A matrix with dense values on a few rows and zeros on all others.

    Parameters
    ----------
    rows:
        Strictly increasing indices of the materialised (non-zero) rows.
    values:
        ``(len(rows), shape[1])`` dense block holding those rows' values.
    shape:
        Logical ``(n_rows, n_cols)`` shape of the full matrix.
    """

    __slots__ = ("rows", "values", "shape")

    def __init__(self, rows, values, shape) -> None:
        rows = np.asarray(rows, dtype=np.int64).ravel()
        values = np.asarray(values, dtype=np.float64)
        n_rows, n_cols = (int(shape[0]), int(shape[1]))
        if values.ndim != 2:
            raise ValueError(f"values must be 2-D, got shape {values.shape}")
        if values.shape != (rows.size, n_cols):
            raise ValueError(
                f"values have shape {values.shape}, expected "
                f"{(rows.size, n_cols)} for {rows.size} rows of width {n_cols}")
        if rows.size:
            if rows.min() < 0 or rows.max() >= n_rows:
                raise ValueError(
                    f"row indices must lie in [0, {n_rows}), got range "
                    f"[{rows.min()}, {rows.max()}]")
            if np.any(np.diff(rows) <= 0):
                raise ValueError("row indices must be strictly increasing")
        self.rows = rows
        self.values = values
        self.shape = (n_rows, n_cols)

    # ------------------------------------------------------------ constructors
    @classmethod
    def zeros(cls, shape) -> "RowSparseMatrix":
        """The all-zero matrix of the given shape (no rows materialised)."""
        return cls(np.empty(0, dtype=np.int64),
                   np.empty((0, int(shape[1]))), shape)

    @classmethod
    def from_dense(cls, matrix, *, tol: float = 0.0) -> "RowSparseMatrix":
        """Compress a dense matrix, keeping rows with L2 norm above ``tol``.

        ``tol=0`` keeps every row that has any non-zero entry — an exact
        representation for matrices that are already row-sparse in substance
        (an all-zero ``E_R`` compresses to nothing).
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
        norms = np.sqrt(np.einsum("ij,ij->i", matrix, matrix))
        rows = np.flatnonzero(norms > tol)
        return cls(rows, matrix[rows].copy(), matrix.shape)

    # -------------------------------------------------------------- properties
    @property
    def n_stored_rows(self) -> int:
        """Number of materialised rows."""
        return int(self.rows.size)

    @property
    def nnz(self) -> int:
        """Entries actually held in memory (stored rows × columns)."""
        return int(self.values.size)

    @property
    def is_zero(self) -> bool:
        """True when no row is materialised (the all-zero matrix)."""
        return self.rows.size == 0

    # ------------------------------------------------------------- conversions
    def to_dense(self) -> np.ndarray:
        """Materialise the full dense ``(n_rows, n_cols)`` array."""
        dense = np.zeros(self.shape, dtype=np.float64)
        if self.rows.size:
            dense[self.rows] = self.values
        return dense

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        dense = self.to_dense()
        return dense if dtype is None else dense.astype(dtype)

    def copy(self) -> "RowSparseMatrix":
        """Independent copy (indices and values)."""
        return RowSparseMatrix(self.rows.copy(), self.values.copy(), self.shape)

    def block(self, rows: slice, cols: slice) -> "RowSparseMatrix":
        """The sub-matrix covered by contiguous row/column spans, as views.

        Because the stored row indices are sorted, the rows falling inside a
        contiguous span form a contiguous run — the returned matrix shares
        the underlying value storage (no copy), which is what lets the
        blockwise solver kernels slice a global ``E_R`` into per-pair blocks
        for free every iteration.
        """
        row_start, row_stop, _ = rows.indices(self.shape[0])
        col_start, col_stop, _ = cols.indices(self.shape[1])
        lo = int(np.searchsorted(self.rows, row_start, side="left"))
        hi = int(np.searchsorted(self.rows, row_stop, side="left"))
        return RowSparseMatrix(self.rows[lo:hi] - row_start,
                               self.values[lo:hi, col_start:col_stop],
                               (row_stop - row_start, col_stop - col_start))

    # --------------------------------------------------------------- operators
    def __matmul__(self, other) -> np.ndarray:
        """``self @ other`` with a dense operand, returning a dense array.

        Only the stored rows contribute, so the cost is ``O(k · n · m)`` for
        ``k`` stored rows and an ``(n, m)`` operand — the result is skinny
        whenever the operand is.
        """
        other = np.asarray(other, dtype=np.float64)
        out_shape = ((self.shape[0],) if other.ndim == 1
                     else (self.shape[0], other.shape[-1]))
        out = np.zeros(out_shape, dtype=np.float64)
        if self.rows.size:
            out[self.rows] = self.values @ other
        return out

    def t_matmul(self, other) -> np.ndarray:
        """``self.T @ other`` with a dense operand, returning a dense array.

        Uses only the operand rows the stored rows touch:
        ``selfᵀ X = valuesᵀ X[rows]``.
        """
        other = np.asarray(other, dtype=np.float64)
        return self.values.T @ other[self.rows]

    def inner(self, other) -> float:
        """Frobenius inner product ``Σᵢⱼ selfᵢⱼ otherᵢⱼ``.

        ``other`` may be dense, scipy sparse or another row-sparse matrix;
        only the stored rows are ever touched.
        """
        if self.rows.size == 0:
            return 0.0
        if isinstance(other, RowSparseMatrix):
            shared, mine, theirs = np.intersect1d(
                self.rows, other.rows, assume_unique=True, return_indices=True)
            if shared.size == 0:
                return 0.0
            return float(np.sum(self.values[mine] * other.values[theirs]))
        if sp.issparse(other):
            rows_csr = sp.csr_array(other)[self.rows]
            return float(rows_csr.multiply(self.values).sum())
        other = np.asarray(other, dtype=np.float64)
        return float(np.sum(self.values * other[self.rows]))

    # ------------------------------------------------------------------- norms
    def stored_row_norms(self) -> np.ndarray:
        """L2 norms of the stored rows (length ``n_stored_rows``)."""
        return np.sqrt(np.einsum("ij,ij->i", self.values, self.values))

    def row_norms(self) -> np.ndarray:
        """L2 norm of every row of the full matrix (zeros for absent rows)."""
        norms = np.zeros(self.shape[0], dtype=np.float64)
        if self.rows.size:
            norms[self.rows] = self.stored_row_norms()
        return norms

    def frobenius_squared(self) -> float:
        """Squared Frobenius norm ``‖·‖²_F``."""
        return float(np.sum(self.values * self.values))

    def l21_norm(self) -> float:
        """L2,1 norm — the sum of row L2 norms (Eq. 14)."""
        return float(np.sum(self.stored_row_norms()))

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (f"RowSparseMatrix(shape={self.shape}, "
                f"stored_rows={self.n_stored_rows})")


def as_dense_matrix(matrix) -> np.ndarray:
    """Densify any of the solver's matrix representations.

    Accepts dense arrays (returned as float64 views/copies), scipy sparse
    matrices and :class:`RowSparseMatrix`.  The explicit escape hatch for
    code paths that are dense anyway — hot sparse paths should dispatch on
    the representation instead of calling this.
    """
    if isinstance(matrix, RowSparseMatrix):
        return matrix.to_dense()
    if sp.issparse(matrix):
        return matrix.toarray().astype(np.float64, copy=False)
    return np.asarray(matrix, dtype=np.float64)
