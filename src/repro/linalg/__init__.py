"""Shared linear-algebra utilities used by every solver in the library.

The module groups small, well-tested numerical primitives:

* :mod:`repro.linalg.parts` — positive/negative part splits used by the
  multiplicative update rules.
* :mod:`repro.linalg.norms` — the ℓ1, ℓ2, Frobenius and L2,1 norms that appear
  in the paper's objective functions.
* :mod:`repro.linalg.normalize` — row/column and symmetric normalisations
  (including the row-ℓ1 normalisation applied to the cluster membership
  matrix G).
* :mod:`repro.linalg.blocks` — assembly and extraction of the block matrices
  R, W, G and S used by multi-type relational data.
* :mod:`repro.linalg.projections` — projection operators onto the feasible
  sets used by the SPG solver.
* :mod:`repro.linalg.safe` — numerically safe inverses and divisions.
* :mod:`repro.linalg.backend` — dense/sparse/torch compute-backend selection
  and conversion helpers used to thread scipy.sparse through the pipeline.
* :mod:`repro.linalg.rowsparse` — the row-sparse matrix representation the
  sample-wise error matrix E_R uses under the sparse backend.
* :mod:`repro.linalg.batched` — the shape-grouped batched GEMM layout shared
  by the numpy and torch association kernels.
* :mod:`repro.linalg.torch_engine` — the optional torch tensor engine
  (imported lazily, never at package import time: torch is optional).
"""

from .backend import (
    AUTO_SPARSE_THRESHOLD,
    BACKENDS,
    TORCH_INSTALL_HINT,
    as_csr,
    check_backend,
    check_backend_available,
    is_sparse,
    numpy_carrier,
    resolve_backend,
    to_backend,
    to_dense,
    torch_available,
    torch_cuda_available,
)
from .batched import batched_pinv_sandwich, group_by_shape
from .parts import negative_part, positive_part, split_parts
from .norms import (
    frobenius_norm,
    l1_norm,
    l2_norm,
    l21_norm,
    row_l2_norms,
    trace_quadratic,
)
from .normalize import (
    column_normalize_l1,
    row_normalize_l1,
    row_normalize_l2,
    symmetric_normalize,
    tfidf_transform,
)
from .blocks import (
    BlockSpec,
    block_diagonal,
    block_offdiagonal,
    extract_blocks,
    extract_diagonal_blocks,
)
from .projections import (
    project_box,
    project_nonnegative,
    project_nonnegative_zero_diagonal,
    project_simplex_rows,
)
from .rowsparse import RowSparseMatrix, as_dense_matrix
from .safe import gram_pinv, safe_divide, safe_inverse, safe_sqrt, stable_pinv

__all__ = [
    "AUTO_SPARSE_THRESHOLD",
    "BACKENDS",
    "TORCH_INSTALL_HINT",
    "BlockSpec",
    "RowSparseMatrix",
    "as_csr",
    "as_dense_matrix",
    "batched_pinv_sandwich",
    "check_backend",
    "check_backend_available",
    "group_by_shape",
    "is_sparse",
    "numpy_carrier",
    "resolve_backend",
    "to_backend",
    "to_dense",
    "torch_available",
    "torch_cuda_available",
    "block_diagonal",
    "block_offdiagonal",
    "column_normalize_l1",
    "extract_blocks",
    "extract_diagonal_blocks",
    "frobenius_norm",
    "gram_pinv",
    "l1_norm",
    "l21_norm",
    "l2_norm",
    "negative_part",
    "positive_part",
    "project_box",
    "project_nonnegative",
    "project_nonnegative_zero_diagonal",
    "project_simplex_rows",
    "row_l2_norms",
    "row_normalize_l1",
    "row_normalize_l2",
    "safe_divide",
    "safe_inverse",
    "safe_sqrt",
    "split_parts",
    "stable_pinv",
    "symmetric_normalize",
    "tfidf_transform",
    "trace_quadratic",
]
