"""Projection operators onto the feasible sets used by the solvers.

The SPG solver for the multiple-subspace objective (Algorithm 1) projects its
iterates onto the closed convex set ``{W : W ≥ 0, diag(W) = 0}``; Eq. 11 of
the paper defines that projection element-wise.  The simplex projection is
used by the RMC baseline to keep its learnt candidate-Laplacian weights on the
probability simplex.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "project_nonnegative",
    "project_nonnegative_zero_diagonal",
    "project_box",
    "project_simplex_rows",
    "project_simplex",
]


def project_nonnegative(matrix: np.ndarray) -> np.ndarray:
    """Project ``matrix`` onto the non-negative orthant (clip below at zero)."""
    return np.maximum(np.asarray(matrix, dtype=np.float64), 0.0)


def project_nonnegative_zero_diagonal(matrix: np.ndarray) -> np.ndarray:
    """Projection operator of Eq. 11: clip negatives and zero the diagonal."""
    matrix = np.maximum(np.asarray(matrix, dtype=np.float64), 0.0).copy()
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {matrix.shape}")
    np.fill_diagonal(matrix, 0.0)
    return matrix


def project_box(matrix: np.ndarray, lower: float, upper: float) -> np.ndarray:
    """Project ``matrix`` onto the box ``[lower, upper]`` element-wise."""
    if lower > upper:
        raise ValueError(f"lower bound {lower} exceeds upper bound {upper}")
    return np.clip(np.asarray(matrix, dtype=np.float64), lower, upper)


def project_simplex(vector: np.ndarray) -> np.ndarray:
    """Euclidean projection of a vector onto the probability simplex.

    Implements the sorting-based algorithm of Held, Wolfe & Crowder; the
    result is non-negative and sums to one.
    """
    vector = np.asarray(vector, dtype=np.float64).ravel()
    if vector.size == 0:
        raise ValueError("cannot project an empty vector onto the simplex")
    sorted_desc = np.sort(vector)[::-1]
    cumulative = np.cumsum(sorted_desc) - 1.0
    indices = np.arange(1, vector.size + 1)
    candidates = sorted_desc - cumulative / indices
    rho = np.nonzero(candidates > 0)[0][-1]
    theta = cumulative[rho] / (rho + 1.0)
    return np.maximum(vector - theta, 0.0)


def project_simplex_rows(matrix: np.ndarray) -> np.ndarray:
    """Project each row of ``matrix`` onto the probability simplex."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim == 1:
        return project_simplex(matrix)
    return np.vstack([project_simplex(row) for row in matrix])
