"""Dense / sparse compute-backend selection and conversion helpers.

Every stage of the RHCHME pipeline — the p-NN affinity (Eq. 3), the ensemble
Laplacian (Eq. 12) and the regulariser terms of the updates and objective
(Eq. 15, 21) — only ever uses the graph Laplacian ``L`` as a linear operator
(``L @ G``) or through element-wise positive/negative splits.  Because the
p-NN graph has at most ``2p`` non-zeros per row, all of those stages can run
on :mod:`scipy.sparse` matrices without materialising any ``(n, n)`` dense
array.  This module centralises the backend vocabulary so the solvers stay
agnostic:

* ``"dense"`` — plain ``numpy`` arrays (the seed behaviour);
* ``"sparse"`` — CSR :class:`scipy.sparse` matrices for affinities and
  Laplacians;
* ``"torch"`` — the :mod:`repro.linalg.torch_engine` tensor engine: the
  blocked solver kernels run as torch ops (batched GEMMs, CPU or CUDA)
  while everything outside the fit loop — datasets, artifacts, serving —
  stays numpy-facing.  Torch is an *optional* dependency: the name is
  always valid, but resolving it without torch installed raises a clear
  :class:`ImportError` with an install hint;
* ``"auto"`` — pick per dataset: sparse once the object count crosses
  :data:`AUTO_SPARSE_THRESHOLD` (where the O(n²) dense intermediates start to
  dominate), dense below it (small problems are faster without CSR
  indirection).  When torch is installed *and* a CUDA device is visible,
  ``"auto"`` prefers the torch engine above the same threshold — the
  device only pays off once there is enough work per kernel to amortise
  host↔device transfers.
"""

from __future__ import annotations

import importlib.util

import numpy as np
import scipy.sparse as sp

from .._validation import ensure_dense

__all__ = [
    "BACKENDS",
    "AUTO_SPARSE_THRESHOLD",
    "TORCH_INSTALL_HINT",
    "check_backend",
    "check_backend_available",
    "torch_available",
    "torch_cuda_available",
    "resolve_backend",
    "numpy_carrier",
    "is_sparse",
    "as_csr",
    "to_dense",
    "to_backend",
    "topk_rows",
]

#: Valid values of the ``backend`` knob on :class:`repro.core.RHCHMEConfig`
#: and :class:`repro.manifold.HeterogeneousManifoldEnsemble`.
BACKENDS = ("auto", "dense", "sparse", "torch")

#: Actionable message attached to every requested-but-missing torch error.
TORCH_INSTALL_HINT = (
    "backend='torch' requires the optional torch dependency; install a CPU "
    "build with `pip install torch --index-url "
    "https://download.pytorch.org/whl/cpu` (or a CUDA build from "
    "https://pytorch.org/get-started/) and retry, or use backend='dense' / "
    "'sparse' / 'auto'")

#: Object count at which ``backend="auto"`` switches to the sparse path.
#: Below this the dense kernels win on constant factors; above it the
#: O(n²) dense intermediates (pairwise weight matrices, Laplacian splits)
#: dominate both time and memory.
AUTO_SPARSE_THRESHOLD = 1024


def check_backend(backend: str) -> str:
    """Validate a backend name and return it.

    Name validation only — ``"torch"`` is a valid *name* even without torch
    installed, so configs and persisted artifacts that mention it keep
    loading on torch-free machines.  Use :func:`check_backend_available`
    (or :func:`resolve_backend`, which calls it) to additionally require
    that the engine can actually run here.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {list(BACKENDS)}")
    return backend


def torch_available() -> bool:
    """True when the optional torch dependency is importable."""
    return importlib.util.find_spec("torch") is not None


def torch_cuda_available() -> bool:
    """True when torch is importable and sees at least one CUDA device."""
    if not torch_available():
        return False
    import torch
    try:
        return bool(torch.cuda.is_available())
    except Exception:
        return False


def check_backend_available(backend: str) -> str:
    """Validate a backend name *and* that its engine can run here.

    Raises a :class:`ValueError` for unknown names and an
    :class:`ImportError` carrying :data:`TORCH_INSTALL_HINT` when
    ``"torch"`` is requested on a machine without torch — at request time,
    instead of a generic failure deep inside the fit.
    """
    check_backend(backend)
    if backend == "torch" and not torch_available():
        raise ImportError(TORCH_INSTALL_HINT)
    return backend


def resolve_backend(backend: str, *, n_objects: int,
                    threshold: int = AUTO_SPARSE_THRESHOLD) -> str:
    """Resolve ``"auto"`` to a concrete backend for a problem of ``n_objects``.

    An explicit ``"torch"`` request checks availability (raising
    :class:`ImportError` with an install hint when torch is missing) and
    resolves to itself.  ``"auto"`` picks the torch engine only when torch
    is installed *and* CUDA is visible *and* the problem crosses
    ``threshold`` — on CPU-only machines the numpy engines win below the
    device-transfer break-even, so ``"auto"`` keeps its dense/sparse
    behaviour there.

    Parameters
    ----------
    backend:
        ``"auto"``, ``"dense"``, ``"sparse"`` or ``"torch"``.
    n_objects:
        Total number of objects (rows/columns of the assembled Laplacian).
    threshold:
        Object count at which ``"auto"`` switches away from dense.
    """
    check_backend(backend)
    if backend == "torch":
        return check_backend_available(backend)
    if backend != "auto":
        return backend
    if n_objects >= threshold and torch_cuda_available():
        return "torch"
    return "sparse" if n_objects >= threshold else "dense"


def numpy_carrier(backend: str, *, n_objects: int,
                  threshold: int = AUTO_SPARSE_THRESHOLD) -> str:
    """The numpy representation (``"dense"``/``"sparse"``) behind a backend.

    The serving stack, artifacts and datasets are numpy-facing by contract:
    a model fitted with ``backend="torch"`` must keep predicting on a
    torch-free machine.  This maps any backend name to the concrete numpy
    representation its data should use — ``"torch"`` and ``"auto"`` by the
    size rule (sparse at or above ``threshold``), ``"dense"``/``"sparse"``
    pass through — without ever importing or requiring torch.
    """
    check_backend(backend)
    if backend in ("torch", "auto"):
        return "sparse" if n_objects >= threshold else "dense"
    return backend


def is_sparse(matrix) -> bool:
    """True when ``matrix`` is any scipy sparse matrix/array."""
    return sp.issparse(matrix)


def as_csr(matrix) -> sp.csr_array:
    """Return ``matrix`` as a float64 CSR sparse array (copying only if needed)."""
    if sp.issparse(matrix):
        return matrix.tocsr().astype(np.float64, copy=False)
    return sp.csr_array(np.asarray(matrix, dtype=np.float64))


def to_dense(matrix) -> np.ndarray:
    """Return a dense float64 ndarray view of a dense or sparse matrix."""
    return ensure_dense(matrix)


def to_backend(matrix, backend: str):
    """Convert ``matrix`` to the numpy representation of a concrete backend.

    ``"torch"`` converts to the dense numpy carrier — host-side data stays
    numpy-facing; moving arrays onto a device is the
    :class:`repro.linalg.torch_engine.TorchSolverEngine`'s job.
    """
    check_backend(backend)
    if backend == "auto":
        raise ValueError("resolve 'auto' with resolve_backend() before converting")
    return as_csr(matrix) if backend == "sparse" else to_dense(matrix)


def topk_rows(matrix, k: int, *, symmetrize: bool = True) -> np.ndarray:
    """Threshold a dense affinity to its k largest entries per row.

    This is what lets inherently dense affinities — the subspace member's
    complete within-subspace connectivity — participate in the sparse
    backend: keeping only the k strongest similarities per row bounds the
    non-zero count at ``2k`` per row after symmetrisation, the same budget as
    a p-NN graph.  With ``symmetrize=True`` the row-wise selections are
    united by an element-wise maximum (the Eq. 3 rule for p-NN edges), so the
    result stays symmetric whenever the input is.

    ``k >= n - 1`` keeps every off-diagonal entry of a zero-diagonal affinity
    (the only droppable entry per row is then a row minimum, which for a
    non-negative zero-diagonal matrix is always a zero), so the thresholding
    degrades gracefully into an exact representation.
    """
    dense = to_dense(matrix)
    if dense.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {dense.shape}")
    n_rows, n_cols = dense.shape
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k >= n_cols:
        return dense.copy()
    keep = np.argpartition(dense, n_cols - k, axis=1)[:, n_cols - k:]
    thresholded = np.zeros_like(dense)
    row_index = np.repeat(np.arange(n_rows), k)
    thresholded[row_index, keep.ravel()] = dense[row_index, keep.ravel()]
    if symmetrize and n_rows == n_cols:
        thresholded = np.maximum(thresholded, thresholded.T)
    return thresholded
