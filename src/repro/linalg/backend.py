"""Dense / sparse compute-backend selection and conversion helpers.

Every stage of the RHCHME pipeline — the p-NN affinity (Eq. 3), the ensemble
Laplacian (Eq. 12) and the regulariser terms of the updates and objective
(Eq. 15, 21) — only ever uses the graph Laplacian ``L`` as a linear operator
(``L @ G``) or through element-wise positive/negative splits.  Because the
p-NN graph has at most ``2p`` non-zeros per row, all of those stages can run
on :mod:`scipy.sparse` matrices without materialising any ``(n, n)`` dense
array.  This module centralises the backend vocabulary so the solvers stay
agnostic:

* ``"dense"`` — plain ``numpy`` arrays (the seed behaviour);
* ``"sparse"`` — CSR :class:`scipy.sparse` matrices for affinities and
  Laplacians;
* ``"auto"`` — pick per dataset: sparse once the object count crosses
  :data:`AUTO_SPARSE_THRESHOLD` (where the O(n²) dense intermediates start to
  dominate), dense below it (small problems are faster without CSR
  indirection).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .._validation import ensure_dense

__all__ = [
    "BACKENDS",
    "AUTO_SPARSE_THRESHOLD",
    "check_backend",
    "resolve_backend",
    "is_sparse",
    "as_csr",
    "to_dense",
    "to_backend",
    "topk_rows",
]

#: Valid values of the ``backend`` knob on :class:`repro.core.RHCHMEConfig`
#: and :class:`repro.manifold.HeterogeneousManifoldEnsemble`.
BACKENDS = ("auto", "dense", "sparse")

#: Object count at which ``backend="auto"`` switches to the sparse path.
#: Below this the dense kernels win on constant factors; above it the
#: O(n²) dense intermediates (pairwise weight matrices, Laplacian splits)
#: dominate both time and memory.
AUTO_SPARSE_THRESHOLD = 1024


def check_backend(backend: str) -> str:
    """Validate a backend name and return it."""
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {list(BACKENDS)}")
    return backend


def resolve_backend(backend: str, *, n_objects: int,
                    threshold: int = AUTO_SPARSE_THRESHOLD) -> str:
    """Resolve ``"auto"`` to a concrete backend for a problem of ``n_objects``.

    Parameters
    ----------
    backend:
        ``"auto"``, ``"dense"`` or ``"sparse"``.
    n_objects:
        Total number of objects (rows/columns of the assembled Laplacian).
    threshold:
        Object count at which ``"auto"`` switches to sparse.
    """
    check_backend(backend)
    if backend != "auto":
        return backend
    return "sparse" if n_objects >= threshold else "dense"


def is_sparse(matrix) -> bool:
    """True when ``matrix`` is any scipy sparse matrix/array."""
    return sp.issparse(matrix)


def as_csr(matrix) -> sp.csr_array:
    """Return ``matrix`` as a float64 CSR sparse array (copying only if needed)."""
    if sp.issparse(matrix):
        return matrix.tocsr().astype(np.float64, copy=False)
    return sp.csr_array(np.asarray(matrix, dtype=np.float64))


def to_dense(matrix) -> np.ndarray:
    """Return a dense float64 ndarray view of a dense or sparse matrix."""
    return ensure_dense(matrix)


def to_backend(matrix, backend: str):
    """Convert ``matrix`` to the representation of a concrete backend."""
    check_backend(backend)
    if backend == "auto":
        raise ValueError("resolve 'auto' with resolve_backend() before converting")
    return as_csr(matrix) if backend == "sparse" else to_dense(matrix)


def topk_rows(matrix, k: int, *, symmetrize: bool = True) -> np.ndarray:
    """Threshold a dense affinity to its k largest entries per row.

    This is what lets inherently dense affinities — the subspace member's
    complete within-subspace connectivity — participate in the sparse
    backend: keeping only the k strongest similarities per row bounds the
    non-zero count at ``2k`` per row after symmetrisation, the same budget as
    a p-NN graph.  With ``symmetrize=True`` the row-wise selections are
    united by an element-wise maximum (the Eq. 3 rule for p-NN edges), so the
    result stays symmetric whenever the input is.

    ``k >= n - 1`` keeps every off-diagonal entry of a zero-diagonal affinity
    (the only droppable entry per row is then a row minimum, which for a
    non-negative zero-diagonal matrix is always a zero), so the thresholding
    degrades gracefully into an exact representation.
    """
    dense = to_dense(matrix)
    if dense.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {dense.shape}")
    n_rows, n_cols = dense.shape
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k >= n_cols:
        return dense.copy()
    keep = np.argpartition(dense, n_cols - k, axis=1)[:, n_cols - k:]
    thresholded = np.zeros_like(dense)
    row_index = np.repeat(np.arange(n_rows), k)
    thresholded[row_index, keep.ravel()] = dense[row_index, keep.ravel()]
    if symmetrize and n_rows == n_cols:
        thresholded = np.maximum(thresholded, thresholded.T)
    return thresholded
