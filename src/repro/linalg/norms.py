"""Matrix norms used throughout the paper's objective functions.

The RHCHME objective (Eq. 15) combines the squared Frobenius norm of the
reconstruction residual, the L2,1 norm of the sparse error matrix and the
trace quadratic form ``tr(Gᵀ L G)`` of the graph regulariser; the
multiple-subspace objective (Eq. 9) adds the entry-wise ℓ1 norm of
``W Wᵀ``.  All of them live here so the solvers share one audited
implementation.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .rowsparse import RowSparseMatrix

__all__ = [
    "l1_norm",
    "l2_norm",
    "frobenius_norm",
    "l21_norm",
    "row_l2_norms",
    "trace_quadratic",
]


def l1_norm(matrix: np.ndarray) -> float:
    """Entry-wise ℓ1 norm ``Σᵢⱼ |Mᵢⱼ|`` of a matrix or vector."""
    return float(np.sum(np.abs(np.asarray(matrix, dtype=np.float64))))


def l2_norm(vector: np.ndarray) -> float:
    """Euclidean norm of a vector (or flattened array)."""
    return float(np.linalg.norm(np.asarray(vector, dtype=np.float64).ravel()))


def frobenius_norm(matrix) -> float:
    """Frobenius norm ``‖M‖_F`` of a dense, scipy sparse or row-sparse matrix."""
    if isinstance(matrix, RowSparseMatrix):
        return float(np.sqrt(matrix.frobenius_squared()))
    if sp.issparse(matrix):
        data = np.asarray(matrix.data, dtype=np.float64)
        return float(np.sqrt(np.sum(data * data)))
    return float(np.linalg.norm(np.asarray(matrix, dtype=np.float64), ord="fro")
                 if np.asarray(matrix).ndim == 2
                 else np.linalg.norm(np.asarray(matrix, dtype=np.float64)))


def row_l2_norms(matrix) -> np.ndarray:
    """Vector of row-wise Euclidean norms ``‖Mᵢ.‖₂`` (any representation)."""
    if isinstance(matrix, RowSparseMatrix):
        return matrix.row_norms()
    if sp.issparse(matrix):
        squared = sp.csr_array(matrix)
        squared = squared.multiply(squared)
        return np.sqrt(np.asarray(squared.sum(axis=1)).ravel())
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim == 1:
        matrix = matrix[None, :]
    return np.sqrt(np.sum(matrix * matrix, axis=1))


def l21_norm(matrix) -> float:
    """L2,1 norm ``Σᵢ ‖Mᵢ.‖₂`` — the sum of row Euclidean norms (Eq. 14).

    For a :class:`~repro.linalg.rowsparse.RowSparseMatrix` only the stored
    rows contribute (absent rows have zero norm), so the reduction is
    ``O(k · n)`` instead of ``O(n²)``.
    """
    if isinstance(matrix, RowSparseMatrix):
        return matrix.l21_norm()
    return float(np.sum(row_l2_norms(matrix)))


def trace_quadratic(G: np.ndarray, L) -> float:
    """Graph regulariser value ``tr(Gᵀ L G)``.

    Evaluated as ``Σᵢⱼ (L G)ᵢⱼ Gᵢⱼ`` to avoid forming the c×c product.
    ``L`` may be dense or scipy sparse; either way ``L @ G`` is a skinny
    ``(n, c)`` dense product, so the sparse backend never densifies ``L``.
    """
    G = np.asarray(G, dtype=np.float64)
    if not sp.issparse(L):
        L = np.asarray(L, dtype=np.float64)
    return float(np.sum((L @ G) * G))
