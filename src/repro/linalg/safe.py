"""Numerically safe inverses, divisions and square roots.

The update rules of RHCHME repeatedly form ``(GᵀG)⁻¹`` and divide by entries
that can underflow to zero; the helpers here regularise those operations with
a small ridge or epsilon instead of letting NaNs propagate into the
factorisation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["safe_inverse", "safe_divide", "safe_sqrt", "stable_pinv",
           "gram_pinv"]

_EPS = 1e-12


def safe_inverse(matrix: np.ndarray, *, ridge: float = 1e-10) -> np.ndarray:
    """Invert a square matrix, adding a tiny ridge when it is singular.

    The ridge is scaled by the mean diagonal magnitude so the regularisation
    is relative to the matrix scale.  Falls back to the Moore–Penrose
    pseudo-inverse if the ridge-regularised solve still fails.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {matrix.shape}")
    identity = np.eye(matrix.shape[0])
    scale = max(float(np.mean(np.abs(np.diag(matrix)))), 1.0)
    try:
        return np.linalg.solve(matrix + ridge * scale * identity, identity)
    except np.linalg.LinAlgError:
        return np.linalg.pinv(matrix)


def stable_pinv(matrix: np.ndarray, *, rcond: float = 1e-10) -> np.ndarray:
    """Moore–Penrose pseudo-inverse with a conservative cutoff."""
    return np.linalg.pinv(np.asarray(matrix, dtype=np.float64), rcond=rcond)


def gram_pinv(gram: np.ndarray, *, rcond: float = 1e-10) -> np.ndarray:
    """Guarded pseudo-inverse of a symmetric PSD gram matrix ``GᵀG``.

    A ridge-regularised solve (``safe_inverse``) keeps a singular gram
    invertible but answers with ``O(1/ridge)`` entries along the null
    directions — when a cluster empties mid-iteration (a zero column of G)
    that turns the closed-form S update into a blow-up.  The eigendecomposed
    pseudo-inverse instead *zeroes* the null directions: eigenvalues below
    ``rcond`` times the largest are treated as exact zeros, so an empty
    cluster simply receives no association mass.  For well-conditioned grams
    the result matches the plain inverse to machine precision.
    """
    gram = np.asarray(gram, dtype=np.float64)
    if gram.ndim != 2 or gram.shape[0] != gram.shape[1]:
        raise ValueError(f"expected a square gram matrix, got shape {gram.shape}")
    # eigh on the symmetrised matrix: the gram is symmetric in exact
    # arithmetic and eigh is both faster and more stable than SVD here.
    eigenvalues, eigenvectors = np.linalg.eigh((gram + gram.T) / 2.0)
    cutoff = rcond * max(float(eigenvalues[-1]), 0.0)
    inverted = np.where(eigenvalues > cutoff, 1.0 / np.where(
        eigenvalues > cutoff, eigenvalues, 1.0), 0.0)
    return (eigenvectors * inverted) @ eigenvectors.T


def safe_divide(numerator: np.ndarray, denominator: np.ndarray,
                *, eps: float = _EPS) -> np.ndarray:
    """Element-wise division that floors the denominator at ``eps``."""
    numerator = np.asarray(numerator, dtype=np.float64)
    denominator = np.asarray(denominator, dtype=np.float64)
    return numerator / np.maximum(denominator, eps)


def safe_sqrt(values: np.ndarray) -> np.ndarray:
    """Element-wise square root with negatives (numerical noise) clipped to 0."""
    return np.sqrt(np.maximum(np.asarray(values, dtype=np.float64), 0.0))
