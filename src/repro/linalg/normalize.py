"""Row, column and symmetric normalisation helpers.

Includes the row-ℓ1 normalisation applied to the cluster membership matrix G
after every multiplicative update (Eq. 22 of the paper), the symmetric
normalisation ``D^{-1/2} W D^{-1/2}`` used when building normalised graph
Laplacians and a small tf-idf transformer used by the synthetic corpus
generator.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = [
    "row_normalize_l1",
    "row_normalize_l2",
    "column_normalize_l1",
    "symmetric_normalize",
    "tfidf_transform",
]

_EPS = 1e-12


def row_normalize_l1(matrix: np.ndarray, *, copy: bool = True) -> np.ndarray:
    """Scale each row of ``matrix`` to sum to one.

    Rows whose ℓ1 mass is numerically zero are left untouched rather than
    producing NaNs, matching the behaviour expected by the G update where an
    all-zero row means "no cluster evidence yet".
    """
    matrix = np.array(matrix, dtype=np.float64, copy=copy)
    sums = np.sum(np.abs(matrix), axis=1, keepdims=True)
    scale = np.where(sums > _EPS, sums, 1.0)
    matrix /= scale
    return matrix


def row_normalize_l2(matrix: np.ndarray, *, copy: bool = True) -> np.ndarray:
    """Scale each row of ``matrix`` to unit Euclidean norm (zero rows kept)."""
    matrix = np.array(matrix, dtype=np.float64, copy=copy)
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    scale = np.where(norms > _EPS, norms, 1.0)
    matrix /= scale
    return matrix


def column_normalize_l1(matrix: np.ndarray, *, copy: bool = True) -> np.ndarray:
    """Scale each column of ``matrix`` to sum to one (zero columns kept)."""
    matrix = np.array(matrix, dtype=np.float64, copy=copy)
    sums = np.sum(np.abs(matrix), axis=0, keepdims=True)
    scale = np.where(sums > _EPS, sums, 1.0)
    matrix /= scale
    return matrix


def symmetric_normalize(affinity):
    """Return the symmetric normalisation ``D^{-1/2} W D^{-1/2}``.

    ``D`` is the diagonal degree matrix of the affinity ``W``.  Isolated
    vertices (zero degree) keep zero rows/columns instead of dividing by zero.
    Sparse input is normalised in CSR form without densification.
    """
    if sp.issparse(affinity):
        csr = affinity.tocsr().astype(np.float64, copy=False)
        degrees = np.asarray(csr.sum(axis=1)).ravel()
        inv_sqrt = np.zeros_like(degrees)
        positive = degrees > _EPS
        inv_sqrt[positive] = 1.0 / np.sqrt(degrees[positive])
        scaling = sp.diags_array(inv_sqrt)
        return (scaling @ csr @ scaling).tocsr()
    affinity = np.asarray(affinity, dtype=np.float64)
    degrees = np.sum(affinity, axis=1)
    inv_sqrt = np.zeros_like(degrees)
    positive = degrees > _EPS
    inv_sqrt[positive] = 1.0 / np.sqrt(degrees[positive])
    return affinity * inv_sqrt[:, None] * inv_sqrt[None, :]


def tfidf_transform(counts: np.ndarray, *, smooth: bool = True) -> np.ndarray:
    """Apply a tf-idf weighting to a documents × terms count matrix.

    Term frequency is the raw count normalised by document length; inverse
    document frequency uses the standard smoothed logarithm
    ``log((1 + n) / (1 + df)) + 1`` so that terms present in every document
    still receive a non-zero weight.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 2:
        raise ValueError(f"counts must be 2-D, got shape {counts.shape}")
    n_docs = counts.shape[0]
    doc_lengths = np.sum(counts, axis=1, keepdims=True)
    doc_lengths = np.where(doc_lengths > _EPS, doc_lengths, 1.0)
    tf = counts / doc_lengths
    document_frequency = np.count_nonzero(counts > 0, axis=0).astype(np.float64)
    if smooth:
        idf = np.log((1.0 + n_docs) / (1.0 + document_frequency)) + 1.0
    else:
        safe_df = np.where(document_frequency > 0, document_frequency, 1.0)
        idf = np.log(n_docs / safe_df) + 1.0
    return tf * idf[None, :]
