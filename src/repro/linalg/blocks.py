"""Block-matrix assembly for multi-type relational data.

The paper organises a K-type dataset into symmetric block matrices:

* ``R`` — inter-type relationships: zero diagonal blocks, submatrix ``R_kl``
  relating type k to type l on the off-diagonal (``R_lk = R_klᵀ``).
* ``W`` — intra-type relationships: block diagonal with one affinity matrix
  per type.
* ``G`` — cluster membership: block diagonal with one ``n_k × c_k`` block per
  type.
* ``S`` — cluster association: zero diagonal blocks, ``S_kl`` on the
  off-diagonal.

:class:`BlockSpec` records the row/column partition once and provides
assembly and extraction in both directions, so the solvers never hand-roll
index arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np
import scipy.sparse as sp

__all__ = [
    "BlockSpec",
    "block_diagonal",
    "block_offdiagonal",
    "extract_blocks",
    "extract_diagonal_blocks",
    "extract_factor_blocks",
]


@dataclass(frozen=True)
class BlockSpec:
    """Partition of a square block matrix into per-type segments.

    Parameters
    ----------
    sizes:
        Number of rows/columns contributed by each type, in type order.
    """

    sizes: tuple[int, ...]
    offsets: tuple[int, ...] = field(init=False)

    def __post_init__(self) -> None:
        sizes = tuple(int(s) for s in self.sizes)
        if not sizes or any(s <= 0 for s in sizes):
            raise ValueError(f"sizes must be positive, got {self.sizes!r}")
        object.__setattr__(self, "sizes", sizes)
        offsets = (0, *np.cumsum(sizes).tolist())
        object.__setattr__(self, "offsets", tuple(int(o) for o in offsets))

    @property
    def n_types(self) -> int:
        """Number of blocks along each axis."""
        return len(self.sizes)

    @property
    def total(self) -> int:
        """Total number of rows/columns covered by the partition."""
        return self.offsets[-1]

    def slice(self, index: int) -> slice:
        """Return the row/column slice covering block ``index``."""
        if not 0 <= index < self.n_types:
            raise IndexError(f"block index {index} out of range [0, {self.n_types})")
        return slice(self.offsets[index], self.offsets[index + 1])

    def block(self, matrix: np.ndarray, row: int, col: int) -> np.ndarray:
        """Extract the ``(row, col)`` block from a full matrix."""
        matrix = np.asarray(matrix)
        if matrix.shape[0] != self.total:
            raise ValueError(
                f"matrix has {matrix.shape[0]} rows, spec expects {self.total}")
        return matrix[self.slice(row), self.slice(col)]

    def type_of_index(self, position: int) -> int:
        """Return the type index owning global row/column ``position``."""
        if not 0 <= position < self.total:
            raise IndexError(f"position {position} out of range [0, {self.total})")
        return int(np.searchsorted(self.offsets, position, side="right") - 1)


def block_diagonal(blocks: Sequence[np.ndarray]):
    """Assemble a block-diagonal matrix from per-type square or tall blocks.

    Used for both the intra-type matrix ``W`` (square blocks) and the cluster
    membership matrix ``G`` (``n_k × c_k`` blocks).  When any block is a scipy
    sparse matrix the whole assembly stays sparse (CSR) — this is how the
    sparse compute backend builds the ensemble Laplacian without ever
    allocating the ``(n, n)`` dense array.
    """
    blocks = list(blocks)
    if not blocks:
        raise ValueError("need at least one block")
    if any(sp.issparse(block) for block in blocks):
        blocks = [block if sp.issparse(block) else np.asarray(block, dtype=np.float64)
                  for block in blocks]
        for block in blocks:
            if block.ndim != 2:
                raise ValueError(f"blocks must be 2-D, got shape {block.shape}")
        return sp.block_diag(blocks, format="csr").astype(np.float64, copy=False)
    blocks = [np.asarray(b, dtype=np.float64) for b in blocks]
    for block in blocks:
        if block.ndim != 2:
            raise ValueError(f"blocks must be 2-D, got shape {block.shape}")
    n_rows = sum(b.shape[0] for b in blocks)
    n_cols = sum(b.shape[1] for b in blocks)
    result = np.zeros((n_rows, n_cols), dtype=np.float64)
    row = col = 0
    for block in blocks:
        result[row:row + block.shape[0], col:col + block.shape[1]] = block
        row += block.shape[0]
        col += block.shape[1]
    return result


def block_offdiagonal(spec_rows: BlockSpec, spec_cols: BlockSpec,
                      blocks: Mapping[tuple[int, int], np.ndarray],
                      *, symmetric: bool = True) -> np.ndarray:
    """Assemble a matrix with zero diagonal blocks from off-diagonal blocks.

    ``blocks[(k, l)]`` is placed at block position ``(k, l)``; with
    ``symmetric=True`` its transpose is mirrored to ``(l, k)`` unless that
    block is supplied explicitly.  Used for the inter-type matrix ``R`` and
    the association matrix ``S``.
    """
    result = np.zeros((spec_rows.total, spec_cols.total), dtype=np.float64)
    placed: set[tuple[int, int]] = set()
    for (row, col), block in blocks.items():
        block = np.asarray(block, dtype=np.float64)
        if row == col:
            raise ValueError(
                f"block ({row}, {col}) lies on the diagonal; diagonal blocks must be zero")
        expected = (spec_rows.sizes[row], spec_cols.sizes[col])
        if block.shape != expected:
            raise ValueError(
                f"block ({row}, {col}) has shape {block.shape}, expected {expected}")
        result[spec_rows.slice(row), spec_cols.slice(col)] = block
        placed.add((row, col))
    if symmetric:
        if spec_rows.sizes != spec_cols.sizes:
            raise ValueError("symmetric assembly requires identical row/column specs")
        for (row, col) in list(placed):
            if (col, row) not in placed:
                result[spec_rows.slice(col), spec_cols.slice(row)] = (
                    result[spec_rows.slice(row), spec_cols.slice(col)].T)
    return result


def extract_diagonal_blocks(matrix: np.ndarray, spec: BlockSpec) -> list[np.ndarray]:
    """Return copies of the diagonal blocks of a square block matrix."""
    return [np.array(spec.block(matrix, k, k)) for k in range(spec.n_types)]


def extract_factor_blocks(matrix: np.ndarray, spec_rows: BlockSpec,
                          spec_cols: BlockSpec) -> list[np.ndarray]:
    """Return copies of the diagonal blocks of a rectangular factor matrix.

    The cluster membership matrix ``G`` pairs an object partition (rows)
    with a cluster partition (columns); its structural non-zeros are the
    ``(k, k)`` blocks.  Entries outside those blocks are discarded — this is
    the inverse of :func:`block_diagonal` for factor matrices, and the
    conversion the blocked solver state uses to accept a globally stacked G.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if spec_rows.n_types != spec_cols.n_types:
        raise ValueError(
            f"row partition has {spec_rows.n_types} blocks, column partition "
            f"{spec_cols.n_types}")
    if matrix.shape != (spec_rows.total, spec_cols.total):
        raise ValueError(
            f"matrix shape {matrix.shape} does not match specs "
            f"({spec_rows.total}, {spec_cols.total})")
    return [np.array(matrix[spec_rows.slice(k), spec_cols.slice(k)])
            for k in range(spec_rows.n_types)]


def extract_blocks(matrix: np.ndarray, spec_rows: BlockSpec,
                   spec_cols: BlockSpec) -> dict[tuple[int, int], np.ndarray]:
    """Return every block of ``matrix`` keyed by its ``(row, col)`` position."""
    matrix = np.asarray(matrix)
    if matrix.shape != (spec_rows.total, spec_cols.total):
        raise ValueError(
            f"matrix shape {matrix.shape} does not match specs "
            f"({spec_rows.total}, {spec_cols.total})")
    blocks: dict[tuple[int, int], np.ndarray] = {}
    for row in range(spec_rows.n_types):
        for col in range(spec_cols.n_types):
            blocks[(row, col)] = np.array(
                matrix[spec_rows.slice(row), spec_cols.slice(col)])
    return blocks
