"""Multi-type relational data model.

Multi-type relational data (Section I.A of the paper) consists of K object
types, each with its own feature matrix, connected by pairwise co-occurrence
matrices.  This package provides:

* :mod:`repro.relational.types` — :class:`ObjectType` and :class:`Relation`
  descriptors.
* :mod:`repro.relational.dataset` — :class:`MultiTypeRelationalData`, the
  container every HOCC method consumes, with assembly of the block matrices
  ``R`` (inter-type) and ``W`` (intra-type) and the block structure of the
  cluster membership matrix ``G``.
"""

from .types import ObjectType, Relation
from .dataset import MultiTypeRelationalData

__all__ = ["MultiTypeRelationalData", "ObjectType", "Relation"]
