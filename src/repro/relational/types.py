"""Descriptors for object types and inter-type relations.

An :class:`ObjectType` carries the name of a type (documents, terms,
concepts, …), how many objects it has, how many clusters it should be
grouped into and, optionally, a feature matrix and ground-truth labels used
for intra-type relationship learning and evaluation.  A :class:`Relation`
carries one observed co-occurrence matrix between two types.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from .._validation import as_float_array, check_labels, check_non_negative, check_positive_int
from ..exceptions import ValidationError

__all__ = ["ObjectType", "Relation"]


@dataclass
class ObjectType:
    """One type of objects in a multi-type relational dataset.

    Parameters
    ----------
    name:
        Unique identifier of the type (e.g. ``"documents"``).
    n_objects:
        Number of objects of this type.
    n_clusters:
        Number of clusters this type should be partitioned into.
    features:
        Optional ``(n_objects, d)`` feature matrix used to learn intra-type
        relationships.  HOCC methods that do not use intra-type information
        (e.g. SRC) ignore it.
    labels:
        Optional ground-truth class labels used only for evaluation.
    """

    name: str
    n_objects: int
    n_clusters: int
    features: np.ndarray | None = None
    labels: np.ndarray | None = field(default=None)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("object type name must be a non-empty string")
        self.n_objects = check_positive_int(self.n_objects, name=f"{self.name}.n_objects")
        self.n_clusters = check_positive_int(self.n_clusters, name=f"{self.name}.n_clusters")
        if self.n_clusters > self.n_objects:
            raise ValidationError(
                f"{self.name}: n_clusters ({self.n_clusters}) exceeds "
                f"n_objects ({self.n_objects})")
        if self.features is not None:
            self.features = as_float_array(self.features, name=f"{self.name}.features", ndim=2)
            if self.features.shape[0] != self.n_objects:
                raise ValidationError(
                    f"{self.name}: features have {self.features.shape[0]} rows, "
                    f"expected {self.n_objects}")
        if self.labels is not None:
            self.labels = check_labels(self.labels, name=f"{self.name}.labels",
                                       n_samples=self.n_objects)

    @property
    def has_features(self) -> bool:
        """Whether a feature matrix is available for this type."""
        return self.features is not None

    @property
    def has_labels(self) -> bool:
        """Whether ground-truth labels are available for this type."""
        return self.labels is not None


@dataclass
class Relation:
    """Observed co-occurrence matrix between two object types.

    Parameters
    ----------
    source, target:
        Names of the related object types; the matrix rows index the source
        type and the columns index the target type.
    matrix:
        Non-negative ``(n_source, n_target)`` co-occurrence matrix (e.g.
        tf-idf weights of terms in documents).  May be a dense array or a
        scipy sparse matrix; sparse input is kept as CSR end to end so that
        large, sparse relational data never pays an ``O(n_source·n_target)``
        densification (the sparse compute backend assembles ``R`` directly
        from these blocks).
    weight:
        Optional relative importance of this relation; HOCC methods that
        weight relations (SRC's ν_ij) multiply the matrix by it.
    """

    source: str
    target: str
    matrix: np.ndarray
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.source or not self.target:
            raise ValidationError("relation endpoints must be non-empty strings")
        if self.source == self.target:
            raise ValidationError(
                f"relation must connect two different types, got {self.source!r} twice")
        self.matrix = as_float_array(self.matrix, name=f"R[{self.source},{self.target}]",
                                     ndim=2, allow_sparse=True)
        check_non_negative(self.matrix, name=f"R[{self.source},{self.target}]")
        self.weight = float(self.weight)
        if self.weight <= 0:
            raise ValidationError(
                f"relation weight must be positive, got {self.weight}")

    @property
    def shape(self) -> tuple[int, int]:
        """Shape of the co-occurrence matrix."""
        return self.matrix.shape

    @property
    def is_sparse(self) -> bool:
        """Whether the co-occurrence matrix is stored as a scipy CSR matrix."""
        return sp.issparse(self.matrix)

    def transposed(self) -> "Relation":
        """Return the reverse relation with the transposed matrix."""
        matrix = (self.matrix.T.tocsr(copy=True) if self.is_sparse
                  else self.matrix.T.copy())
        return Relation(source=self.target, target=self.source,
                        matrix=matrix, weight=self.weight)
