"""The multi-type relational dataset container.

:class:`MultiTypeRelationalData` holds the object types and the observed
pairwise relations between them, and assembles the symmetric block matrices
the HOCC objectives operate on:

* ``R`` — the ``n × n`` inter-type relationship matrix with zero diagonal
  blocks and ``R_kl`` / ``R_klᵀ`` in the off-diagonal blocks;
* ``W`` — the ``n × n`` block-diagonal intra-type relationship matrix, built
  from per-type affinities supplied by the caller;
* the :class:`~repro.linalg.blocks.BlockSpec` partitions of objects and
  clusters used to interpret the factor matrices ``G`` and ``S``.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np
import scipy.sparse as sp

from .._validation import ensure_dense
from ..exceptions import ValidationError
from ..linalg.backend import numpy_carrier
from ..linalg.blocks import BlockSpec, block_diagonal, block_offdiagonal
from ..linalg.norms import frobenius_norm
from .types import ObjectType, Relation

__all__ = ["MultiTypeRelationalData"]


class MultiTypeRelationalData:
    """Container for K object types and their pairwise relations.

    Parameters
    ----------
    types:
        The object types in a fixed order; this order defines the block
        layout of every assembled matrix.
    relations:
        Observed relations.  Each unordered pair of types may appear at most
        once; the reverse direction is derived by transposition.  Pairs with
        no observed relation contribute zero blocks.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.relational import MultiTypeRelationalData, ObjectType, Relation
    >>> docs = ObjectType("documents", n_objects=4, n_clusters=2)
    >>> terms = ObjectType("terms", n_objects=3, n_clusters=2)
    >>> rel = Relation("documents", "terms", np.ones((4, 3)))
    >>> data = MultiTypeRelationalData([docs, terms], [rel])
    >>> data.inter_type_matrix().shape
    (7, 7)
    """

    def __init__(self, types: Sequence[ObjectType],
                 relations: Iterable[Relation]) -> None:
        types = list(types)
        if len(types) < 2:
            raise ValidationError("multi-type relational data needs at least two types")
        names = [t.name for t in types]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate type names in {names}")
        self._types: list[ObjectType] = types
        self._index: dict[str, int] = {t.name: i for i, t in enumerate(types)}
        self._relations: dict[tuple[int, int], Relation] = {}
        for relation in relations:
            self.add_relation(relation)

    # ------------------------------------------------------------------ types
    @property
    def types(self) -> list[ObjectType]:
        """The object types in block order."""
        return list(self._types)

    @property
    def type_names(self) -> list[str]:
        """Names of the object types in block order."""
        return [t.name for t in self._types]

    @property
    def n_types(self) -> int:
        """Number of object types K."""
        return len(self._types)

    @property
    def n_objects_total(self) -> int:
        """Total number of objects across every type."""
        return sum(t.n_objects for t in self._types)

    @property
    def n_clusters_total(self) -> int:
        """Total number of clusters across every type."""
        return sum(t.n_clusters for t in self._types)

    def type_index(self, name: str) -> int:
        """Return the block index of the type called ``name``."""
        try:
            return self._index[name]
        except KeyError as exc:
            raise ValidationError(
                f"unknown object type {name!r}; known types: {self.type_names}") from exc

    def get_type(self, name: str) -> ObjectType:
        """Return the :class:`ObjectType` called ``name``."""
        return self._types[self.type_index(name)]

    def feature_matrix(self, name: str) -> np.ndarray:
        """Return the ``(n_objects, d)`` feature matrix of the named type.

        Raises :class:`~repro.exceptions.ValidationError` when the type has
        no features — callers that need per-type features (the serving
        subsystem's out-of-sample extension, the subspace member) should fail
        loudly rather than silently fall back to relational profiles.
        """
        object_type = self.get_type(name)
        if object_type.features is None:
            raise ValidationError(
                f"type {name!r} has no feature matrix; out-of-sample prediction "
                "and subspace learning need per-type features")
        return object_type.features

    # -------------------------------------------------------------- relations
    def add_relation(self, relation: Relation) -> None:
        """Register a relation, validating shapes against the declared types."""
        source = self.type_index(relation.source)
        target = self.type_index(relation.target)
        expected = (self._types[source].n_objects, self._types[target].n_objects)
        if relation.matrix.shape != expected:
            raise ValidationError(
                f"relation {relation.source}->{relation.target} has shape "
                f"{relation.matrix.shape}, expected {expected}")
        key = (min(source, target), max(source, target))
        if key in self._relations:
            raise ValidationError(
                f"relation between {relation.source!r} and {relation.target!r} "
                "is already defined")
        # store in canonical (low index -> high index) orientation
        if source <= target:
            self._relations[key] = relation
        else:
            self._relations[key] = relation.transposed()

    @property
    def relations(self) -> list[Relation]:
        """Registered relations in canonical orientation."""
        return [self._relations[key] for key in sorted(self._relations)]

    def relation_between(self, name_a: str, name_b: str) -> Relation | None:
        """Return the relation connecting two named types (or ``None``)."""
        a, b = self.type_index(name_a), self.type_index(name_b)
        key = (min(a, b), max(a, b))
        relation = self._relations.get(key)
        if relation is None:
            return None
        if self.type_index(relation.source) == a:
            return relation
        return relation.transposed()

    # ------------------------------------------------------------ block specs
    def object_block_spec(self) -> BlockSpec:
        """Partition of the n total objects into per-type segments."""
        return BlockSpec(tuple(t.n_objects for t in self._types))

    def cluster_block_spec(self) -> BlockSpec:
        """Partition of the c total clusters into per-type segments."""
        return BlockSpec(tuple(t.n_clusters for t in self._types))

    # -------------------------------------------------------- matrix assembly
    def relation_blocks(self, *, normalize: bool = False,
                        backend: str = "dense") -> dict:
        """Per-pair relation blocks ``R_tu`` in both orientations.

        This is the blocked solver's view of R: a mapping from ordered
        type-index pairs ``(t, u)`` to the ``(n_t, n_u)`` relation block,
        with every observed relation present in both orientations
        (``R_ut = R_tuᵀ``) and unrelated pairs absent.  No global ``(n, n)``
        matrix is assembled — :meth:`inter_type_matrix` stays as the
        stacked-form adapter for code that needs one.

        ``normalize`` and ``backend`` have the same semantics as
        :meth:`inter_type_matrix`: blocks are scaled by ``weight`` (divided
        by their Frobenius norm first when normalising), and ``backend``
        selects dense arrays or CSR matrices.  ``"auto"`` and ``"torch"``
        map to their numpy carrier by total object count (see
        :func:`repro.linalg.backend.numpy_carrier`) — the dataset is
        numpy-facing and never imports torch.
        """
        backend = numpy_carrier(backend, n_objects=self.n_objects_total)
        blocks: dict[tuple[int, int], np.ndarray | sp.csr_array] = {}
        for (row, col), relation in self._relations.items():
            scale = relation.weight
            if normalize:
                norm = frobenius_norm(relation.matrix)
                if norm > 0:
                    scale = scale / norm
            if backend == "sparse":
                block = sp.csr_array(relation.matrix, dtype=np.float64) * scale
                transposed = sp.csr_array(block.T)
            else:
                block = ensure_dense(relation.matrix) * scale
                transposed = block.T
            blocks[(row, col)] = block
            blocks[(col, row)] = transposed
        return blocks

    def inter_type_matrix(self, *, normalize: bool = False,
                          backend: str = "dense"):
        """Assemble the symmetric inter-type relationship matrix ``R``.

        With ``normalize=True`` each relation block is scaled to unit
        Frobenius norm (then multiplied by its relation weight) so that types
        with very different co-occurrence magnitudes contribute comparably.

        ``backend`` selects the representation: ``"dense"`` (default, the
        seed behaviour) returns a numpy array, ``"sparse"`` a CSR matrix
        assembled directly from the relation blocks' non-zeros — ``O(nnz)``
        memory with no ``(n, n)`` intermediate, the entry point of the
        sparse R-space pipeline.  ``"auto"`` and ``"torch"`` map to their
        numpy carrier by total object count (see
        :func:`repro.linalg.backend.numpy_carrier`).  Both representations
        hold identical values.
        """
        backend = numpy_carrier(backend, n_objects=self.n_objects_total)
        spec = self.object_block_spec()
        if backend == "sparse":
            return self._inter_type_matrix_sparse(spec, normalize=normalize)
        blocks: dict[tuple[int, int], np.ndarray] = {}
        for (row, col), relation in self._relations.items():
            matrix = ensure_dense(relation.matrix)
            if normalize:
                norm = float(np.linalg.norm(matrix))
                if norm > 0:
                    matrix = matrix / norm
            blocks[(row, col)] = matrix * relation.weight
        return block_offdiagonal(spec, spec, blocks, symmetric=True)

    def _inter_type_matrix_sparse(self, spec: BlockSpec, *,
                                  normalize: bool) -> sp.csr_array:
        """CSR assembly of ``R``: each block contributes its non-zeros twice
        (once per orientation), offset into the global block layout."""
        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        data: list[np.ndarray] = []
        for (row, col), relation in self._relations.items():
            block = sp.coo_array(relation.matrix)
            scale = relation.weight
            if normalize:
                norm = frobenius_norm(relation.matrix)
                if norm > 0:
                    scale = scale / norm
            row_offset = spec.offsets[row]
            col_offset = spec.offsets[col]
            block_rows = block.row.astype(np.int64) + row_offset
            block_cols = block.col.astype(np.int64) + col_offset
            values = block.data.astype(np.float64) * scale
            rows.extend([block_rows, block_cols])
            cols.extend([block_cols, block_rows])
            data.extend([values, values])
        n = spec.total
        if not data:
            return sp.csr_array((n, n), dtype=np.float64)
        matrix = sp.coo_array(
            (np.concatenate(data),
             (np.concatenate(rows), np.concatenate(cols))),
            shape=(n, n)).tocsr()
        matrix.sum_duplicates()
        return matrix

    def intra_type_matrix(self, affinities: Mapping[str, np.ndarray]) -> np.ndarray:
        """Assemble the block-diagonal intra-type matrix ``W``.

        ``affinities`` maps type names to symmetric non-negative per-type
        affinity matrices.  Types without an entry contribute a zero block.
        """
        blocks = []
        for object_type in self._types:
            affinity = affinities.get(object_type.name)
            size = object_type.n_objects
            if affinity is None:
                blocks.append(np.zeros((size, size)))
                continue
            affinity = np.asarray(affinity, dtype=np.float64)
            if affinity.shape != (size, size):
                raise ValidationError(
                    f"affinity for type {object_type.name!r} has shape "
                    f"{affinity.shape}, expected {(size, size)}")
            blocks.append(affinity)
        return block_diagonal(blocks)

    def membership_block_structure(self) -> list[tuple[slice, slice]]:
        """Row/column slices of each type's block inside the full G matrix."""
        object_spec = self.object_block_spec()
        cluster_spec = self.cluster_block_spec()
        return [(object_spec.slice(k), cluster_spec.slice(k))
                for k in range(self.n_types)]

    def labels_vector(self) -> np.ndarray | None:
        """Concatenated ground-truth labels for all types, if every type has them."""
        if not all(t.has_labels for t in self._types):
            return None
        return np.concatenate([t.labels for t in self._types])

    def describe(self) -> str:
        """One-line summary used in logs and experiment reports."""
        parts = [f"{t.name}(n={t.n_objects}, c={t.n_clusters})" for t in self._types]
        return " + ".join(parts) + f", {len(self._relations)} relations"

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"MultiTypeRelationalData({self.describe()})"
