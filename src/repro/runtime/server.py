"""The async multi-worker serving runtime (:class:`RuntimeServer`).

Layers the pieces of :mod:`repro.serve` into a front-end a real request
stream can hit:

* every ``submit`` returns a :class:`concurrent.futures.Future` immediately
  (async from the caller's point of view);
* a :class:`~repro.runtime.batching.MicroBatcher` coalesces requests per
  (model, type) so streams of batch-1 requests ride the batched hot path;
* coalesced batches fan out across a pluggable worker pool —
  ``workers="thread"`` (default; the KD-tree query and the BLAS kernels
  release the GIL), ``"process"`` (fully parallel, each worker loads its
  own artifact copy from disk), or ``"serial"`` (no pool, deterministic
  in-line execution for debugging and tests);
* backpressure is explicit: a bounded queue rejects overload with
  :class:`~repro.exceptions.QueueFullError` rather than queueing
  unboundedly;
* :meth:`RuntimeServer.refresh` warm-start-refits a model on a grown
  dataset and hot-swaps the artifact in the predictor cache without
  dropping in-flight requests (immutable models: running predicts keep
  their reference, later requests see the new one).

The canonical request/response vocabulary is the versioned wire schema of
:mod:`repro.net.schema`: :meth:`RuntimeServer.serve` /
:meth:`RuntimeServer.submit_request` take a
:class:`~repro.net.schema.PredictRequest` and produce a
:class:`~repro.net.schema.PredictResponse` — the same types the HTTP tier
(:class:`repro.net.NetServer`) moves as JSON.  The historical
``(path, type_name, queries)`` entry points remain as thin adapters over
the schema types (deprecated in their positional form).
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..core.schedule import DirtySet
from ..exceptions import (QueueFullError, ServerClosedError, ValidationError,
                          error_code)
from ..net.schema import PredictRequest, PredictResponse
from ..obs import Observability, activate_span
from ..serve._legacy import legacy_positional_args
from ..serve.artifact import MMAP_LAYOUT, RHCHMEModel
from ..serve.extension import Prediction
from ..serve.predictor import BatchPredictor
from ..serve.shards import ShardedModelReader
from .batching import MicroBatcher, QueuedRequest
from .refresh import RefreshOutcome, refresh_model

__all__ = ["RuntimeStats", "RuntimeServer"]

WORKER_MODES = ("thread", "process", "serial")


@dataclass
class RuntimeStats:
    """Cumulative counters of one :class:`RuntimeServer`."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    batches: int = 0
    objects: int = 0
    max_batch_rows: int = 0
    refreshes: int = 0
    auto_refreshes: int = 0
    auto_refresh_failures: int = 0
    flush_counts: dict[str, int] = field(default_factory=dict)
    # Snapshot-only sections, filled by ``RuntimeServer.stats``: the
    # adaptive batch controller's per-(model, type) state and the drift
    # detector's per-model windows.  Empty when the feature is off.
    batch_policy: dict = field(default_factory=dict)
    drift: dict = field(default_factory=dict)
    # Observability snapshot: per-(model, stage) latency histograms and
    # per-code error counters (always collected), plus whether span
    # tracing is enabled on this server.
    tracing: bool = False
    stages: dict = field(default_factory=dict)
    errors: dict = field(default_factory=dict)
    # Refresh telemetry: per-model summary of the last refresh (delta
    # scheduling, types touched, iterations, seconds, agreement proxy)
    # under "models", plus the most recent one under "last".
    refresh: dict = field(default_factory=dict)

    @property
    def mean_batch_rows(self) -> float:
        """Mean coalesced rows per dispatched batch (0 before any batch)."""
        return self.objects / self.batches if self.batches else 0.0

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "batches": self.batches,
            "objects": self.objects,
            "max_batch_rows": self.max_batch_rows,
            "mean_batch_rows": round(self.mean_batch_rows, 3),
            "refreshes": self.refreshes,
            "auto_refreshes": self.auto_refreshes,
            "auto_refresh_failures": self.auto_refresh_failures,
            "flush_counts": dict(self.flush_counts),
            "batch_policy": dict(self.batch_policy),
            "drift": dict(self.drift),
            "tracing": self.tracing,
            "stages": dict(self.stages),
            "errors": dict(self.errors),
            "refresh": dict(self.refresh),
        }


# --------------------------------------------------------------------- workers
# Process workers keep one predictor per process, loading artifacts from
# disk on first use.  The parent passes a generation stamp per artifact so a
# hot-swapped (refreshed) model is re-read instead of served stale from the
# worker's private cache.
_WORKER_PREDICTOR: BatchPredictor | None = None
_WORKER_GENERATIONS: dict[str, int] = {}


def _process_predict(path: str, type_name: str, queries: np.ndarray,
                     batch_size: int, lazy_shards: bool,
                     generation: int) -> Prediction:
    global _WORKER_PREDICTOR
    if _WORKER_PREDICTOR is None:
        _WORKER_PREDICTOR = BatchPredictor(lazy_shards=lazy_shards)
    if _WORKER_GENERATIONS.get(path, generation) != generation:
        _WORKER_PREDICTOR.evict(path)
    _WORKER_GENERATIONS[path] = generation
    request = PredictRequest(model=path, type_name=type_name,
                             queries=queries, batch_size=batch_size)
    return _WORKER_PREDICTOR.serve(request).to_prediction()


class RuntimeServer:
    """Serve predict requests through micro-batching and a worker pool.

    Parameters
    ----------
    workers:
        ``"thread"`` (shared in-process predictor, GIL-releasing kernels),
        ``"process"`` (one predictor per worker process) or ``"serial"``
        (execute flushes in-line, no pool).
    n_workers:
        Pool size for thread/process workers (default: CPU count capped
        at 4).
    max_batch_size, max_delay_seconds, max_pending:
        Micro-batching knobs — see
        :class:`~repro.runtime.batching.MicroBatcher`.  ``max_pending``
        bounds queued rows; beyond it ``submit`` raises
        :class:`~repro.exceptions.QueueFullError`.
    cache_size, default_batch_size, lazy_shards:
        Forwarded to the underlying :class:`~repro.serve.BatchPredictor`;
        ``lazy_shards=True`` (default here) serves per-type sharded
        artifacts by reading only the shards of the queried types.
    batch_policy:
        Optional :class:`~repro.runtime.adaptive.BatchPolicy` (e.g. an
        :class:`~repro.runtime.adaptive.AdaptiveBatchController`) that
        tunes ``max_batch_size`` / ``max_delay_seconds`` per (model, type)
        from the observed batch latency.  ``None`` (default) keeps the
        static knobs.
    diagnostics:
        Score every served batch for covariate drift against the model's
        training fingerprints (forwarded to
        :class:`~repro.serve.BatchPredictor`; ``True`` or a detector-option
        dict enables it).  Requires in-process prediction — rejected under
        ``workers="process"``, whose predictors live in worker processes
        where the scores would be invisible to this server.
    refresh_policy:
        Optional :class:`~repro.diagnostics.RefreshPolicy` closing the
        control loop: after each served batch the model's drift score is
        fed to the policy, and when it triggers the server refits the
        model via :meth:`refresh` on a background thread — no timer
        involved.  Implies ``diagnostics`` and requires ``refresh_data``.
    refresh_data:
        Where an automatic refresh gets its grown dataset: either a
        dataset object (single-model deployments) or a callable
        ``(resolved_path) -> dataset`` (the callable is invoked on the
        refresh thread, so it may do real ingestion work).
    refresh_overrides:
        Config overrides forwarded to :meth:`refresh` by the automatic
        path (e.g. ``{"max_iter": 10}`` to bound refit cost).
    delta_refresh:
        When ``True``, :meth:`refresh` calls that pass no explicit
        ``dirty`` derive a :class:`~repro.core.schedule.DirtySet`
        automatically: types that grew in the refresh dataset plus types
        whose serving-time drift score is at or above
        ``drift_dirty_threshold`` — the clean remainder of the model stays
        frozen through the refit.  ``False`` (default) keeps every
        refresh a full warm-start refit unless the caller passes
        ``dirty`` explicitly.
    drift_dirty_threshold:
        Drift score at which a non-growing type is still marked dirty by
        the automatic delta schedule (only consulted when diagnostics are
        on; see :meth:`~repro.serve.BatchPredictor.drift_score`).
    tracing:
        Span tracing for the request path (see :mod:`repro.obs`).
        ``False`` (default) keeps only the always-on stage histograms;
        ``True`` (or a flight-recorder option dict such as
        ``{"capacity": 512, "keep_slowest": 16}``) additionally builds a
        span tree per request and per coalesced batch and retains the
        completed trees in a bounded flight recorder
        (``server.obs.dump_traces()``, or ``GET /v1/traces`` behind
        :class:`repro.net.NetServer`).  Tracing only reads clocks —
        predictions are bit-identical with it on or off.
    """

    def __init__(self, *, workers: str = "thread", n_workers: int | None = None,
                 max_batch_size: int = 256, max_delay_seconds: float = 0.002,
                 max_pending: int = 65536, cache_size: int = 4,
                 default_batch_size: int = 256,
                 lazy_shards: bool = True,
                 batch_policy=None,
                 diagnostics: bool | dict = False,
                 refresh_policy=None,
                 refresh_data=None,
                 refresh_overrides: dict | None = None,
                 delta_refresh: bool = False,
                 drift_dirty_threshold: float = 0.25,
                 tracing: bool | dict = False) -> None:
        if workers not in WORKER_MODES:
            raise ValidationError(
                f"workers must be one of {WORKER_MODES}, got {workers!r}")
        self.workers = workers
        if n_workers is None:
            n_workers = max(1, min(4, os.cpu_count() or 1))
        self.n_workers = int(n_workers)
        self.lazy_shards = bool(lazy_shards)
        if refresh_policy is not None:
            if refresh_data is None:
                raise ValidationError(
                    "refresh_policy needs refresh_data (a dataset or a "
                    "callable path -> dataset) to refit from")
            if not diagnostics:
                diagnostics = True  # the policy consumes drift scores
        if diagnostics and workers == "process":
            raise ValidationError(
                "diagnostics/refresh_policy require in-process prediction "
                "(workers='thread' or 'serial'); process workers score in "
                "their own processes where this server cannot see it")
        self.refresh_policy = refresh_policy
        self._refresh_data_source = refresh_data
        self._refresh_overrides = dict(refresh_overrides or {})
        self.delta_refresh = bool(delta_refresh)
        self.drift_dirty_threshold = float(drift_dirty_threshold)
        if self.drift_dirty_threshold < 0:
            raise ValidationError(
                f"drift_dirty_threshold must be non-negative, got "
                f"{drift_dirty_threshold!r}")
        self._refresh_meta: dict[str, dict] = {}
        self._last_refresh: dict | None = None
        self._auto_lock = threading.Lock()
        self._auto_refreshing: set[str] = set()
        self.last_auto_refresh_error: str | None = None
        self.obs = Observability(tracing=tracing)
        self.predictor = BatchPredictor(cache_size=cache_size,
                                        default_batch_size=default_batch_size,
                                        lazy_shards=lazy_shards,
                                        diagnostics=diagnostics,
                                        obs=self.obs)
        if workers == "thread":
            self._executor = ThreadPoolExecutor(
                max_workers=self.n_workers,
                thread_name_prefix="repro-runtime")
        elif workers == "process":
            self._executor = ProcessPoolExecutor(max_workers=self.n_workers)
        else:
            self._executor = None
        self.batch_policy = batch_policy
        self._batcher = MicroBatcher(self._run_batch,
                                     max_batch_size=max_batch_size,
                                     max_delay_seconds=max_delay_seconds,
                                     max_pending=max_pending,
                                     policy=batch_policy)
        self._lock = threading.Lock()
        self._stats = RuntimeStats()
        # Raw-path -> resolved cache key; Path.resolve touches the
        # filesystem, which would otherwise be paid per batch-1 request.
        self._resolved: dict[str, str] = {}
        self._generations: dict[str, int] = {}
        self._closed = False

    # -------------------------------------------------------------- submission
    def _resolve(self, path) -> str:
        raw = str(path)
        key = self._resolved.get(raw)
        if key is None:
            key = str(RHCHMEModel.resolve_path(path))
            self._resolved[raw] = key
        return key

    def _submit(self, request: PredictRequest, trace=None) -> Future:
        """Queue one schema request; returns a future of its `Prediction`.

        Raises :class:`~repro.exceptions.ServerClosedError` after
        :meth:`close` and :class:`~repro.exceptions.QueueFullError`
        (backpressure) when the bounded queue is at capacity.  Shape and
        type-name validation against the artifact happens on the coalesced
        batch, so a model/type mismatch surfaces through the future, not
        the submit call.  ``trace`` is the request's open root span when
        tracing is on — it rides the queue so the dispatch path can record
        queue-wait and compute children against the right tree.
        """
        if self._closed:
            self.obs.count_error("server_closed")
            raise ServerClosedError("RuntimeServer is closed")
        key = (self._resolve(request.model), request.type_name)
        if trace is not None:
            # Spans run on perf_counter; the queue runs on monotonic.
            # Stash the perf-counter enqueue time so queue.wait can be
            # recorded as a child with consistent offsets.
            trace.marks["enqueued"] = time.perf_counter()
        try:
            future = self._batcher.submit(key, request.queries, trace=trace)
        except QueueFullError:
            with self._lock:
                self._stats.rejected += 1
            self.obs.count_error("queue_full")
            raise
        with self._lock:
            self._stats.submitted += 1
        return future

    def submit_request(self, request: PredictRequest, *,
                       trace=None) -> Future:
        """Queue a schema request; returns a future of its `PredictResponse`.

        The canonical asynchronous entry point.  The response echoes the
        request's ``model`` and ``request_id`` and stamps the end-to-end
        ``seconds`` (submit → futures settled).  ``request.batch_size`` is
        ignored here — coalesced batches share the server's
        ``default_batch_size`` (use :class:`~repro.serve.BatchPredictor`
        directly for per-request batch sizing).

        When tracing is enabled and no ``trace`` is passed, this call owns
        the request's span tree: it opens the root here, finishes it when
        the future settles, and stamps the response's ``trace_id``.  A
        caller that already opened a root (the HTTP front-end, which also
        times parse/encode stages) passes it via ``trace`` and keeps
        ownership — the runtime only adds children.
        """
        start = time.perf_counter()
        owned = trace is None and self.obs.tracing
        if owned:
            trace = self.obs.start_request(
                model=request.model, type_name=request.type_name,
                trace_id=request.trace_id, request_id=request.request_id,
                start=start)
        trace_id = trace.trace_id if trace is not None else None
        try:
            inner = self._submit(request, trace=trace)
        except BaseException as exc:
            if owned:
                self.obs.finish(trace, error=exc)
            raise
        outer: Future = Future()

        def _convert(done: Future) -> None:
            exc = done.exception()
            if exc is not None:
                if owned:
                    self.obs.finish(trace, error=exc)
                outer.set_exception(exc)
            else:
                if owned:
                    self.obs.finish(trace)
                outer.set_result(PredictResponse.from_prediction(
                    request, done.result(),
                    seconds=time.perf_counter() - start,
                    trace_id=trace_id))

        inner.add_done_callback(_convert)
        return outer

    def serve(self, request: PredictRequest, *,
              timeout: float | None = None) -> PredictResponse:
        """Serve one schema request synchronously (canonical entry point)."""
        return self.submit_request(request).result(timeout=timeout)

    def submit(self, *args, **kwargs) -> Future:
        """Queue a predict request; returns a future of its `Prediction`.

        Legacy adapter over :meth:`submit_request` — builds a
        :class:`~repro.net.schema.PredictRequest` internally.  Positional
        ``(path, type_name, queries)`` calls are deprecated (pass keywords
        or a schema request); see the README migration notes.
        """
        path, type_name, queries = legacy_positional_args(
            "RuntimeServer.submit", ("path", "type_name", "queries"),
            args, kwargs)
        return self._submit(PredictRequest(model=str(path),
                                           type_name=str(type_name),
                                           queries=queries))

    def predict(self, *args, **kwargs) -> Prediction:
        """Synchronous legacy wrapper: ``submit(...).result(timeout)``.

        Deprecated in its positional form — the canonical API is
        :meth:`serve` with a :class:`~repro.net.schema.PredictRequest`.
        """
        timeout = kwargs.pop("timeout", None)
        path, type_name, queries = legacy_positional_args(
            "RuntimeServer.predict", ("path", "type_name", "queries"),
            args, kwargs)
        request = PredictRequest(model=str(path), type_name=str(type_name),
                                 queries=queries)
        return self._submit(request).result(timeout=timeout)

    def flush(self) -> int:
        """Force every queued request out now (returns flushed batch count)."""
        return self._batcher.flush()

    # -------------------------------------------------------------- execution
    def _run_batch(self, key: tuple[str, str], batch: list[QueuedRequest]) -> None:
        path, type_name = key
        assemble_start = time.perf_counter()
        if len(batch) == 1:
            stacked = batch[0].queries
        else:
            stacked = np.concatenate([request.queries for request in batch])
        self.obs.observe_stage(path, "batch.assemble",
                               time.perf_counter() - assemble_start)
        with self._lock:
            self._stats.batches += 1
            self._stats.objects += int(stacked.shape[0])
            self._stats.max_batch_rows = max(self._stats.max_batch_rows,
                                             stacked.shape[0])
        batch_span = None
        if self.obs.tracing:
            traced = [r for r in batch if r.trace is not None]
            if traced:
                batch_span = self.obs.start_batch(
                    model=path, type_name=type_name,
                    member_trace_ids=[r.trace.trace_id for r in traced],
                    start=assemble_start)
                batch_span.record("batch.assemble", assemble_start,
                                  time.perf_counter(),
                                  rows=int(stacked.shape[0]),
                                  n_requests=len(batch))
                for request in traced:
                    request.trace.annotate(batch_span_id=batch_span.span_id)
        if self._executor is None:
            try:
                prediction = self._execute(key, batch, stacked, batch_span)
            except BaseException as exc:  # noqa: BLE001 - routed into futures
                self._fail(batch, exc)
                self.obs.finish(batch_span, error=exc)
            else:
                self._settle(batch, prediction)
                self.obs.finish(batch_span)
            self._observe(key, batch, int(stacked.shape[0]))
            return
        if self.workers == "process":
            # The predictor lives in the worker process where this hub is
            # invisible; close queue.wait at the executor hand-off and let
            # _finish time compute.predict around the round-trip.
            self._record_queue_wait(path, batch)
            compute_start = time.perf_counter()
            worker_future = self._executor.submit(
                _process_predict, path, type_name, stacked,
                self.predictor.default_batch_size, self.lazy_shards,
                self._generations.get(path, 0))
        else:
            compute_start = None
            worker_future = self._executor.submit(
                self._execute, key, batch, stacked, batch_span)
        worker_future.add_done_callback(
            lambda done: self._finish(key, batch, int(stacked.shape[0]),
                                      done, batch_span, compute_start))

    def _record_queue_wait(self, path: str,
                           batch: list[QueuedRequest]) -> None:
        """Record every member's queue.wait (histogram + trace child)."""
        now_monotonic = time.monotonic()
        now = time.perf_counter()
        for request in batch:
            self.obs.observe_stage(path, "queue.wait",
                                   now_monotonic - request.enqueued_at)
            if request.trace is not None:
                request.trace.record(
                    "queue.wait",
                    request.trace.marks.get("enqueued", now), now)

    def _execute(self, key: tuple[str, str], batch: list[QueuedRequest],
                 stacked: np.ndarray, batch_span=None) -> Prediction:
        """Record queue/compute stages and run the stacked predict.

        Runs on the compute thread (in-line under ``workers="serial"``, a
        pool thread under ``"thread"``), so queue.wait naturally includes
        the executor's own queueing and compute.predict starts exactly
        when the numerics do.  The batch span is activated around the
        predict so the predictor (and the out-of-sample extension under
        it) can attach children via :func:`repro.obs.current_span`.
        """
        path, type_name = key
        self._record_queue_wait(path, batch)
        compute_start = time.perf_counter()
        with activate_span(batch_span):
            prediction = self._serve_stacked(path, type_name, stacked)
        compute_end = time.perf_counter()
        self._record_compute(batch, batch_span, compute_start, compute_end,
                             int(stacked.shape[0]))
        return prediction

    @staticmethod
    def _record_compute(batch: list[QueuedRequest], batch_span,
                        start: float, end: float, batch_rows: int) -> None:
        """Copy the batch's compute window onto each member's trace."""
        for request in batch:
            if request.trace is not None:
                attributes = {"rows": request.n_rows,
                              "batch_rows": batch_rows}
                if batch_span is not None:
                    attributes["batch_span_id"] = batch_span.span_id
                request.trace.record("compute.predict", start, end,
                                     **attributes)

    def _serve_stacked(self, path: str, type_name: str,
                       stacked: np.ndarray) -> Prediction:
        request = PredictRequest(model=path, type_name=type_name,
                                 queries=stacked)
        return self.predictor.serve(request).to_prediction()

    def _finish(self, key: tuple[str, str], batch: list[QueuedRequest],
                rows: int, done: Future, batch_span=None,
                compute_start: float | None = None) -> None:
        exc = done.exception()
        if compute_start is not None:
            # Process workers: the parent-side window (hand-off -> result)
            # stands in for compute.predict, IPC included.
            compute_end = time.perf_counter()
            self.obs.observe_stage(key[0], "compute.predict",
                                   compute_end - compute_start)
            if batch_span is not None:
                batch_span.record("compute.predict", compute_start,
                                  compute_end, rows=rows)
            self._record_compute(batch, batch_span, compute_start,
                                 compute_end, rows)
        if exc is not None:
            self._fail(batch, exc)
        else:
            self._settle(batch, done.result())
        self.obs.finish(batch_span, error=exc)
        self._observe(key, batch, rows)

    def _observe(self, key: tuple[str, str], batch: list[QueuedRequest],
                 rows: int) -> None:
        # Feed the adaptive controller the latency a caller experienced:
        # oldest queued request -> futures settled (queueing included).
        if self.batch_policy is not None:
            self.batch_policy.observe(
                key, rows=rows,
                seconds=time.monotonic() - batch[0].enqueued_at)
        if self.refresh_policy is not None:
            self._maybe_auto_refresh(key)

    # ------------------------------------------------------ drift control loop
    def _maybe_auto_refresh(self, key: tuple[str, str]) -> None:
        """Consult the refresh policy with the batch's drift score.

        Runs on the serving path, so it must stay O(1): reading the
        detector's cached score and one policy update.  The refit itself
        (when triggered) runs on a daemon thread — in-flight and future
        requests keep being served against the current model until the
        hot-swap publishes the refreshed one.
        """
        path, type_name = key
        score = self.predictor.drift_score(path, type_name)
        if score is None or not self.refresh_policy.update(path, score):
            return
        with self._auto_lock:
            if path in self._auto_refreshing:  # single-flight per model
                return
            self._auto_refreshing.add(path)
        threading.Thread(target=self._auto_refresh, args=(path,),
                         name="repro-auto-refresh", daemon=True).start()

    def _refresh_dataset(self, path: str):
        source = self._refresh_data_source
        return source(path) if callable(source) else source

    def _auto_refresh(self, path: str) -> None:
        try:
            self.refresh(path, self._refresh_dataset(path),
                         **self._refresh_overrides)
        except Exception as exc:  # noqa: BLE001 - background thread boundary
            self.last_auto_refresh_error = repr(exc)
            with self._lock:
                self._stats.auto_refresh_failures += 1
        else:
            with self._lock:
                self._stats.auto_refreshes += 1
        finally:
            with self._auto_lock:
                self._auto_refreshing.discard(path)

    def _settle(self, batch: list[QueuedRequest],
                prediction: Prediction) -> None:
        start = 0
        for request in batch:
            stop = start + request.n_rows
            # A caller may have cancelled its future while the batch was in
            # flight; settling it would raise InvalidStateError and strand
            # every later request of the batch.
            if not request.future.done():
                mass = (None if prediction.affinity_mass is None
                        else prediction.affinity_mass[start:stop])
                request.future.set_result(Prediction(
                    labels=prediction.labels[start:stop],
                    membership=prediction.membership[start:stop],
                    n_batches=prediction.n_batches,
                    affinity_mass=mass))
            start = stop
        with self._lock:
            self._stats.completed += len(batch)

    def _fail(self, batch: list[QueuedRequest], exc: BaseException) -> None:
        code = error_code(exc)
        for request in batch:
            self.obs.count_error(code)
            if not request.future.done():
                request.future.set_exception(exc)
        with self._lock:
            self._stats.failed += len(batch)

    # --------------------------------------------------------------- refreshing
    def _dirty_set_for(self, path, data, sidecar: dict) -> DirtySet:
        """Automatic dirty set: grown types plus drift-flagged types.

        Growth is read from the sidecar's shape metadata against the
        refresh dataset (no arrays touched); drift scores come from the
        predictor's serving-time detector when diagnostics are on.  Types
        unknown to either side are left for the refresh validation to
        reject with its own message.
        """
        names: set[str] = set()
        known = {name for name in data.type_names}
        for entry in sidecar.get("types", []):
            name = entry["name"]
            if name not in known:
                continue
            if data.get_type(name).n_objects > int(entry["n_objects"]):
                names.add(name)
            if self.predictor.diagnostics:
                score = self.predictor.drift_score(path, name)
                if score is not None and score >= self.drift_dirty_threshold:
                    names.add(name)
        return DirtySet(types=frozenset(names))

    def refresh(self, path, data, *, save: bool = True, dirty=None,
                validate: str | None = None, **overrides) -> RefreshOutcome:
        """Incrementally refit the artifact at ``path`` on a grown dataset.

        Warm-starts a refit from the artifact's current G/S/E_R blocks (see
        :func:`repro.runtime.refresh.refresh_model`), optionally saves the
        refreshed artifact back to ``path`` preserving its shard layout, and
        hot-swaps the model in the predictor cache.  In-flight requests are
        not dropped: they hold a reference to the old immutable model and
        complete against it; requests dispatched after the swap see the new
        model.  ``overrides`` are config overrides for the refit (e.g.
        ``max_iter=10``).

        ``dirty`` schedules a delta refit (a
        :class:`~repro.core.schedule.DirtySet`, ``"auto"``, or ``None``
        for full; with the server's ``delta_refresh=True`` an omitted
        ``dirty`` is derived from growth + drift via automatic
        scheduling).  ``validate`` defaults per layout: ``"shapes"`` on a
        ``per-type-mmap`` artifact (whose clean feature arrays must stay
        unpaged — the model is opened as a lazy view with only the dirty
        types promoted), ``"full"`` otherwise.

        With ``save=False`` the refreshed model is published to the
        in-process cache only; this is rejected under ``workers="process"``
        (process workers load artifacts from disk and would keep serving
        the stale generation while the outcome claimed a completed swap).
        """
        if not save and self.workers == "process":
            raise ValidationError(
                "refresh(save=False) cannot publish to process workers, "
                "which load artifacts from disk; use save=True or "
                "thread/serial workers")
        sidecar = RHCHMEModel.read_metadata(path)
        manifest = sidecar.get("shards") or {}
        layout = manifest.get("layout") if manifest else None
        if validate is None:
            validate = "shapes" if layout == MMAP_LAYOUT else "full"
        if dirty is None and self.delta_refresh:
            dirty = self._dirty_set_for(path, data, sidecar)
        view = None
        if layout == MMAP_LAYOUT:
            # Lazy import: the streaming layer is optional for servers
            # that never see an mmap artifact.
            from ..stream.view import open_model_view
            promote = sorted(dirty.types) if isinstance(dirty, DirtySet) else []
            view = open_model_view(path, promote=promote)
            model = view.model
        else:
            model = RHCHMEModel.load(path)
        try:
            outcome = refresh_model(model, data, dirty=dirty,
                                    validate=validate, **overrides)
            if save:
                # A cached lazy reader may still serve in-flight requests
                # and lazily open shards while the files are rewritten
                # below; make its remaining shards resident first so it
                # never touches the disk again.  (The refresh view itself
                # survives the rewrite: promoted arrays are copies, and
                # the atomic renames keep its mapped inodes alive.)
                cached = self.predictor.peek_model(path)
                if isinstance(cached, ShardedModelReader):
                    cached.preload()
                outcome.model.save(path, shards=layout)
                self._generations[self._resolve(path)] = (
                    self._generations.get(self._resolve(path), 0) + 1)
        finally:
            if view is not None:
                view.close()
        self.predictor.put_model(path, outcome.model)
        if self.refresh_policy is not None:
            # Manual and automatic refreshes alike restart the policy's
            # cooldown, so a just-refreshed model is not re-triggered by
            # the stale pre-refresh window.
            self.refresh_policy.notify_refresh(self._resolve(path))
        telemetry = outcome.telemetry()
        with self._lock:
            self._stats.refreshes += 1
            self._refresh_meta[self._resolve(path)] = telemetry
            self._last_refresh = telemetry
        return outcome

    # --------------------------------------------------------------- lifecycle
    def close(self, *, timeout: float = 10.0, drain: bool = True) -> None:
        """Stop the batcher and shut the pool down.

        With ``drain=True`` (default) queued batches are flushed first;
        with ``drain=False`` they are cancelled immediately.  Either way,
        requests still queued when the batcher stops (including those a
        stalled drain could not flush within ``timeout``) settle with a
        typed :class:`~repro.exceptions.ServerClosedError` — no future is
        ever orphaned by shutdown.
        """
        if self._closed:
            return
        self._closed = True
        self._batcher.close(timeout=timeout, drain=drain)
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    def __enter__(self) -> "RuntimeServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- inspection
    @property
    def stats(self) -> RuntimeStats:
        """Snapshot of the runtime counters.

        Flush counts, the adaptive batch controller's per-(model, type)
        state (when a policy with ``snapshot()`` is installed) and the
        drift detector's per-model windows (when diagnostics are on) are
        folded into the snapshot's ``flush_counts`` / ``batch_policy`` /
        ``drift`` sections.
        """
        with self._lock:
            snapshot = RuntimeStats(**{
                name: getattr(self._stats, name)
                for name in ("submitted", "completed", "failed", "rejected",
                             "batches", "objects", "max_batch_rows",
                             "refreshes", "auto_refreshes",
                             "auto_refresh_failures")})
        snapshot.flush_counts = self._batcher.flush_counts
        policy_snapshot = getattr(self.batch_policy, "snapshot", None)
        if callable(policy_snapshot):
            snapshot.batch_policy = policy_snapshot()
        if self.predictor.diagnostics:
            snapshot.drift = self.predictor.drift_snapshot()
        snapshot.tracing = self.obs.tracing
        snapshot.stages = self.obs.metrics.snapshot_stages()
        snapshot.errors = self.obs.metrics.snapshot_errors()
        with self._lock:
            snapshot.refresh = {"models": {p: dict(t) for p, t
                                           in self._refresh_meta.items()},
                                "last": (dict(self._last_refresh)
                                         if self._last_refresh else None)}
        return snapshot

    @property
    def pending_rows(self) -> int:
        """Rows currently queued in the micro-batcher."""
        return self._batcher.pending_rows
