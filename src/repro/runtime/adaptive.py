"""Adaptive micro-batch sizing: tune the batching knobs from observed tails.

:class:`~repro.runtime.batching.MicroBatcher`'s ``max_batch_size`` /
``max_delay_seconds`` are static knobs — the right values depend on the
model, the query dimensionality and the hardware, and the best trade-off
moves with the offered load.  :class:`AdaptiveBatchController` closes the
loop per ``(model, type)`` key with an **AIMD** (additive-increase /
multiplicative-decrease) rule on the observed batch latency distribution:

* every flushed batch reports its end-to-end latency (oldest queued
  request → futures settled) into a sliding window;
* once per window, the controller compares the window's p99 against
  ``target_p99_seconds``:

  - **under target** → additively grow ``max_batch_size`` (more
    coalescing, more throughput) and nudge ``max_delay_seconds`` up;
  - **over target** → multiplicatively cut both, backing out of the
    latency cliff the same way TCP backs out of congestion.

The sawtooth converges to the largest batch configuration whose tail
latency still meets the target, without a model of the hardware.

The controller is **pluggable and off by default**: construct one and
pass it as ``RuntimeServer(batch_policy=...)``; anything implementing the
:class:`BatchPolicy` protocol (``batch_size`` / ``delay_seconds`` /
``observe``) can be substituted.  All methods are thread-safe — they are
called from submitting threads, the batcher's timer thread and worker
callbacks concurrently.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Protocol, runtime_checkable

import numpy as np

from .._validation import check_positive_float, check_positive_int

__all__ = ["BatchPolicy", "AdaptiveBatchController", "PolicyRouter"]


@runtime_checkable
class BatchPolicy(Protocol):
    """What the micro-batcher needs from a batch-sizing policy."""

    def batch_size(self, key: Hashable) -> int:
        """Current flush-size threshold for ``key``."""

    def delay_seconds(self, key: Hashable) -> float:
        """Current deadline-flush delay for ``key``."""

    def observe(self, key: Hashable, *, rows: int, seconds: float) -> None:
        """Record one flushed batch (coalesced rows, end-to-end latency)."""


@dataclass
class _KeyState:
    """Mutable AIMD state of one (model, type) key."""

    batch_size: float
    delay_seconds: float
    latencies: deque = field(default_factory=deque)
    since_adjust: int = 0
    observed: int = 0
    increases: int = 0
    decreases: int = 0
    last_p50: float = 0.0
    last_p99: float = 0.0


class AdaptiveBatchController:
    """AIMD controller tuning per-key batch size and deadline delay.

    Parameters
    ----------
    target_p99_seconds:
        Tail-latency budget per coalesced batch.  The controller grows
        batches while the observed p99 stays under it and backs off
        multiplicatively when the budget is breached.
    min_batch_size, max_batch_size, initial_batch_size:
        Bounds and starting point of the flush-size threshold.
    min_delay_seconds, max_delay_seconds, initial_delay_seconds:
        Bounds and starting point of the deadline-flush delay.
    increase_step:
        Additive batch-size increment applied after each in-budget window.
    delay_increase_seconds:
        Additive delay increment applied alongside ``increase_step``.
    decrease_factor:
        Multiplicative cut (on both knobs) after an over-budget window;
        must be in (0, 1).
    window:
        Observations per adjustment decision (also the sliding-window
        length the percentiles are computed over).
    """

    def __init__(self, *, target_p99_seconds: float = 0.05,
                 min_batch_size: int = 8, max_batch_size: int = 2048,
                 initial_batch_size: int = 64,
                 min_delay_seconds: float = 0.0005,
                 max_delay_seconds: float = 0.02,
                 initial_delay_seconds: float = 0.002,
                 increase_step: int = 16,
                 delay_increase_seconds: float = 0.0005,
                 decrease_factor: float = 0.5,
                 window: int = 32) -> None:
        self.target_p99_seconds = check_positive_float(
            target_p99_seconds, name="target_p99_seconds")
        self.min_batch_size = check_positive_int(min_batch_size,
                                                 name="min_batch_size")
        self.max_batch_size = check_positive_int(max_batch_size,
                                                 name="max_batch_size")
        self.initial_batch_size = check_positive_int(initial_batch_size,
                                                     name="initial_batch_size")
        self.min_delay_seconds = check_positive_float(
            min_delay_seconds, name="min_delay_seconds")
        self.max_delay_seconds = check_positive_float(
            max_delay_seconds, name="max_delay_seconds")
        self.initial_delay_seconds = check_positive_float(
            initial_delay_seconds, name="initial_delay_seconds")
        self.increase_step = check_positive_int(increase_step,
                                                name="increase_step")
        self.delay_increase_seconds = check_positive_float(
            delay_increase_seconds, name="delay_increase_seconds")
        if not 0.0 < decrease_factor < 1.0:
            raise ValueError(
                f"decrease_factor must be in (0, 1), got {decrease_factor}")
        self.decrease_factor = float(decrease_factor)
        self.window = check_positive_int(window, name="window")
        if self.min_batch_size > self.max_batch_size:
            raise ValueError("min_batch_size exceeds max_batch_size")
        if self.min_delay_seconds > self.max_delay_seconds:
            raise ValueError("min_delay_seconds exceeds max_delay_seconds")
        self._lock = threading.Lock()
        self._keys: dict[Hashable, _KeyState] = {}

    # ----------------------------------------------------------- policy API
    def _state_locked(self, key: Hashable) -> _KeyState:
        state = self._keys.get(key)
        if state is None:
            state = _KeyState(
                batch_size=float(np.clip(self.initial_batch_size,
                                         self.min_batch_size,
                                         self.max_batch_size)),
                delay_seconds=float(np.clip(self.initial_delay_seconds,
                                            self.min_delay_seconds,
                                            self.max_delay_seconds)))
            self._keys[key] = state
        return state

    def batch_size(self, key: Hashable) -> int:
        with self._lock:
            return int(round(self._state_locked(key).batch_size))

    def delay_seconds(self, key: Hashable) -> float:
        with self._lock:
            return self._state_locked(key).delay_seconds

    def observe(self, key: Hashable, *, rows: int, seconds: float) -> None:
        with self._lock:
            state = self._state_locked(key)
            state.latencies.append(float(seconds))
            while len(state.latencies) > self.window:
                state.latencies.popleft()
            state.observed += 1
            state.since_adjust += 1
            if state.since_adjust < self.window:
                return
            state.since_adjust = 0
            window = np.asarray(state.latencies)
            state.last_p50 = float(np.percentile(window, 50.0))
            state.last_p99 = float(np.percentile(window, 99.0))
            if state.last_p99 > self.target_p99_seconds:
                state.batch_size = max(self.min_batch_size,
                                       state.batch_size
                                       * self.decrease_factor)
                state.delay_seconds = max(self.min_delay_seconds,
                                          state.delay_seconds
                                          * self.decrease_factor)
                state.decreases += 1
            else:
                state.batch_size = min(self.max_batch_size,
                                       state.batch_size
                                       + self.increase_step)
                state.delay_seconds = min(self.max_delay_seconds,
                                          state.delay_seconds
                                          + self.delay_increase_seconds)
                state.increases += 1

    # ----------------------------------------------------------- inspection
    def snapshot(self) -> dict:
        """Per-key controller state for metric exporters and ``/v1/stats``.

        Runtime keys are ``(model_path, type_name)`` tuples; those entries
        additionally carry ``model`` / ``type`` fields so exporters can
        label metrics without parsing the stringified key.
        """
        with self._lock:
            document = {}
            for key, state in self._keys.items():
                entry = {
                    "batch_size": int(round(state.batch_size)),
                    "delay_seconds": round(state.delay_seconds, 6),
                    "observed_batches": state.observed,
                    "increases": state.increases,
                    "decreases": state.decreases,
                    "p50_seconds": round(state.last_p50, 6),
                    "p99_seconds": round(state.last_p99, 6),
                }
                if isinstance(key, tuple) and len(key) == 2:
                    entry["model"] = str(key[0])
                    entry["type"] = str(key[1])
                document[str(key)] = entry
            return document


class PolicyRouter:
    """One batch policy *instance* per model, behind one policy facade.

    A single shared :class:`AdaptiveBatchController` keeps independent
    AIMD state per ``(model, type)`` key, but its *tuning knobs* (latency
    target, bounds, window) are global — one hot model with a tight
    budget drags every other model onto the same sawtooth parameters.
    The router fixes that: each model (the first element of the runtime's
    ``(model_path, type_name)`` keys) gets its own policy built by
    ``factory``, with optional pre-built per-model overrides, while the
    micro-batcher still sees one :class:`BatchPolicy`.

    Parameters
    ----------
    factory:
        Zero-argument callable producing a fresh policy for a model seen
        for the first time (default: ``AdaptiveBatchController`` with its
        defaults).  Pass a lambda to customise the knobs.
    policies:
        Optional ``{model_label: policy}`` overrides consulted before the
        factory; model labels are resolved artifact paths under the
        runtime (or whatever the batcher keys on).
    """

    def __init__(self, factory=None, *, policies: dict | None = None) -> None:
        self._factory = AdaptiveBatchController if factory is None else factory
        self._policies: dict[str, BatchPolicy] = dict(policies or {})
        self._lock = threading.Lock()

    @staticmethod
    def _model_label(key: Hashable) -> str:
        if isinstance(key, tuple) and len(key) == 2:
            return str(key[0])
        return str(key)

    def policy_for(self, key: Hashable) -> BatchPolicy:
        """The model's policy instance (created on first sight)."""
        label = self._model_label(key)
        with self._lock:
            policy = self._policies.get(label)
            if policy is None:
                policy = self._factory()
                self._policies[label] = policy
            return policy

    # ----------------------------------------------------------- policy API
    def batch_size(self, key: Hashable) -> int:
        return self.policy_for(key).batch_size(key)

    def delay_seconds(self, key: Hashable) -> float:
        return self.policy_for(key).delay_seconds(key)

    def observe(self, key: Hashable, *, rows: int, seconds: float) -> None:
        self.policy_for(key).observe(key, rows=rows, seconds=seconds)

    # ----------------------------------------------------------- inspection
    @property
    def models(self) -> list[str]:
        """Model labels with a policy instance, sorted."""
        with self._lock:
            return sorted(self._policies)

    def snapshot(self) -> dict:
        """Flat per-key snapshot merged across every model's policy.

        Same shape as :meth:`AdaptiveBatchController.snapshot` (keys are
        unique across models since each policy only ever sees its own
        model's keys), so ``/v1/metrics`` exporters work unchanged.
        """
        with self._lock:
            policies = dict(self._policies)
        document = {}
        for policy in policies.values():
            policy_snapshot = getattr(policy, "snapshot", None)
            if callable(policy_snapshot):
                document.update(policy_snapshot())
        return document

    def snapshot_by_model(self) -> dict:
        """Per-model snapshots, ``{model_label: {key: state}}``."""
        with self._lock:
            policies = dict(self._policies)
        document = {}
        for label, policy in sorted(policies.items()):
            policy_snapshot = getattr(policy, "snapshot", None)
            document[label] = (policy_snapshot()
                               if callable(policy_snapshot) else {})
        return document
