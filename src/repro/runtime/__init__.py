"""Async multi-worker serving runtime with dynamic micro-batching.

``repro.serve`` made a fitted RHCHME model persistable and servable;
``repro.runtime`` makes it servable *under load*:

* :class:`MicroBatcher` — coalesces streams of small per-type predict
  requests and flushes on max-batch-size or max-latency deadline, so
  batch-1 traffic rides the ×15 batched hot path;
* :class:`RuntimeServer` — the async front-end: per-request futures, a
  pluggable worker pool (``workers="thread" | "process" | "serial"``) and
  explicit backpressure (bounded queue,
  :class:`~repro.exceptions.QueueFullError`);
* :func:`refresh_model` / :meth:`RuntimeServer.refresh` — incremental
  artifact refresh: when new training objects arrive, a refit warm-starts
  from the fitted G/S/E_R blocks and the refreshed model is hot-swapped
  into the predictor cache without dropping in-flight requests.

Pairs with per-type sharded artifacts (``RHCHMEModel.save(path,
shards="per-type")`` + :class:`repro.serve.ShardedModelReader`): a runtime
serving queries for one object type lazily reads only that type's shard.
"""

from .adaptive import AdaptiveBatchController, BatchPolicy, PolicyRouter
from .batching import MicroBatcher, QueuedRequest
from .refresh import RefreshOutcome, refresh_model, warm_start_blocks
from .server import RuntimeServer, RuntimeStats

__all__ = [
    "AdaptiveBatchController",
    "BatchPolicy",
    "PolicyRouter",
    "MicroBatcher",
    "QueuedRequest",
    "RefreshOutcome",
    "RuntimeServer",
    "RuntimeStats",
    "refresh_model",
    "warm_start_blocks",
]
