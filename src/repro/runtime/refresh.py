"""Incremental artifact refresh: warm-start refits for grown datasets.

A deployed model goes stale as new training objects arrive.  A cold refit
from k-means forgets everything the previous fit learned and pays the full
iteration budget again; :func:`refresh_model` instead *warm-starts* the
refit from the fitted artifact's own factorisation state:

* old objects keep their fitted membership rows (the previous ``G_k``);
* new objects of feature-carrying types are seeded with their out-of-sample
  smoothed membership (the same anchor-style extension serving uses), so
  they start from an informed estimate rather than noise;
* new objects of featureless types start from the type's mean membership;
* the association matrix ``S`` is carried over, and the old error matrix
  ``E_R`` is embedded at the old objects' positions in the grown block
  layout.

The per-type blocks built here are adopted by the blocked solver state
as-is (``FactorizationState`` stores G per type) — the refresh never
stacks a global membership matrix, so a warm start costs the grown blocks
and nothing more.

The refit then runs Algorithm 2 as usual (see
``RHCHME.fit(data, warm_start=...)``), typically converging in a fraction
of the cold iteration count while agreeing with a cold refit on the vast
majority of objects (test-enforced at ≥ 90%, the same bar the serving
extension meets).

On top of the warm start, ``refresh_model(..., dirty=...)`` adds *delta
scheduling* (see :mod:`repro.core.schedule`): only the types whose data
actually changed — and their neighbourhood of pairs — recompute, so a
refresh touching 1 of T types costs a fraction of even the warm-start
refit.  ``dirty="auto"`` derives the dirty set from the growth delta
itself; ``dirty=None`` keeps the full warm-start refit.

``refresh_model`` requires the grown dataset to *extend* the fitted one:
same types in the same order, same cluster counts, old objects forming a
prefix of each type (new objects append).  That is exactly the shape of a
streaming ingest; reshuffled or shrunk datasets need a cold fit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import time

import numpy as np

from ..core.config import RHCHMEConfig
from ..core.rhchme import RHCHME, RHCHMEResult
from ..core.schedule import DirtySet
from ..core.state import warm_start_state
from ..exceptions import ValidationError
from ..linalg.rowsparse import RowSparseMatrix
from ..relational.dataset import MultiTypeRelationalData
from ..serve.artifact import RHCHMEModel

__all__ = ["RefreshOutcome", "refresh_model", "warm_start_blocks"]

#: Uniform mass mixed into warm-start rows so no cluster starts at an exact
#: zero (multiplicative updates cannot leave zeros).
_SMOOTHING = 0.05

#: Accepted values of the ``validate`` knob.
_VALIDATE_MODES = ("full", "shapes")


@dataclass(frozen=True)
class RefreshOutcome:
    """Result of one incremental refresh.

    Attributes
    ----------
    model:
        The refreshed, servable artifact (fitted on the grown dataset).
    result:
        The underlying fit result (trace, convergence, timings).
    grown:
        Mapping from type name to how many new objects it gained.
    dirty:
        The :class:`~repro.core.schedule.DirtySet` the refit was scheduled
        with, or ``None`` for a full warm-start refit.
    seconds:
        Wall-clock time of the refresh (warm start + refit + export).
    agreement_proxy:
        Fraction of objects whose final hard label matches their
        warm-start seed — a cheap online stand-in for cold-refit
        agreement (``None`` when the dataset carries no objects).
    """

    model: RHCHMEModel
    result: RHCHMEResult
    grown: dict[str, int]
    dirty: DirtySet | None = None
    seconds: float = 0.0
    agreement_proxy: float | None = field(default=None)

    @property
    def n_new_objects(self) -> int:
        """Total number of newly added objects across all types."""
        return int(sum(self.grown.values()))

    @property
    def delta_scheduled(self) -> bool:
        """Whether the refit ran under a delta schedule."""
        return self.dirty is not None

    @property
    def types_touched(self) -> list[str]:
        """Names of the types the refit re-optimised (all when full)."""
        if self.dirty is None:
            return [info.name for info in self.model.types]
        return sorted(self.dirty.types)

    def telemetry(self) -> dict:
        """JSON-safe refresh summary (served on ``/v1/stats`` and metrics)."""
        return {
            "delta": self.delta_scheduled,
            "types_touched": self.types_touched,
            "n_types_touched": len(self.types_touched),
            "iterations": int(self.result.n_iterations),
            "converged": bool(self.result.converged),
            "seconds": float(self.seconds),
            "agreement_proxy": (None if self.agreement_proxy is None
                                else float(self.agreement_proxy)),
            "n_new_objects": self.n_new_objects,
            "grown": {name: int(count) for name, count in self.grown.items()},
        }


def _check_extends(model: RHCHMEModel, data: MultiTypeRelationalData, *,
                   validate: str = "full") -> dict[str, int]:
    """Validate that ``data`` extends the model's training set; return growth.

    ``validate="shapes"`` skips the element-wise feature-prefix comparison
    (sizes and widths are still checked) — the append-only object log
    guarantees the prefix property by construction, and the comparison
    would page every clean type's features into RAM on an mmap-opened
    artifact, defeating the point of the mapped layout.
    """
    if validate not in _VALIDATE_MODES:
        raise ValidationError(
            f"validate must be one of {_VALIDATE_MODES}, got {validate!r}")
    if data.type_names != model.type_names:
        if sorted(data.type_names) == sorted(model.type_names):
            raise ValidationError(
                f"refresh dataset reordered the fitted types: got "
                f"{data.type_names}, the model was fitted on "
                f"{model.type_names} — an incremental refresh needs the "
                "same types in the same order")
        missing = [name for name in model.type_names
                   if name not in data.type_names]
        unexpected = [name for name in data.type_names
                      if name not in model.type_names]
        raise ValidationError(
            f"refresh dataset types do not match the fitted model's: "
            f"missing {missing or 'none'}, unexpected {unexpected or 'none'} "
            f"(the model was fitted on {model.type_names})")
    grown: dict[str, int] = {}
    for info in model.types:
        object_type = data.get_type(info.name)
        if object_type.n_clusters != info.n_clusters:
            raise ValidationError(
                f"type {info.name!r} changed cluster count "
                f"({info.n_clusters} -> {object_type.n_clusters}); an "
                "incremental refresh cannot change the factorisation shape")
        if object_type.n_objects < info.n_objects:
            raise ValidationError(
                f"type {info.name!r} shrank ({info.n_objects} -> "
                f"{object_type.n_objects} objects); refresh only supports "
                "appended objects — run a cold fit instead")
        if info.n_features is not None:
            if object_type.features is None:
                raise ValidationError(
                    f"type {info.name!r} lost its feature matrix (fitted "
                    f"with {info.n_objects} feature rows); the grown "
                    "dataset must extend the fitted one")
            new = object_type.features
            # width from TypeInfo metadata, not the stored array: on a lazy
            # mmap-opened artifact this check must not touch feature files
            if new.shape[1] != info.n_features:
                raise ValidationError(
                    f"features of type {info.name!r} changed width "
                    f"({info.n_features} -> {new.shape[1]} columns); the "
                    "grown dataset must extend the fitted training features")
            if validate == "full" and not np.allclose(
                    new[: info.n_objects], model.features[info.name]):
                raise ValidationError(
                    f"features of type {info.name!r} do not extend the "
                    f"fitted training features (the first {info.n_objects} "
                    f"of {object_type.n_objects} rows must form an "
                    "unchanged prefix); refresh assumes appended objects")
        grown[info.name] = object_type.n_objects - info.n_objects
    return grown


def warm_start_blocks(model: RHCHMEModel, data: MultiTypeRelationalData, *,
                      batch_size: int = 256,
                      validate: str = "full") -> dict[str, np.ndarray]:
    """Per-type warm-start membership blocks for a grown dataset.

    Old rows are the model's fitted blocks; appended rows are seeded with
    the out-of-sample smoothed membership when the type has features, else
    with the type's mean membership row.  Only the appended rows' features
    are ever read, so an mmap-opened artifact seeds growth without paging
    clean types in (pass ``validate="shapes"`` to also skip the
    feature-prefix content check — see :func:`_check_extends`).
    """
    grown = _check_extends(model, data, validate=validate)
    blocks: dict[str, np.ndarray] = {}
    for info in model.types:
        old_block = model.membership[info.name]
        n_new = grown[info.name]
        if n_new == 0:
            blocks[info.name] = np.array(old_block, copy=True)
            continue
        if info.n_features is not None:
            new_features = data.get_type(info.name).features[info.n_objects:]
            seeded = model.predict(info.name, new_features,
                                   batch_size=batch_size).membership
        else:
            seeded = np.repeat(old_block.mean(axis=0, keepdims=True),
                               n_new, axis=0)
        blocks[info.name] = np.vstack([old_block, seeded])
    return blocks


def _embed_error_matrix(model: RHCHMEModel, data: MultiTypeRelationalData
                        ) -> np.ndarray | RowSparseMatrix | None:
    """Scatter the old E_R into the grown block layout (zeros for new rows).

    A row-sparse E_R stays row-sparse: its surviving row indices are
    remapped into the grown layout and the value block gains zero columns
    at the new objects' positions — the ``O(n²)`` dense scatter of the
    dense path never happens for sparse-backend artifacts.
    """
    if model.error_matrix is None:
        return None
    old_sizes = [info.n_objects for info in model.types]
    new_sizes = [data.get_type(info.name).n_objects for info in model.types]
    old_positions = []
    offset = 0
    for n_old, n_new in zip(old_sizes, new_sizes):
        old_positions.append(offset + np.arange(n_old))
        offset += n_new
    index = np.concatenate(old_positions)
    n_total = sum(new_sizes)
    if isinstance(model.error_matrix, RowSparseMatrix):
        old = model.error_matrix
        values = np.zeros((old.n_stored_rows, n_total))
        values[:, index] = old.values
        # ``index`` is strictly increasing, so the remapped rows stay sorted.
        return RowSparseMatrix(index[old.rows], values, (n_total, n_total))
    E_R = np.zeros((n_total, n_total))
    E_R[np.ix_(index, index)] = model.error_matrix
    return E_R


def _seed_agreement(blocks: dict[str, np.ndarray],
                    result: RHCHMEResult) -> float | None:
    """Fraction of objects keeping their warm-start hard label."""
    agree = 0
    total = 0
    for name, block in blocks.items():
        seeds = np.argmax(np.asarray(block), axis=1)
        final = result.labels[name]
        agree += int(np.sum(seeds == final))
        total += int(seeds.size)
    return agree / total if total else None


def refresh_model(model: RHCHMEModel | str, data: MultiTypeRelationalData, *,
                  dirty: DirtySet | str | None = None,
                  validate: str = "full",
                  **overrides) -> RefreshOutcome:
    """Warm-start refit ``model`` on the grown dataset ``data``.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.serve.RHCHMEModel`, or a path to load one
        from.
    data:
        The grown dataset: the model's training objects plus newly appended
        objects (validated — see module docstring).
    dirty:
        Delta schedule for the refit.  ``None`` (default) is the full
        warm-start refit — unchanged behaviour.  A
        :class:`~repro.core.schedule.DirtySet` restricts the refit to the
        named types' neighbourhood, and ``"auto"`` builds that set from
        the growth delta (types that gained objects).  Warm-start
        smoothing is then applied only to the dirty types, so frozen
        blocks keep their fitted values exactly.
    validate:
        ``"full"`` (default) checks the feature prefix element-wise;
        ``"shapes"`` trusts the append-only contract and checks only
        sizes/widths — required to keep an mmap-opened artifact's clean
        types unpaged.
    overrides:
        Config overrides for the refit, validated through
        :meth:`RHCHMEConfig.with_overrides` (e.g. ``max_iter=10`` to cap
        the refresh budget below the cold-fit budget).

    Returns
    -------
    RefreshOutcome
        The refreshed artifact plus the underlying fit result, growth
        accounting and refresh telemetry.
    """
    start = time.perf_counter()
    if not isinstance(model, RHCHMEModel):
        model = RHCHMEModel.load(model)
    config: RHCHMEConfig = model.config
    if overrides:
        config = config.with_overrides(**overrides)
    blocks = warm_start_blocks(model, data, validate=validate)
    grown = {info.name: data.get_type(info.name).n_objects - info.n_objects
             for info in model.types}
    if isinstance(dirty, str):
        if dirty != "auto":
            raise ValidationError(
                f'dirty must be a DirtySet, "auto" or None, got {dirty!r}')
        dirty = DirtySet.from_growth(grown)
    elif dirty is not None and not isinstance(dirty, DirtySet):
        raise ValidationError(
            f'dirty must be a DirtySet, "auto" or None, got '
            f"{type(dirty).__name__}")
    smooth_types = None if dirty is None else sorted(dirty.types)
    state = warm_start_state(data, blocks, association=model.association,
                             error_matrix=_embed_error_matrix(model, data),
                             smoothing=_SMOOTHING, smooth_types=smooth_types)
    estimator = RHCHME(config)
    result = estimator.fit(data, warm_start=state, dirty=dirty)
    refreshed = result.to_model(data, config)
    return RefreshOutcome(model=refreshed, result=result, grown=grown,
                          dirty=dirty, seconds=time.perf_counter() - start,
                          agreement_proxy=_seed_agreement(blocks, result))
