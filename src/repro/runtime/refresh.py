"""Incremental artifact refresh: warm-start refits for grown datasets.

A deployed model goes stale as new training objects arrive.  A cold refit
from k-means forgets everything the previous fit learned and pays the full
iteration budget again; :func:`refresh_model` instead *warm-starts* the
refit from the fitted artifact's own factorisation state:

* old objects keep their fitted membership rows (the previous ``G_k``);
* new objects of feature-carrying types are seeded with their out-of-sample
  smoothed membership (the same anchor-style extension serving uses), so
  they start from an informed estimate rather than noise;
* new objects of featureless types start from the type's mean membership;
* the association matrix ``S`` is carried over, and the old error matrix
  ``E_R`` is embedded at the old objects' positions in the grown block
  layout.

The per-type blocks built here are adopted by the blocked solver state
as-is (``FactorizationState`` stores G per type) — the refresh never
stacks a global membership matrix, so a warm start costs the grown blocks
and nothing more.

The refit then runs Algorithm 2 as usual (see
``RHCHME.fit(data, warm_start=...)``), typically converging in a fraction
of the cold iteration count while agreeing with a cold refit on the vast
majority of objects (test-enforced at ≥ 90%, the same bar the serving
extension meets).

``refresh_model`` requires the grown dataset to *extend* the fitted one:
same types in the same order, same cluster counts, old objects forming a
prefix of each type (new objects append).  That is exactly the shape of a
streaming ingest; reshuffled or shrunk datasets need a cold fit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import RHCHMEConfig
from ..core.rhchme import RHCHME, RHCHMEResult
from ..core.state import warm_start_state
from ..exceptions import ValidationError
from ..linalg.rowsparse import RowSparseMatrix
from ..relational.dataset import MultiTypeRelationalData
from ..serve.artifact import RHCHMEModel

__all__ = ["RefreshOutcome", "refresh_model", "warm_start_blocks"]

#: Uniform mass mixed into warm-start rows so no cluster starts at an exact
#: zero (multiplicative updates cannot leave zeros).
_SMOOTHING = 0.05


@dataclass(frozen=True)
class RefreshOutcome:
    """Result of one incremental refresh.

    Attributes
    ----------
    model:
        The refreshed, servable artifact (fitted on the grown dataset).
    result:
        The underlying fit result (trace, convergence, timings).
    grown:
        Mapping from type name to how many new objects it gained.
    """

    model: RHCHMEModel
    result: RHCHMEResult
    grown: dict[str, int]

    @property
    def n_new_objects(self) -> int:
        """Total number of newly added objects across all types."""
        return int(sum(self.grown.values()))


def _check_extends(model: RHCHMEModel,
                   data: MultiTypeRelationalData) -> dict[str, int]:
    """Validate that ``data`` extends the model's training set; return growth."""
    if data.type_names != model.type_names:
        raise ValidationError(
            f"refresh dataset types {data.type_names} do not match the "
            f"fitted model's types {model.type_names} (same names, same "
            "order required)")
    grown: dict[str, int] = {}
    for info in model.types:
        object_type = data.get_type(info.name)
        if object_type.n_clusters != info.n_clusters:
            raise ValidationError(
                f"type {info.name!r} changed cluster count "
                f"({info.n_clusters} -> {object_type.n_clusters}); an "
                "incremental refresh cannot change the factorisation shape")
        if object_type.n_objects < info.n_objects:
            raise ValidationError(
                f"type {info.name!r} shrank ({info.n_objects} -> "
                f"{object_type.n_objects} objects); refresh only supports "
                "appended objects — run a cold fit instead")
        if info.name in model.features:
            if object_type.features is None:
                raise ValidationError(
                    f"type {info.name!r} lost its feature matrix; the grown "
                    "dataset must extend the fitted one")
            old = model.features[info.name]
            new = object_type.features
            if new.shape[1] != old.shape[1] or not np.allclose(
                    new[: info.n_objects], old):
                raise ValidationError(
                    f"features of type {info.name!r} do not extend the fitted "
                    "training features (old objects must form an unchanged "
                    "prefix); refresh assumes appended objects")
        grown[info.name] = object_type.n_objects - info.n_objects
    return grown


def warm_start_blocks(model: RHCHMEModel, data: MultiTypeRelationalData, *,
                      batch_size: int = 256) -> dict[str, np.ndarray]:
    """Per-type warm-start membership blocks for a grown dataset.

    Old rows are the model's fitted blocks; appended rows are seeded with
    the out-of-sample smoothed membership when the type has features, else
    with the type's mean membership row.
    """
    grown = _check_extends(model, data)
    blocks: dict[str, np.ndarray] = {}
    for info in model.types:
        old_block = model.membership[info.name]
        n_new = grown[info.name]
        if n_new == 0:
            blocks[info.name] = old_block.copy()
            continue
        if info.name in model.features:
            new_features = data.get_type(info.name).features[info.n_objects:]
            seeded = model.predict(info.name, new_features,
                                   batch_size=batch_size).membership
        else:
            seeded = np.repeat(old_block.mean(axis=0, keepdims=True),
                               n_new, axis=0)
        blocks[info.name] = np.vstack([old_block, seeded])
    return blocks


def _embed_error_matrix(model: RHCHMEModel, data: MultiTypeRelationalData
                        ) -> np.ndarray | RowSparseMatrix | None:
    """Scatter the old E_R into the grown block layout (zeros for new rows).

    A row-sparse E_R stays row-sparse: its surviving row indices are
    remapped into the grown layout and the value block gains zero columns
    at the new objects' positions — the ``O(n²)`` dense scatter of the
    dense path never happens for sparse-backend artifacts.
    """
    if model.error_matrix is None:
        return None
    old_sizes = [info.n_objects for info in model.types]
    new_sizes = [data.get_type(info.name).n_objects for info in model.types]
    old_positions = []
    offset = 0
    for n_old, n_new in zip(old_sizes, new_sizes):
        old_positions.append(offset + np.arange(n_old))
        offset += n_new
    index = np.concatenate(old_positions)
    n_total = sum(new_sizes)
    if isinstance(model.error_matrix, RowSparseMatrix):
        old = model.error_matrix
        values = np.zeros((old.n_stored_rows, n_total))
        values[:, index] = old.values
        # ``index`` is strictly increasing, so the remapped rows stay sorted.
        return RowSparseMatrix(index[old.rows], values, (n_total, n_total))
    E_R = np.zeros((n_total, n_total))
    E_R[np.ix_(index, index)] = model.error_matrix
    return E_R


def refresh_model(model: RHCHMEModel | str, data: MultiTypeRelationalData,
                  **overrides) -> RefreshOutcome:
    """Warm-start refit ``model`` on the grown dataset ``data``.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.serve.RHCHMEModel`, or a path to load one
        from.
    data:
        The grown dataset: the model's training objects plus newly appended
        objects (validated — see module docstring).
    overrides:
        Config overrides for the refit, validated through
        :meth:`RHCHMEConfig.with_overrides` (e.g. ``max_iter=10`` to cap
        the refresh budget below the cold-fit budget).

    Returns
    -------
    RefreshOutcome
        The refreshed artifact plus the underlying fit result and growth
        accounting.
    """
    if not isinstance(model, RHCHMEModel):
        model = RHCHMEModel.load(model)
    config: RHCHMEConfig = model.config
    if overrides:
        config = config.with_overrides(**overrides)
    blocks = warm_start_blocks(model, data)
    state = warm_start_state(data, blocks, association=model.association,
                             error_matrix=_embed_error_matrix(model, data),
                             smoothing=_SMOOTHING)
    estimator = RHCHME(config)
    result = estimator.fit(data, warm_start=state)
    refreshed = result.to_model(data, config)
    grown = {info.name: data.get_type(info.name).n_objects - info.n_objects
             for info in model.types}
    return RefreshOutcome(model=refreshed, result=result, grown=grown)
