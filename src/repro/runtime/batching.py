"""Dynamic micro-batching: coalesce small predict requests into big ones.

``BENCH_serve.json`` puts the batched out-of-sample path at roughly 15× the
throughput of batch-1 requests — but a real request stream arrives as
batch-1 requests.  :class:`MicroBatcher` closes that gap: incoming requests
for the same (model, type) queue up and are flushed as one coalesced batch
when either

* the queued rows reach ``max_batch_size`` (size trigger — flushed
  immediately, on the submitting thread, for minimum latency), or
* the oldest queued request has waited ``max_delay_seconds`` (deadline
  trigger — flushed by the batcher's timer thread, bounding worst-case
  latency for sparse traffic).

Each submitted request carries a :class:`concurrent.futures.Future`; the
consumer (:class:`repro.runtime.RuntimeServer`) resolves the futures with
per-request slices once the coalesced batch has been predicted.

Backpressure is explicit: the batcher bounds the total queued rows and
rejects further submissions with
:class:`~repro.exceptions.QueueFullError` instead of queueing unboundedly —
callers shed load or retry, and a stalled worker pool cannot take the
submitting process down with it.

The static ``max_batch_size`` / ``max_delay_seconds`` knobs can be
overridden per key by a pluggable :class:`~repro.runtime.adaptive.BatchPolicy`
(e.g. :class:`~repro.runtime.adaptive.AdaptiveBatchController`), which
tunes the thresholds from the observed batch latency distribution.

Shutdown never orphans a request: requests still queued when the batcher
closes (or left behind by a stalled drain) have their futures settled with
a typed :class:`~repro.exceptions.ServerClosedError` so callers can fail
over instead of hanging.

The batcher itself never runs numerics; it only moves requests around under
one lock, so submission stays in the microsecond range.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Callable, Hashable

import numpy as np

from .._validation import check_positive_float, check_positive_int
from ..exceptions import QueueFullError, ServerClosedError

__all__ = ["QueuedRequest", "MicroBatcher"]


@dataclass
class QueuedRequest:
    """One queued predict request awaiting coalescing.

    ``trace`` is the request's open root :class:`repro.obs.Span` when
    tracing is enabled upstream (``None`` otherwise); the batcher never
    touches it — it rides along so the dispatch path can record the
    queue-wait and compute stages against the right tree.
    """

    queries: np.ndarray
    future: Future
    enqueued_at: float
    trace: object | None = None

    @property
    def n_rows(self) -> int:
        return int(self.queries.shape[0])


class MicroBatcher:
    """Coalesce per-key request streams into size- or deadline-bounded batches.

    Parameters
    ----------
    on_batch:
        Callback invoked with ``(key, requests)`` for every flushed batch.
        Called on the submitting thread for size-triggered flushes and on
        the batcher's timer thread for deadline flushes; it must hand the
        actual work off quickly (e.g. to an executor) or accept serialising
        the flush path.
    max_batch_size:
        Queued-row threshold that triggers an immediate flush of one key.
        A single oversized request still flushes as one batch — the
        downstream predict path micro-batches internally, so the threshold
        controls coalescing, not a hard cap.
    max_delay_seconds:
        Upper bound on how long a request may sit in the queue before its
        key is flushed regardless of size.
    max_pending:
        Upper bound on queued rows across all keys; beyond it ``submit``
        raises :class:`~repro.exceptions.QueueFullError`.
    policy:
        Optional :class:`~repro.runtime.adaptive.BatchPolicy` supplying
        per-key ``batch_size`` / ``delay_seconds`` thresholds that
        override the static knobs (which remain the fallback when no
        policy is set).
    """

    def __init__(self, on_batch: Callable[[Hashable, list[QueuedRequest]], Any],
                 *, max_batch_size: int = 256,
                 max_delay_seconds: float = 0.002,
                 max_pending: int = 65536,
                 policy=None) -> None:
        self._on_batch = on_batch
        self.max_batch_size = check_positive_int(max_batch_size,
                                                 name="max_batch_size")
        self.max_delay_seconds = check_positive_float(
            max_delay_seconds, name="max_delay_seconds")
        self.max_pending = check_positive_int(max_pending, name="max_pending")
        self.policy = policy
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queues: dict[Hashable, list[QueuedRequest]] = {}
        self._rows: dict[Hashable, int] = {}
        self._pending_rows = 0
        self._closed = False
        self._flush_counts = {"size": 0, "deadline": 0, "manual": 0,
                              "close": 0, "cancelled": 0}
        self._thread = threading.Thread(target=self._run,
                                        name="repro-microbatcher", daemon=True)
        self._thread.start()

    # ------------------------------------------------------------ thresholds
    def _batch_limit(self, key: Hashable) -> int:
        return (self.max_batch_size if self.policy is None
                else max(1, int(self.policy.batch_size(key))))

    def _delay_limit(self, key: Hashable) -> float:
        return (self.max_delay_seconds if self.policy is None
                else max(0.0, float(self.policy.delay_seconds(key))))

    # ------------------------------------------------------------- submission
    def submit(self, key: Hashable, queries: np.ndarray,
               future: Future | None = None, *,
               trace=None) -> Future:
        """Queue one request and return its future.

        Raises :class:`~repro.exceptions.QueueFullError` when accepting the
        request would exceed ``max_pending`` queued rows, and
        :class:`~repro.exceptions.ServerClosedError` after :meth:`close`.
        """
        if future is None:
            future = Future()
        n_rows = int(queries.shape[0])
        batch = None
        with self._wakeup:
            if self._closed:
                raise ServerClosedError("MicroBatcher is closed")
            if self._pending_rows + n_rows > self.max_pending:
                raise QueueFullError(
                    f"micro-batch queue is full ({self._pending_rows} rows "
                    f"pending, limit {self.max_pending}); retry later or "
                    "shed load")
            self._queues.setdefault(key, []).append(
                QueuedRequest(queries, future, time.monotonic(), trace))
            self._rows[key] = self._rows.get(key, 0) + n_rows
            self._pending_rows += n_rows
            if self._rows[key] >= self._batch_limit(key):
                batch = self._pop_locked(key)
                self._flush_counts["size"] += 1
            else:
                self._wakeup.notify()
        if batch is not None:
            self._dispatch(key, batch)
        return future

    # ---------------------------------------------------------------- flushing
    def _pop_locked(self, key: Hashable) -> list[QueuedRequest]:
        batch = self._queues.pop(key)
        self._pending_rows -= self._rows.pop(key)
        return batch

    def _dispatch(self, key: Hashable, batch: list[QueuedRequest]) -> None:
        try:
            self._on_batch(key, batch)
        except BaseException as exc:  # noqa: BLE001 - routed into the futures
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(exc)

    def flush(self) -> int:
        """Flush every queued key now (manual trigger); returns batch count."""
        with self._wakeup:
            due = [(key, self._pop_locked(key)) for key in list(self._queues)]
            self._flush_counts["manual"] += len(due)
        for key, batch in due:
            self._dispatch(key, batch)
        return len(due)

    def _run(self) -> None:
        while True:
            with self._wakeup:
                if self._closed and not self._queues:
                    return
                now = time.monotonic()
                due = []
                next_deadline = None
                for key in list(self._queues):
                    deadline = (self._queues[key][0].enqueued_at
                                + self._delay_limit(key))
                    if self._closed or deadline <= now:
                        due.append((key, self._pop_locked(key)))
                        self._flush_counts[
                            "close" if self._closed else "deadline"] += 1
                    elif next_deadline is None or deadline < next_deadline:
                        next_deadline = deadline
                if not due:
                    timeout = (None if next_deadline is None
                               else max(0.0, next_deadline - now))
                    self._wakeup.wait(timeout)
                    continue
            for key, batch in due:
                self._dispatch(key, batch)

    # -------------------------------------------------------------- lifecycle
    def close(self, *, timeout: float = 10.0, drain: bool = True) -> None:
        """Stop accepting requests and stop the timer thread.

        With ``drain=True`` (default) every queued batch is flushed to
        ``on_batch`` first; with ``drain=False`` queued requests are
        **cancelled** instead — their futures settle immediately with
        :class:`~repro.exceptions.ServerClosedError`.

        Either way no request is ever orphaned: if the drain cannot finish
        within ``timeout`` (e.g. the downstream pool is stalled), whatever
        is still queued is settled with
        :class:`~repro.exceptions.ServerClosedError` rather than left
        hanging on a future nobody will resolve.
        """
        with self._wakeup:
            if self._closed:
                return
            self._closed = True
            if not drain:
                self._cancel_locked()
            self._wakeup.notify()
        self._thread.join(timeout=timeout)
        # Settle anything the timer thread did not get to (it may be stuck
        # dispatching into a stalled pool, or the join timed out first).
        with self._wakeup:
            self._cancel_locked()

    def _cancel_locked(self) -> None:
        for key in list(self._queues):
            for request in self._pop_locked(key):
                if not request.future.done():
                    request.future.set_exception(ServerClosedError(
                        "request cancelled: the server closed before this "
                        "request was dispatched"))
            self._flush_counts["cancelled"] += 1

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------- inspection
    @property
    def pending_rows(self) -> int:
        """Rows currently queued across every key."""
        with self._lock:
            return self._pending_rows

    @property
    def flush_counts(self) -> dict[str, int]:
        """How many flushes each trigger has fired (size/deadline/manual/close)."""
        with self._lock:
            return dict(self._flush_counts)
