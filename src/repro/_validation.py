"""Input validation helpers shared across the library.

These functions normalise user input into dense ``float64`` numpy arrays (or
validate scipy sparse matrices where supported) and raise
:class:`repro.exceptions.ValidationError` with actionable messages when the
input cannot be used.  Keeping validation in one place keeps the numerical
modules free of repetitive defensive code.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from .exceptions import ShapeError, ValidationError

__all__ = [
    "as_float_array",
    "check_square",
    "check_symmetric",
    "check_non_negative",
    "check_labels",
    "check_random_state",
    "check_positive_int",
    "check_positive_float",
    "check_probability",
    "ensure_dense",
]


def as_float_array(values, *, name: str = "array", ndim: int | None = None,
                   allow_sparse: bool = False):
    """Convert ``values`` to a C-contiguous float64 array.

    Parameters
    ----------
    values:
        Array-like or scipy sparse matrix.
    name:
        Name used in error messages.
    ndim:
        If given, the required number of dimensions.
    allow_sparse:
        If ``True`` a scipy sparse matrix is returned as CSR without
        densification.
    """
    if sp.issparse(values):
        if allow_sparse:
            matrix = values.tocsr().astype(np.float64)
            if ndim is not None and ndim != 2:
                raise ShapeError(f"{name}: sparse input is always 2-D, expected {ndim}-D")
            if not np.all(np.isfinite(matrix.data)):
                raise ValidationError(f"{name} contains NaN or infinite entries")
            return matrix
        values = values.toarray()
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise ValidationError(f"{name} is empty")
    if not np.all(np.isfinite(array)):
        raise ValidationError(f"{name} contains NaN or infinite entries")
    if ndim is not None and array.ndim != ndim:
        raise ShapeError(f"{name} must be {ndim}-D, got shape {array.shape}")
    return np.ascontiguousarray(array)


def ensure_dense(matrix):
    """Return a dense ndarray view of ``matrix`` (densifying sparse input)."""
    if sp.issparse(matrix):
        return np.asarray(matrix.todense(), dtype=np.float64)
    return np.asarray(matrix, dtype=np.float64)


def check_square(matrix: np.ndarray, *, name: str = "matrix") -> np.ndarray:
    """Validate that ``matrix`` is a square 2-D array and return it."""
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ShapeError(f"{name} must be square, got shape {matrix.shape}")
    return matrix


def check_symmetric(matrix, *, name: str = "matrix",
                    tol: float = 1e-8, fix: bool = False):
    """Validate symmetry of a dense or scipy sparse ``matrix``.

    With ``fix=True`` the symmetrised matrix ``(M + Mᵀ) / 2`` is returned
    instead of raising when the asymmetry exceeds numerical noise of the
    matrix scale.  Sparse input keeps its sparse (CSR) representation; the
    gap/scale tolerance rule is shared between both representations so the
    dense and sparse pipelines repair asymmetry identically.
    """
    check_square(matrix, name=name)
    if sp.issparse(matrix):
        nonempty = matrix.nnz > 0
        gap = float(abs(matrix - matrix.T).max()) if nonempty else 0.0
        scale = max(1.0, float(abs(matrix).max()) if nonempty else 1.0)
        if gap <= tol * scale:
            return matrix
        if fix:
            return ((matrix + matrix.T) / 2.0).tocsr()
        raise ValidationError(f"{name} is not symmetric (max asymmetry {gap:.3e})")
    gap = float(np.max(np.abs(matrix - matrix.T))) if matrix.size else 0.0
    scale = max(1.0, float(np.max(np.abs(matrix))) if matrix.size else 1.0)
    if gap <= tol * scale:
        return matrix
    if fix:
        return (matrix + matrix.T) / 2.0
    raise ValidationError(f"{name} is not symmetric (max asymmetry {gap:.3e})")


def check_non_negative(matrix: np.ndarray, *, name: str = "matrix",
                       tol: float = 0.0) -> np.ndarray:
    """Validate that every entry of ``matrix`` is ``>= -tol``."""
    minimum = float(matrix.min()) if matrix.size else 0.0
    if minimum < -tol:
        raise ValidationError(
            f"{name} must be non-negative, found minimum entry {minimum:.3e}")
    return matrix


def check_labels(labels: Iterable[int], *, name: str = "labels",
                 n_samples: int | None = None) -> np.ndarray:
    """Validate an integer label vector and return it as an int64 array."""
    array = np.asarray(list(labels) if not isinstance(labels, np.ndarray) else labels)
    if array.ndim != 1:
        raise ShapeError(f"{name} must be 1-D, got shape {array.shape}")
    if array.size == 0:
        raise ValidationError(f"{name} is empty")
    if not np.issubdtype(array.dtype, np.integer):
        rounded = np.round(array.astype(np.float64))
        if not np.allclose(rounded, array):
            raise ValidationError(f"{name} must contain integers")
        array = rounded
    if n_samples is not None and array.size != n_samples:
        raise ShapeError(
            f"{name} has {array.size} entries, expected {n_samples}")
    return array.astype(np.int64)


def check_random_state(seed) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None``, an ``int`` seed, a ``Generator`` or a legacy
    ``RandomState`` (wrapped through its bit generator seed sequence).
    """
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.RandomState):
        return np.random.default_rng(seed.randint(0, 2**32 - 1))
    raise ValidationError(f"cannot convert {seed!r} to a random generator")


def check_positive_int(value, *, name: str, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer ``>= minimum``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_positive_float(value, *, name: str, minimum: float = 0.0,
                         inclusive: bool = False) -> float:
    """Validate that ``value`` is a finite float above ``minimum``."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a number, got {value!r}") from exc
    if not np.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    if inclusive:
        if value < minimum:
            raise ValidationError(f"{name} must be >= {minimum}, got {value}")
    elif value <= minimum:
        raise ValidationError(f"{name} must be > {minimum}, got {value}")
    return value


def check_probability(value, *, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = check_positive_float(value, name=name, minimum=0.0, inclusive=True)
    if value > 1.0:
        raise ValidationError(f"{name} must be <= 1, got {value}")
    return value


def check_sizes(sizes: Sequence[int], *, name: str = "sizes") -> list[int]:
    """Validate a sequence of positive group sizes."""
    result = [check_positive_int(s, name=f"{name}[{i}]") for i, s in enumerate(sizes)]
    if not result:
        raise ValidationError(f"{name} must be non-empty")
    return result
