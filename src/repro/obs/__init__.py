"""Zero-dependency tracing and metrics for the whole request path.

The serving stack can say *that* it is slow (end-to-end latency, p99
percentiles) — this package makes it say *where*: per-stage attribution
of every request from socket to numerics and back, plus hierarchical
traces of the fit itself.

* :mod:`repro.obs.spans` — the span model: contextvar-propagated trace
  trees (``trace_id``/``span_id``/``parent_id``) with explicit-timestamp
  recording for spans that cross threads;
* :mod:`repro.obs.histograms` — always-on fixed-bucket stage-latency
  histograms per ``(model, stage)`` and error counters per stable code,
  exported as Prometheus *histogram* families on ``GET /v1/metrics``;
* :mod:`repro.obs.recorder` — the flight recorder: a bounded ring of
  completed span trees that pins the slowest and every errored request,
  dumpable via ``GET /v1/traces`` / ``python -m repro.net traces``;
* :mod:`repro.obs.hub` — :class:`Observability`, the per-server hub the
  rest of the stack records into.

The named request stages, in timeline order:

========== ================= ==============================================
stage      recorded by       covers
========== ================= ==============================================
``http.parse``      NetServer      JSON decode + wire-schema validation
``queue.wait``      RuntimeServer  enqueue → the coalesced batch starts computing
``batch.assemble``  RuntimeServer  stacking member queries into one matrix
``compute.predict`` BatchPredictor model lookup + out-of-sample numerics
``wire.encode``     NetServer      response document build + JSON encode
========== ================= ==============================================

Everything is standard library (``contextvars``, ``bisect``, ``heapq``);
tracing is off by default and never changes numerics — predictions are
bit-identical with tracing on.
"""

from .histograms import BUCKET_BOUNDS, LatencyHistogram, StageMetrics
from .hub import Observability
from .recorder import FlightRecorder
from .spans import (Span, activate_span, current_span, new_span_id,
                    new_trace_id)

__all__ = [
    "BUCKET_BOUNDS",
    "LatencyHistogram",
    "StageMetrics",
    "Observability",
    "FlightRecorder",
    "Span",
    "activate_span",
    "current_span",
    "new_span_id",
    "new_trace_id",
]
