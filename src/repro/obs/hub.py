"""The per-server observability hub tying spans, histograms and recorder.

One :class:`Observability` instance hangs off each
:class:`repro.runtime.RuntimeServer` (``server.obs``) and is shared by
every layer above and below it — the HTTP front-end records parse/encode
stages into it, the micro-batch dispatch records queue/assemble/compute
stages, the predictor records the numerics.  Two halves, two costs:

* **stage histograms + error counters** (:class:`~repro.obs.StageMetrics`)
  are *always on* — O(1) per observation, the data source of the
  Prometheus histograms on ``GET /v1/metrics`` and of the load
  generator's per-stage latency breakdown;
* **span trees + the flight recorder** are gated by the ``tracing``
  knob (``RuntimeServer(tracing=True)`` or an option dict): off by
  default, zero allocations on the hot path when off, and when on the
  completed trees land in a bounded :class:`~repro.obs.FlightRecorder`
  dumpable via ``GET /v1/traces``.

Tracing never touches numerics — spans only read clocks — so predictions
are bit-identical with tracing on or off (test-enforced).
"""

from __future__ import annotations

from .histograms import StageMetrics
from .recorder import FlightRecorder
from .spans import Span, new_trace_id

__all__ = ["Observability"]


class Observability:
    """Stage metrics (always on) plus optional span tracing (gated).

    Parameters
    ----------
    tracing:
        ``False`` (default) — histograms only, no spans are ever created.
        ``True`` — spans plus a default-sized flight recorder.  A dict
        enables tracing and configures the recorder:
        ``{"capacity": 256, "keep_slowest": 8, "keep_errors": 32}``.
    """

    def __init__(self, *, tracing: bool | dict = False) -> None:
        options = dict(tracing) if isinstance(tracing, dict) else {}
        self.tracing = isinstance(tracing, dict) or bool(tracing)
        self.metrics = StageMetrics()
        self.recorder = (FlightRecorder(
            capacity=options.get("capacity", 256),
            keep_slowest=options.get("keep_slowest", 8),
            keep_errors=options.get("keep_errors", 32))
            if self.tracing else None)

    # ------------------------------------------------------- always-on metrics
    def observe_stage(self, model: str, stage: str, seconds: float) -> None:
        self.metrics.observe(model, stage, seconds)

    def count_error(self, code: str) -> None:
        self.metrics.count_error(code)

    # ----------------------------------------------------------------- tracing
    def start_request(self, *, model: str, type_name: str | None = None,
                      trace_id: str | None = None,
                      request_id: str | None = None,
                      start: float | None = None) -> Span | None:
        """Open one request's root span (``None`` when tracing is off)."""
        if not self.tracing:
            return None
        attributes: dict = {"model": str(model)}
        if type_name is not None:
            attributes["type"] = str(type_name)
        if request_id is not None:
            attributes["request_id"] = str(request_id)
        return Span("request", trace_id=trace_id or new_trace_id(),
                    start=start, **attributes)

    def start_batch(self, *, model: str, type_name: str,
                    member_trace_ids: list[str],
                    start: float | None = None) -> Span | None:
        """Open the root span of one coalesced batch, linking its members."""
        if not self.tracing:
            return None
        return Span("batch", start=start, model=str(model),
                    type=str(type_name), n_requests=len(member_trace_ids),
                    member_trace_ids=list(member_trace_ids))

    def finish(self, span: Span | None, *,
               error: BaseException | str | None = None) -> None:
        """Close a root span and hand its tree to the flight recorder."""
        if span is None:
            return
        span.finish(error=error)
        if self.recorder is not None:
            self.recorder.add(span)

    # -------------------------------------------------------------- inspection
    def snapshot(self) -> dict:
        """JSON-safe hub state for ``stats()`` / ``/v1/stats``."""
        document = {
            "tracing": self.tracing,
            "stages": self.metrics.snapshot_stages(),
            "errors": self.metrics.snapshot_errors(),
        }
        if self.recorder is not None:
            document["recorder"] = {
                "recorded": self.recorder.recorded,
                "capacity": self.recorder.capacity,
            }
        return document

    def dump_traces(self) -> dict:
        """The flight-recorder dump (an empty document when tracing is off)."""
        if self.recorder is None:
            return {"tracing": False, "recorded": 0, "retained": 0,
                    "traces": []}
        return {"tracing": True, **self.recorder.dump()}
