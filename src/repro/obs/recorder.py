"""The flight recorder: a bounded ring of completed span trees.

Keeps the raw material a latency investigation needs without unbounded
memory: the most recent ``capacity`` completed traces ride a ring buffer,
and two always-keep pools pin the traces worth keeping past eviction —
the ``keep_slowest`` slowest requests seen so far (a min-heap on root
duration) and the last ``keep_errors`` errored requests.  A p99
regression is therefore always explainable from ``GET /v1/traces``: the
slow outlier is pinned even if a flood of fast requests has long rotated
it out of the ring.

Traces are serialised to JSON-safe dictionaries (:meth:`Span.to_dict`)
at :meth:`add` time, so a dump never races the live span objects and the
recorder holds no references into the serving path.
"""

from __future__ import annotations

import heapq
import threading
from collections import deque

from .spans import Span

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Bounded storage of completed traces with slowest/errored pinning."""

    def __init__(self, *, capacity: int = 256, keep_slowest: int = 8,
                 keep_errors: int = 32) -> None:
        self.capacity = max(1, int(capacity))
        self.keep_slowest = max(0, int(keep_slowest))
        self.keep_errors = max(0, int(keep_errors))
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque(maxlen=self.capacity)
        self._errors: deque[dict] = deque(maxlen=max(1, self.keep_errors))
        # Min-heap of (duration, insertion sequence, document): the
        # sequence breaks duration ties so documents are never compared.
        self._slowest: list[tuple[float, int, dict]] = []
        self._sequence = 0
        self.recorded = 0

    def add(self, span: Span) -> dict:
        """Store one completed root span; returns its serialised tree."""
        document = span.to_dict()
        duration = float(document.get("duration_seconds", 0.0))
        with self._lock:
            self._sequence += 1
            self.recorded += 1
            self._ring.append(document)
            if span.status == "error" and self.keep_errors:
                self._errors.append(document)
            if self.keep_slowest:
                entry = (duration, self._sequence, document)
                if len(self._slowest) < self.keep_slowest:
                    heapq.heappush(self._slowest, entry)
                elif duration > self._slowest[0][0]:
                    heapq.heapreplace(self._slowest, entry)
        return document

    def dump(self) -> dict:
        """Every retained trace (deduplicated), slowest first.

        The document carries the recorder's bookkeeping alongside the
        trees, so a reader can tell "no traffic yet" from "everything
        rotated out of the ring".
        """
        with self._lock:
            pools = (list(self._ring),
                     [entry[2] for entry in self._slowest],
                     list(self._errors))
            recorded = self.recorded
        seen: set[str] = set()
        traces: list[dict] = []
        for pool in pools:
            for document in pool:
                span_id = document.get("span_id", "")
                if span_id in seen:
                    continue
                seen.add(span_id)
                traces.append(document)
        traces.sort(key=lambda doc: doc.get("duration_seconds", 0.0),
                    reverse=True)
        return {
            "recorded": recorded,
            "retained": len(traces),
            "capacity": self.capacity,
            "keep_slowest": self.keep_slowest,
            "keep_errors": self.keep_errors,
            "traces": traces,
        }
