"""Fixed-bucket stage-latency histograms and error counters.

:class:`StageMetrics` is the always-on half of the observability layer:
every request contributes one O(1) observation per named stage
(``http.parse``, ``queue.wait``, ``batch.assemble``, ``compute.predict``,
``wire.encode``) into a log-spaced fixed-bucket histogram keyed by
``(model, stage)``.  The buckets are shared across every histogram — 4
per decade from 10 µs to 100 s — so two models' tails are directly
comparable and the Prometheus exposition (cumulative ``_bucket{le=...}``
samples) never re-bins.

An observation is a ``perf_counter`` subtraction, one :func:`bisect` into
a 29-entry tuple and a locked integer increment — cheap enough to stay on
by default on the hot path (the ≤2 % tracing-overhead gate in
``benchmarks/bench_obs.py`` covers histograms *and* spans together).

Error counters ride along: one monotonically increasing counter per
stable error code (the taxonomy of :mod:`repro.exceptions`), so sheds and
failures are countable per code without parsing logs.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = ["BUCKET_BOUNDS", "LatencyHistogram", "StageMetrics"]

#: Shared histogram bucket upper bounds in seconds: 4 log-spaced buckets
#: per decade across 10 µs … 100 s (values above the last bound land in
#: the overflow / ``+Inf`` bucket).
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    round(10.0 ** (exponent / 4.0 - 5.0), 10) for exponent in range(29))


class LatencyHistogram:
    """One fixed-bucket latency histogram (thread-safe, O(1) observe)."""

    __slots__ = ("counts", "total_seconds", "count", "_lock")

    def __init__(self) -> None:
        # One raw (non-cumulative) count per bound plus the overflow bucket.
        self.counts = [0] * (len(BUCKET_BOUNDS) + 1)
        self.total_seconds = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        index = bisect_left(BUCKET_BOUNDS, seconds)
        with self._lock:
            self.counts[index] += 1
            self.total_seconds += seconds
            self.count += 1

    def snapshot(self) -> dict:
        """Raw bucket counts plus sum/count (cumulation is the renderer's)."""
        with self._lock:
            return {
                "count": self.count,
                "sum_seconds": round(self.total_seconds, 9),
                "bucket_counts": list(self.counts),
            }


class StageMetrics:
    """Registry of per-``(model, stage)`` histograms and per-code counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._histograms: dict[tuple[str, str], LatencyHistogram] = {}
        self._errors: dict[str, int] = {}

    def observe(self, model: str, stage: str, seconds: float) -> None:
        """Record one stage latency observation for ``model``."""
        key = (str(model), str(stage))
        histogram = self._histograms.get(key)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(key,
                                                        LatencyHistogram())
        histogram.observe(seconds)

    def count_error(self, code: str) -> None:
        """Increment the counter of one stable error code."""
        with self._lock:
            self._errors[str(code)] = self._errors.get(str(code), 0) + 1

    # -------------------------------------------------------------- snapshots
    def snapshot_stages(self) -> dict:
        """``{model: {stage: histogram snapshot}}`` (empty before traffic)."""
        with self._lock:
            items = list(self._histograms.items())
        document: dict[str, dict] = {}
        for (model, stage), histogram in items:
            document.setdefault(model, {})[stage] = histogram.snapshot()
        return document

    def snapshot_errors(self) -> dict[str, int]:
        """Cumulative error counts per stable code."""
        with self._lock:
            return dict(self._errors)
