"""Span primitives: the tree-structured timing vocabulary of the stack.

A :class:`Span` is one named, timed node of a trace tree — a request, a
coalesced batch, a fit iteration, one update kernel.  Spans carry a
``trace_id`` (shared by every span of one tree, carried on the wire as the
optional ``trace_id`` field of the schema documents), a ``span_id``/
``parent_id`` pair linking the tree together, wall-clock ``start``/``end``
timestamps and free-form attributes.

Two construction styles cover the stack's threading reality:

* **context propagation** — :func:`activate_span` installs a span as the
  contextvar-visible *current* span; downstream code that has no reference
  to the tracer (the predictor's numerics, the out-of-sample extension,
  the blocked update kernels) attaches children to :func:`current_span`.
  Contexts are per-thread, so a worker thread activates the span it was
  handed and its callees nest correctly without any plumbing.
* **explicit timestamps** — :meth:`Span.record` appends an
  already-completed child from ``(start, end)`` readings taken on another
  thread (the micro-batcher enqueues on one thread and computes on
  another; the queue-wait span spans both).

All timestamps are ``time.perf_counter()`` readings: monotonic, high
resolution, comparable across threads of one process.  Serialised trees
(:meth:`Span.to_dict`) report offsets relative to the tree root instead of
raw counter values, so dumps are meaningful across processes.

Child appends are guarded by one module lock — parallel update kernels
(``n_jobs > 1``) record children of a shared parent concurrently — and
everything else on a span is touched by one thread at a time by
construction (a request's tree moves *between* threads, never into two at
once).
"""

from __future__ import annotations

import contextvars
import threading
import time
import uuid
from contextlib import contextmanager

__all__ = ["Span", "new_trace_id", "new_span_id", "current_span",
           "activate_span"]

# One lock for every child append: contention is bounded by n_jobs and the
# critical section is a single list.append, so a finer-grained per-span
# lock would cost more in per-span memory than it saves in contention.
_CHILD_LOCK = threading.Lock()

_CURRENT: contextvars.ContextVar[Span | None] = contextvars.ContextVar(
    "repro_obs_current_span", default=None)


def new_trace_id() -> str:
    """A fresh 32-hex-character trace id (shared by one span tree)."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 16-hex-character span id (unique within a process)."""
    return uuid.uuid4().hex[:16]


def current_span() -> Span | None:
    """The span the calling context is executing under (``None`` outside)."""
    return _CURRENT.get()


@contextmanager
def activate_span(span: Span | None):
    """Install ``span`` as the context's current span for the block.

    ``None`` is accepted and is a no-op, so call sites can write
    ``with activate_span(maybe_span):`` without branching on whether
    tracing is enabled.
    """
    if span is None:
        yield None
        return
    token = _CURRENT.set(span)
    try:
        yield span
    finally:
        _CURRENT.reset(token)


class Span:
    """One timed node of a trace tree (see the module docstring)."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start", "end",
                 "status", "error", "attributes", "children", "marks")

    def __init__(self, name: str, *, trace_id: str | None = None,
                 parent: "Span | None" = None, start: float | None = None,
                 **attributes) -> None:
        self.name = str(name)
        if trace_id is None:
            trace_id = parent.trace_id if parent is not None else new_trace_id()
        self.trace_id = str(trace_id)
        self.span_id = new_span_id()
        self.parent_id = parent.span_id if parent is not None else None
        self.start = time.perf_counter() if start is None else float(start)
        self.end: float | None = None
        self.status = "ok"
        self.error: str | None = None
        self.attributes: dict = dict(attributes)
        self.children: list[Span] = []
        # Scratch timestamps the stack stashes on a span while its tree is
        # in flight (e.g. the perf-counter enqueue time the queue-wait span
        # is later recorded from); never serialised.
        self.marks: dict[str, float] = {}

    # ------------------------------------------------------------ construction
    def child(self, name: str, *, start: float | None = None,
              **attributes) -> "Span":
        """Append and return an open child span (same ``trace_id``)."""
        span = Span(name, parent=self, start=start, **attributes)
        with _CHILD_LOCK:
            self.children.append(span)
        return span

    def record(self, name: str, start: float, end: float,
               **attributes) -> "Span":
        """Append a completed child from explicit ``perf_counter`` readings.

        Thread-safe: worker threads record children of a shared parent
        concurrently (the append is the only shared mutation).
        """
        span = Span(name, parent=self, start=start, **attributes)
        span.end = float(end)
        with _CHILD_LOCK:
            self.children.append(span)
        return span

    def annotate(self, **attributes) -> "Span":
        """Merge attributes into the span; returns ``self`` for chaining."""
        self.attributes.update(attributes)
        return self

    def finish(self, *, end: float | None = None,
               error: BaseException | str | None = None) -> "Span":
        """Close the span (idempotent), optionally marking it errored."""
        if self.end is None or end is not None:
            self.end = time.perf_counter() if end is None else float(end)
        if error is not None:
            self.status = "error"
            self.error = (error if isinstance(error, str)
                          else f"{type(error).__name__}: {error}")
        return self

    # -------------------------------------------------------------- inspection
    @property
    def duration(self) -> float:
        """Seconds from start to end (to *now* while the span is open)."""
        end = time.perf_counter() if self.end is None else self.end
        return max(0.0, end - self.start)

    def iter_spans(self):
        """Yield this span and every descendant, depth first."""
        yield self
        for child in list(self.children):
            yield from child.iter_spans()

    def to_dict(self, *, origin: float | None = None) -> dict:
        """JSON-safe tree with timestamps as offsets from ``origin``.

        ``origin`` defaults to this span's own start, so a root span
        serialises with ``start_offset_seconds == 0`` and every descendant
        reports where it sat inside the root's wall clock.
        """
        if origin is None:
            origin = self.start
        document = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_offset_seconds": round(self.start - origin, 9),
            "duration_seconds": round(self.duration, 9),
            "status": self.status,
        }
        if self.error is not None:
            document["error"] = self.error
        if self.attributes:
            document["attributes"] = dict(self.attributes)
        if self.children:
            document["children"] = [child.to_dict(origin=origin)
                                    for child in list(self.children)]
        return document
